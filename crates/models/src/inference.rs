//! Tape-free compiled inference for InceptionTime models.
//!
//! [`InferencePlan`] is the serving-side counterpart of
//! [`InceptionTime::logits`](crate::inception::InceptionTime::logits): the
//! same arithmetic, but with everything that does not depend on the request
//! hoisted to compile time and every per-request allocation replaced by a
//! reusable scratch buffer.
//!
//! At compile time ([`InceptionTime::compile`](crate::inception::InceptionTime::compile)) the plan:
//!
//! * fake-quantizes every convolution / linear weight once (the per-call
//!   `fake_quantize` in `eval_forward` re-does this for every request);
//! * folds each batch-norm layer's γ/β and running statistics into
//!   per-channel `(scale, shift)` vectors;
//! * owns ping-pong activation buffers that grow to the largest batch seen
//!   and are reused for every subsequent request.
//!
//! Numerics are **bitwise identical** to the uncompiled path: each hoisted
//! quantity is produced by the very same f32 expressions the per-call path
//! evaluates (see `quantized_params` / `folded_affine` in `lightts_nn`), and
//! every kernel fills each output row with a batch-size-independent
//! accumulation order. This is what lets the serving layer prove that a
//! dynamically formed micro-batch returns exactly the bytes a single-sample
//! call would have returned — and the instrumented
//! [`tapes_created`](lightts_tensor::tape::tapes_created) counter proves the
//! plan never touches the autodiff tape.

use crate::{ModelError, Result};
use lightts_obs::Histogram;
use lightts_tensor::conv::conv1d_forward_into;
use lightts_tensor::{linalg, pool, simd, Tensor};
use std::sync::Arc;
use std::time::Instant;

/// One compiled convolution layer: pre-quantized weight and bias.
#[derive(Debug, Clone)]
pub(crate) struct PlanConv {
    /// Fake-quantized filter bank `[filters, cin, k]`.
    pub(crate) weight: Tensor,
    /// Fake-quantized bias, one entry per output channel.
    pub(crate) bias: Vec<f32>,
}

/// One compiled Inception block: parallel convolutions plus folded
/// batch-norm affine.
#[derive(Debug, Clone)]
pub(crate) struct PlanBlock {
    pub(crate) convs: Vec<PlanConv>,
    /// Folded per-channel batch-norm scale (γ·/√(σ²+ε)).
    pub(crate) bn_scale: Vec<f32>,
    /// Folded per-channel batch-norm shift (β − μ·scale).
    pub(crate) bn_shift: Vec<f32>,
}

/// Reusable activation scratch. Buffers grow to the high-water mark of the
/// batches seen and are never shrunk, so steady-state serving performs zero
/// heap allocation per request. Growth is served by the thread-local
/// [`pool`](lightts_tensor::pool) (so a plan that outgrows one batch shape
/// reuses slabs recycled elsewhere), and dropping the plan returns every
/// buffer to the pool.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Current block input `[batch, c, l]`.
    a: Vec<f32>,
    /// Next block output (channel-concatenated) `[batch, c', l]`.
    b: Vec<f32>,
    /// Single-convolution output `[batch, filters, l]`.
    conv: Vec<f32>,
    /// Pooled features `[batch, c_last]`.
    pooled: Vec<f32>,
}

impl Drop for Scratch {
    fn drop(&mut self) {
        for v in [&mut self.a, &mut self.b, &mut self.conv, &mut self.pooled] {
            pool::recycle(std::mem::take(v));
        }
    }
}

/// Grows `v` to hold at least `n` elements (pool-backed, never shrinks the
/// visible length below `n`). Contents beyond the previous length are zero;
/// every caller fully overwrites the region it reads, so reused stale data
/// can never leak into results.
fn ensure(v: &mut Vec<f32>, n: usize) {
    if v.capacity() < n {
        let fresh = pool::take_empty(n);
        pool::recycle(std::mem::replace(v, fresh));
    }
    if v.len() < n {
        v.resize(n, 0.0);
    }
}

/// A compiled, tape-free, allocation-free inference pass over an
/// [`InceptionTime`](crate::inception::InceptionTime) model.
///
/// Build one with [`InceptionTime::compile`](crate::inception::InceptionTime::compile), then call
/// [`predict_proba_into`](Self::predict_proba_into) (or
/// [`logits_into`](Self::logits_into)) per request. The plan is `Send`, so a
/// serving scheduler can own it on a dedicated thread; it is `&mut self`
/// because it reuses internal scratch buffers.
#[derive(Debug, Clone)]
pub struct InferencePlan {
    pub(crate) blocks: Vec<PlanBlock>,
    /// Fake-quantized FC weight, row-major `[fc_in, num_classes]`.
    pub(crate) fc_weight: Vec<f32>,
    pub(crate) fc_bias: Vec<f32>,
    pub(crate) fc_in: usize,
    pub(crate) in_dims: usize,
    pub(crate) in_len: usize,
    pub(crate) num_classes: usize,
    scratch: Scratch,
    /// Per-forward wall-clock histogram (`inference.forward_ns` in the
    /// global registry), resolved once at compile time so the hot path
    /// never touches the registry mutex.
    forward_ns: Arc<Histogram>,
}

impl InferencePlan {
    pub(crate) fn from_parts(
        blocks: Vec<PlanBlock>,
        fc_weight: Vec<f32>,
        fc_bias: Vec<f32>,
        fc_in: usize,
        in_dims: usize,
        in_len: usize,
        num_classes: usize,
    ) -> Self {
        InferencePlan {
            blocks,
            fc_weight,
            fc_bias,
            fc_in,
            in_dims,
            in_len,
            num_classes,
            scratch: Scratch::default(),
            forward_ns: lightts_obs::global().histogram("inference.forward_ns"),
        }
    }

    /// Input dimensionality `M` each sample must have.
    pub fn in_dims(&self) -> usize {
        self.in_dims
    }

    /// Series length each sample must have.
    pub fn in_len(&self) -> usize {
        self.in_len
    }

    /// Number of scalars one sample occupies (`in_dims · in_len`).
    pub fn sample_len(&self) -> usize {
        self.in_dims * self.in_len
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Computes logits for a `[batch, in_dims, in_len]` slice of inputs into
    /// `out` (resized to `batch · num_classes`).
    ///
    /// Bitwise identical to
    /// [`InceptionTime::logits`](crate::inception::InceptionTime::logits) on
    /// the same rows, for any batch size.
    pub fn logits_into(&mut self, inputs: &[f32], batch: usize, out: &mut Vec<f32>) -> Result<()> {
        let t0 = Instant::now();
        let _prof = lightts_obs::prof::scope("plan.forward");
        let l = self.in_len;
        if batch == 0 {
            return Err(ModelError::BadConfig { what: "inference: empty batch".into() });
        }
        if inputs.len() != batch * self.in_dims * l {
            return Err(ModelError::BadConfig {
                what: format!(
                    "inference: input length {} != batch {batch} × {} × {l}",
                    inputs.len(),
                    self.in_dims
                ),
            });
        }

        let scratch = &mut self.scratch;
        let mut cin = self.in_dims;
        ensure(&mut scratch.a, batch * cin * l);
        scratch.a[..batch * cin * l].copy_from_slice(inputs);

        for block in &self.blocks {
            let filters = block.convs[0].weight.dims()[0];
            let c_total = block.convs.len() * filters;
            ensure(&mut scratch.b, batch * c_total * l);
            ensure(&mut scratch.conv, batch * filters * l);
            for (j, conv) in block.convs.iter().enumerate() {
                conv1d_forward_into(
                    &mut scratch.conv[..batch * filters * l],
                    &scratch.a[..batch * cin * l],
                    batch,
                    &conv.weight,
                )?;
                // Scatter this layer's [batch, filters, l] rows into the
                // channel-concatenated layout, adding the bias exactly as
                // Conv1d::eval_forward does (conv sum first, then + bias).
                for bi in 0..batch {
                    for ci in 0..filters {
                        let src = (bi * filters + ci) * l;
                        let dst = (bi * c_total + j * filters + ci) * l;
                        let bias_v = conv.bias[ci];
                        for (o, &v) in
                            scratch.b[dst..dst + l].iter_mut().zip(&scratch.conv[src..src + l])
                        {
                            *o = v + bias_v;
                        }
                    }
                }
            }
            // Folded batch-norm affine followed by ReLU, in place. Same two
            // element-wise steps as BatchNorm1d::eval_forward + `max(0.0)`.
            for bi in 0..batch {
                for ci in 0..c_total {
                    let scale = block.bn_scale[ci];
                    let shift = block.bn_shift[ci];
                    let off = (bi * c_total + ci) * l;
                    for v in &mut scratch.b[off..off + l] {
                        let t = *v * scale + shift;
                        *v = t.max(0.0);
                    }
                }
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
            cin = c_total;
        }

        // Global average pooling, identical summation order to `gap_plain`.
        ensure(&mut scratch.pooled, batch * cin);
        for bi in 0..batch {
            for ci in 0..cin {
                let off = (bi * cin + ci) * l;
                scratch.pooled[bi * cin + ci] =
                    scratch.a[off..off + l].iter().sum::<f32>() / l as f32;
            }
        }

        // FC head: zeroed output region + the shared matmul kernel + bias,
        // the exact sequence Linear::eval_forward performs via
        // Tensor::matmul.
        let nc = self.num_classes;
        out.resize(batch * nc, 0.0);
        out[..batch * nc].fill(0.0);
        linalg::matmul_into(
            &mut out[..batch * nc],
            &scratch.pooled[..batch * self.fc_in],
            &self.fc_weight,
            batch,
            self.fc_in,
            nc,
        );
        for bi in 0..batch {
            for ci in 0..nc {
                out[bi * nc + ci] += self.fc_bias[ci];
            }
        }
        self.forward_ns.record_duration(t0.elapsed());
        Ok(())
    }

    /// Computes class probabilities (softmax over logits) into `out`.
    ///
    /// Bitwise identical to
    /// [`predict_proba`](crate::Classifier::predict_proba) on the same rows:
    /// both reduce to the one canonical softmax of the workspace —
    /// `simd::log_softmax_row` followed by `simd::vec_exp` — so batched
    /// serving, per-sample serving, and `Tensor::softmax_rows` agree element
    /// for element under any fixed SIMD backend (see `docs/NUMERICS.md`).
    pub fn predict_proba_into(
        &mut self,
        inputs: &[f32],
        batch: usize,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        self.logits_into(inputs, batch, out)?;
        let nc = self.num_classes;
        for row in out.chunks_exact_mut(nc) {
            simd::log_softmax_row(row);
            simd::vec_exp(row);
        }
        Ok(())
    }

    /// Convenience wrapper returning probabilities as a `[batch, classes]`
    /// tensor (allocates; tests and non-hot-path callers).
    pub fn predict_proba(&mut self, inputs: &Tensor) -> Result<Tensor> {
        if inputs.rank() != 3 {
            return Err(ModelError::BadConfig {
                what: format!(
                    "inference: expected [batch, dims, len] input, rank {}",
                    inputs.rank()
                ),
            });
        }
        let batch = inputs.dims()[0];
        let mut out = Vec::new();
        self.predict_proba_into(inputs.data(), batch, &mut out)?;
        Ok(Tensor::from_vec(out, &[batch, self.num_classes])?)
    }
}

#[cfg(test)]
mod tests {
    use crate::inception::{BlockSpec, InceptionConfig, InceptionTime};
    use crate::Classifier;
    use lightts_tensor::rng::seeded;
    use lightts_tensor::tape::tapes_created;
    use lightts_tensor::Tensor;

    fn build_model(bits: u8) -> InceptionTime {
        let cfg = InceptionConfig {
            blocks: vec![
                BlockSpec { layers: 2, filter_len: 8, bits },
                BlockSpec { layers: 3, filter_len: 4, bits },
            ],
            filters: 4,
            in_dims: 2,
            in_len: 20,
            num_classes: 5,
        };
        let mut rng = seeded(11);
        let mut model = InceptionTime::new(cfg, &mut rng).unwrap();
        // Non-trivial running stats without training (no tapes involved).
        let stats: Vec<(Vec<f32>, Vec<f32>)> = model
            .bn_channel_counts()
            .iter()
            .map(|&c| {
                let mean: Vec<f32> = (0..c).map(|i| 0.05 * i as f32 - 0.1).collect();
                let var: Vec<f32> = (0..c).map(|i| 0.5 + 0.03 * i as f32).collect();
                (mean, var)
            })
            .collect();
        for (i, (mean, var)) in stats.iter().enumerate() {
            model.set_bn_running_stats(i, mean, var).unwrap();
        }
        model
    }

    fn test_inputs(batch: usize, dims: usize, len: usize) -> Tensor {
        let data: Vec<f32> = (0..batch * dims * len)
            .map(|i| ((i as u64 * 2_654_435_761) % 1000) as f32 / 500.0 - 1.0)
            .collect();
        Tensor::from_vec(data, &[batch, dims, len]).unwrap()
    }

    #[test]
    fn compiled_plan_matches_eval_path_bitwise() {
        for bits in [4u8, 8, 32] {
            let model = build_model(bits);
            let mut plan = model.compile().unwrap();
            for batch in [1usize, 2, 3, 7] {
                let x = test_inputs(batch, 2, 20);
                let reference = model.predict_proba(&x).unwrap();
                let got = plan.predict_proba(&x).unwrap();
                assert_eq!(reference.dims(), got.dims());
                for (i, (a, b)) in reference.data().iter().zip(got.data().iter()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "bits={bits} batch={batch} elem {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_is_tape_free() {
        let model = build_model(8);
        let mut plan = model.compile().unwrap();
        let x = test_inputs(4, 2, 20);
        // Warm up scratch, then measure.
        plan.predict_proba(&x).unwrap();
        let before = tapes_created();
        for _ in 0..10 {
            plan.predict_proba(&x).unwrap();
        }
        assert_eq!(tapes_created(), before, "compiled inference constructed a Tape");
    }

    #[test]
    fn plan_is_pool_miss_free_after_warmup() {
        use lightts_tensor::pool::thread_pool_misses;
        let model = build_model(8);
        let mut plan = model.compile().unwrap();
        let x = test_inputs(3, 2, 20);
        let mut out = Vec::new();
        // Warm up scratch (and the thread-local pool), then measure. The
        // thread-local counter keeps concurrent tests from polluting this.
        plan.logits_into(x.data(), 3, &mut out).unwrap();
        let before = thread_pool_misses();
        for _ in 0..10 {
            plan.logits_into(x.data(), 3, &mut out).unwrap();
        }
        assert_eq!(
            thread_pool_misses(),
            before,
            "steady-state compiled inference allocated fresh pool slabs"
        );
    }

    #[test]
    fn plan_rejects_bad_input_lengths() {
        let model = build_model(8);
        let mut plan = model.compile().unwrap();
        let mut out = Vec::new();
        assert!(plan.logits_into(&[0.0; 7], 1, &mut out).is_err());
        assert!(plan.logits_into(&[], 0, &mut out).is_err());
    }
}
