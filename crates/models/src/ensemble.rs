//! Ensembles of base models — the teachers of LightTS (paper Figure 6).
//!
//! An [`Ensemble`] holds `N` trained base models that share a class set. Its
//! own prediction is the uniform average of member distributions (`1/N`, the
//! classic combination of paper Figure 1(a)) — that average is `FP-Ensem` in
//! the experiments — while distillation consumers query the *per-member*
//! distributions `q_i` directly.
//!
//! [`train_ensemble`] trains the N members in parallel with decorrelated
//! seeds ("initialized with different random states to ensure diversity",
//! Section 4.1.4).

use crate::inception::{InceptionConfig, InceptionTime, TrainConfig};
use crate::nondeep::cif::CanonicalIntervalForest;
use crate::nondeep::forest::{ForestConfig, TimeSeriesForest};
use crate::nondeep::tde::{TdeConfig, TemporalDictionaryEnsemble};
use crate::{Classifier, ModelError, Result};
use lightts_data::LabeledDataset;
use lightts_tensor::rng::{derive_seed, seeded};
use lightts_tensor::Tensor;

/// The base-model families evaluated in the paper (Section 4.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseModelKind {
    /// InceptionTime (default, deep).
    InceptionTime,
    /// Temporal Dictionary Ensemble.
    Tde,
    /// Canonical Interval Forest.
    Cif,
    /// Time Series Forest.
    Forest,
}

impl BaseModelKind {
    /// Display name matching the paper's tables.
    pub fn as_str(&self) -> &'static str {
        match self {
            BaseModelKind::InceptionTime => "InceptionTime",
            BaseModelKind::Tde => "TDE",
            BaseModelKind::Cif => "CIF",
            BaseModelKind::Forest => "Forest",
        }
    }
}

/// Training configuration for [`train_ensemble`].
#[derive(Debug, Clone)]
pub struct EnsembleTrainConfig {
    /// Number of base models `N` (paper default: 10).
    pub n_members: usize,
    /// Master seed; member seeds are derived.
    pub seed: u64,
    /// InceptionTime width (filters per conv layer).
    pub filters: usize,
    /// InceptionTime training hyper-parameters.
    pub inception: TrainConfig,
    /// Interval-forest hyper-parameters (TSF and CIF).
    pub forest: ForestConfig,
    /// TDE hyper-parameters.
    pub tde: TdeConfig,
}

impl Default for EnsembleTrainConfig {
    fn default() -> Self {
        EnsembleTrainConfig {
            n_members: 10,
            seed: 0x7EAC,
            filters: 8,
            inception: TrainConfig::default(),
            forest: ForestConfig::default(),
            tde: TdeConfig::default(),
        }
    }
}

/// An ensemble of trained base models sharing one class set.
pub struct Ensemble {
    members: Vec<Box<dyn Classifier>>,
    name: String,
}

impl Ensemble {
    /// Wraps trained members, validating they agree on the class count.
    pub fn new(name: impl Into<String>, members: Vec<Box<dyn Classifier>>) -> Result<Self> {
        if members.is_empty() {
            return Err(ModelError::BadConfig { what: "ensemble needs ≥ 1 member".into() });
        }
        let k = members[0].num_classes();
        if members.iter().any(|m| m.num_classes() != k) {
            return Err(ModelError::BadConfig {
                what: "ensemble members disagree on class count".into(),
            });
        }
        Ok(Ensemble { members, name: name.into() })
    }

    /// Number of members `N`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member `i`.
    pub fn member(&self, i: usize) -> Result<&dyn Classifier> {
        self.members
            .get(i)
            .map(|m| m.as_ref())
            .ok_or(ModelError::BadConfig { what: format!("no member {i}") })
    }

    /// Per-member class distributions `q_i` for a batch.
    pub fn member_probs(&self, inputs: &Tensor) -> Result<Vec<Tensor>> {
        self.members.iter().map(|m| m.predict_proba(inputs)).collect()
    }

    /// Per-member class distributions over a whole dataset.
    pub fn member_probs_dataset(&self, ds: &LabeledDataset) -> Result<Vec<Tensor>> {
        self.members.iter().map(|m| m.predict_proba_dataset(ds)).collect()
    }

    /// Builds a sub-ensemble keeping only the members at `keep` (used by
    /// teacher removal).
    pub fn subset_probs(member_probs: &[Tensor], keep: &[usize]) -> Result<Vec<Tensor>> {
        keep.iter()
            .map(|&i| {
                member_probs
                    .get(i)
                    .cloned()
                    .ok_or(ModelError::BadConfig { what: format!("no member {i}") })
            })
            .collect()
    }
}

impl Classifier for Ensemble {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_classes(&self) -> usize {
        self.members[0].num_classes()
    }

    /// Uniform-average combination `q = 1/N Σ q_i` (paper Figure 1(a)).
    fn predict_proba(&self, inputs: &Tensor) -> Result<Tensor> {
        let mut acc: Option<Tensor> = None;
        for m in &self.members {
            let p = m.predict_proba(inputs)?;
            acc = Some(match acc {
                None => p,
                Some(a) => a.add(&p)?,
            });
        }
        let acc = acc.expect("ensemble is non-empty");
        Ok(acc.scale(1.0 / self.members.len() as f32))
    }
}

/// Trains an `N`-member ensemble of the given kind, members in parallel.
pub fn train_ensemble(
    kind: BaseModelKind,
    train: &LabeledDataset,
    cfg: &EnsembleTrainConfig,
) -> Result<Ensemble> {
    if cfg.n_members == 0 {
        return Err(ModelError::BadConfig { what: "n_members must be ≥ 1".into() });
    }
    let results: Vec<Result<Box<dyn Classifier>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.n_members)
            .map(|i| {
                let member_seed = derive_seed(cfg.seed, i as u64);
                scope.spawn(move || train_member(kind, train, cfg, member_seed, i))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("trainer thread panicked")).collect()
    });
    let members = results.into_iter().collect::<Result<Vec<_>>>()?;
    Ensemble::new(format!("{}-ensemble", kind.as_str()), members)
}

fn train_member(
    kind: BaseModelKind,
    train: &LabeledDataset,
    cfg: &EnsembleTrainConfig,
    seed: u64,
    index: usize,
) -> Result<Box<dyn Classifier>> {
    match kind {
        BaseModelKind::InceptionTime => {
            let icfg = InceptionConfig::teacher(
                train.dims(),
                train.series_len(),
                train.num_classes(),
                cfg.filters,
            );
            let mut rng = seeded(seed);
            let mut model = InceptionTime::new(icfg, &mut rng)?;
            model.set_name(format!("InceptionTime-{index}"));
            let mut tc = cfg.inception;
            tc.seed = derive_seed(seed, 1);
            model.fit(train, &tc)?;
            Ok(Box::new(model))
        }
        BaseModelKind::Tde => Ok(Box::new(TemporalDictionaryEnsemble::fit(train, &cfg.tde, seed)?)),
        BaseModelKind::Cif => Ok(Box::new(CanonicalIntervalForest::fit(train, &cfg.forest, seed)?)),
        BaseModelKind::Forest => Ok(Box::new(TimeSeriesForest::fit(train, &cfg.forest, seed)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use lightts_data::synth::{Generator, SynthConfig};

    fn data(classes: usize, n: usize, seed: u64) -> LabeledDataset {
        let gen = Generator::new(
            SynthConfig { classes, dims: 1, length: 32, difficulty: 0.15, waveforms: 3 },
            seed,
        );
        gen.split("ens-test", n, seed + 1).unwrap()
    }

    fn quick_cfg(n: usize) -> EnsembleTrainConfig {
        EnsembleTrainConfig {
            n_members: n,
            seed: 1,
            filters: 4,
            inception: TrainConfig { epochs: 10, batch_size: 16, lr: 0.01, adam: true, seed: 2 },
            ..EnsembleTrainConfig::default()
        }
    }

    #[test]
    fn forest_ensemble_beats_chance_and_averages() {
        let train = data(3, 60, 70);
        let ens = train_ensemble(BaseModelKind::Forest, &train, &quick_cfg(3)).unwrap();
        assert_eq!(ens.len(), 3);
        let batch = train.full_batch().unwrap();
        let probs = ens.predict_proba(&batch.inputs).unwrap();
        let acc = accuracy(&probs, &batch.labels).unwrap();
        assert!(acc > 0.5, "ensemble accuracy {acc}");

        // average of member distributions equals ensemble output
        let member_probs = ens.member_probs(&batch.inputs).unwrap();
        let mut avg = Tensor::zeros(probs.dims());
        for p in &member_probs {
            avg = avg.add(p).unwrap();
        }
        let avg = avg.scale(1.0 / member_probs.len() as f32);
        for (a, b) in avg.data().iter().zip(probs.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn members_are_diverse() {
        let train = data(3, 40, 71);
        let ens = train_ensemble(BaseModelKind::Tde, &train, &quick_cfg(3)).unwrap();
        let batch = train.full_batch().unwrap();
        let probs = ens.member_probs(&batch.inputs).unwrap();
        assert!(probs[0] != probs[1] || probs[1] != probs[2], "members should differ across seeds");
    }

    #[test]
    fn inception_ensemble_trains_in_parallel() {
        let train = data(2, 32, 72);
        let ens = train_ensemble(BaseModelKind::InceptionTime, &train, &quick_cfg(2)).unwrap();
        assert_eq!(ens.len(), 2);
        let batch = train.full_batch().unwrap();
        let acc = accuracy(&ens.predict_proba(&batch.inputs).unwrap(), &batch.labels).unwrap();
        assert!(acc > 0.5, "inception ensemble train accuracy {acc}");
    }

    #[test]
    fn empty_ensemble_rejected() {
        assert!(Ensemble::new("x", vec![]).is_err());
        let train = data(2, 16, 73);
        let cfg = EnsembleTrainConfig { n_members: 0, ..quick_cfg(1) };
        assert!(train_ensemble(BaseModelKind::Forest, &train, &cfg).is_err());
    }

    #[test]
    fn subset_probs_selects_members() {
        let t = |v: f32| Tensor::full(&[2, 2], v);
        let all = vec![t(0.1), t(0.2), t(0.3)];
        let sub = Ensemble::subset_probs(&all, &[2, 0]).unwrap();
        assert_eq!(sub[0].data()[0], 0.3);
        assert_eq!(sub[1].data()[0], 0.1);
        assert!(Ensemble::subset_probs(&all, &[5]).is_err());
    }
}
