//! The classifier abstraction: anything that maps series to class
//! distributions.

use crate::Result;
use lightts_data::LabeledDataset;
use lightts_tensor::Tensor;

/// A trained time-series classifier.
///
/// LightTS is model-agnostic: "It is only required that the base models
/// output class distributions" (paper Section 3.1). This trait is that
/// requirement. Implementations must be `Send + Sync` so ensembles can be
/// queried from worker threads.
pub trait Classifier: Send + Sync {
    /// A short human-readable name (`"InceptionTime"`, `"TDE"`, …).
    fn name(&self) -> &str;

    /// Number of classes the classifier outputs.
    fn num_classes(&self) -> usize;

    /// Class distributions for a batch of inputs `[batch, dims, length]`,
    /// returned as `[batch, classes]` rows summing to one.
    fn predict_proba(&self, inputs: &Tensor) -> Result<Tensor>;

    /// Class distributions for a whole dataset, evaluated in chunks to bound
    /// peak memory.
    fn predict_proba_dataset(&self, ds: &LabeledDataset) -> Result<Tensor> {
        let chunk = 256usize;
        let mut rows: Vec<Tensor> = Vec::with_capacity(ds.len());
        let mut i = 0;
        while i < ds.len() {
            let hi = (i + chunk).min(ds.len());
            let idx: Vec<usize> = (i..hi).collect();
            let batch = ds.batch(&idx)?;
            let probs = self.predict_proba(&batch.inputs)?;
            for r in 0..probs.dims()[0] {
                rows.push(probs.row(r)?);
            }
            i = hi;
        }
        Ok(Tensor::stack_rows(&rows)?)
    }

    /// Predicted label per row of `inputs`.
    fn predict(&self, inputs: &Tensor) -> Result<Vec<usize>> {
        let probs = self.predict_proba(inputs)?;
        (0..probs.dims()[0]).map(|r| Ok(probs.row(r)?.argmax()?)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_data::TimeSeries;

    /// A classifier that predicts class (first observation rounded) mod K.
    struct FirstValueClassifier {
        k: usize,
    }

    impl Classifier for FirstValueClassifier {
        fn name(&self) -> &str {
            "FirstValue"
        }

        fn num_classes(&self) -> usize {
            self.k
        }

        fn predict_proba(&self, inputs: &Tensor) -> Result<Tensor> {
            let (b, _m, l) = (inputs.dims()[0], inputs.dims()[1], inputs.dims()[2]);
            let mut out = Tensor::zeros(&[b, self.k]);
            for bi in 0..b {
                let v = inputs.data()[bi * inputs.dims()[1] * l];
                let cls = (v.round().abs() as usize) % self.k;
                out.set(&[bi, cls], 1.0)?;
            }
            Ok(out)
        }
    }

    #[test]
    fn default_predict_uses_argmax() {
        let c = FirstValueClassifier { k: 3 };
        let x = Tensor::from_vec(vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0], &[3, 1, 2]).unwrap();
        assert_eq!(c.predict(&x).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn dataset_prediction_is_chunked_consistently() {
        let c = FirstValueClassifier { k: 2 };
        let series: Vec<TimeSeries> =
            (0..300).map(|i| TimeSeries::univariate(vec![(i % 2) as f32, 0.0]).unwrap()).collect();
        let labels: Vec<usize> = (0..300).map(|i| i % 2).collect();
        let ds = LabeledDataset::new("t", series, labels.clone(), 2).unwrap();
        let probs = c.predict_proba_dataset(&ds).unwrap();
        assert_eq!(probs.dims(), &[300, 2]);
        for (i, &l) in labels.iter().enumerate() {
            assert_eq!(probs.row(i).unwrap().argmax().unwrap(), l);
        }
    }
}
