//! Non-deep base-model families (paper Section 4.1.4).
//!
//! LightTS is a generic framework: the teacher ensemble may consist of
//! non-deep classifiers as long as they output class distributions. The
//! paper evaluates three such families (Table 4), all reimplemented here on
//! a from-scratch decision-tree substrate:
//!
//! * [`forest::TimeSeriesForest`] — Time Series Forest (\[14\]): random
//!   intervals summarized by mean/std/slope, a randomized tree per feature
//!   set, forest-averaged class distributions.
//! * [`cif::CanonicalIntervalForest`] — CIF (\[36\]): like TSF but with a
//!   richer, catch22-inspired feature catalogue per interval.
//! * [`tde::TemporalDictionaryEnsemble`] — TDE (\[38\]): windows discretized
//!   into words (PAA + quantile alphabet), word histograms classified by
//!   weighted k-NN.

pub mod cif;
pub mod forest;
pub mod intervals;
pub mod tde;
pub mod tree;
