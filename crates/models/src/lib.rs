//! # lightts-models
//!
//! Time-series classifiers for the LightTS reproduction.
//!
//! * [`inception`] — the InceptionTime convolutional classifier (paper
//!   Section 2.2): the default base model *and* the quantized student
//!   architecture. Fully configurable per block (layers, filter length,
//!   bit-width), matching the search space of Section 3.3.1.
//! * [`nondeep`] — the three non-deep base-model families of Section 4.1.4:
//!   the Temporal Dictionary Ensemble (TDE), the Canonical Interval Forest
//!   (CIF), and the Time Series Forest (Forest), built on a from-scratch
//!   decision-tree substrate.
//! * [`inference`] — compiled, tape-free inference plans for serving:
//!   pre-quantized weights, folded batch-norm, reusable scratch buffers,
//!   bitwise identical to the training-crate eval path.
//! * [`qinference`] — the true-int8 sibling of [`inference`]: weights
//!   stored as `i8` codes, conv/linear executed in `i8×i8→i32` integer
//!   kernels, gated by a golden-fixture parity test against the f32 plan.
//! * [`ensemble`] — N-member ensembles with per-member class distributions
//!   (the teachers of Figure 6) and parallel teacher training.
//! * [`metrics`] — Accuracy and Top-5 Accuracy (Section 4.1.2).
//!
//! All classifiers implement [`Classifier`]: they map a batch of series to a
//! class *distribution* per series — the only requirement LightTS places on
//! base models ("It is only required that the base models output class
//! distributions", Section 3.1).

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod classifier;
mod error;

pub mod ensemble;
pub mod forecaster;
pub mod inception;
pub mod inference;
pub mod metrics;
pub mod nondeep;
pub mod qinference;

pub use classifier::Classifier;
pub use error::ModelError;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ModelError>;
