//! A quantizable convolutional forecaster — the regression sibling of
//! [`InceptionTime`](crate::inception::InceptionTime).
//!
//! The paper (Section 3.2.1) claims AED "can be applied to forecasting by
//! replacing the cross entropy term in Equation 2 by a forecasting error
//! term, e.g., mean square error"; this model is the student/teacher family
//! for that extension. It reuses the same block structure (parallel convs
//! with halving filter lengths → batch-norm → ReLU) but ends in a linear
//! regression head over the global-average-pooled features.

use crate::inception::InceptionConfig;
use crate::{ModelError, Result};
use lightts_data::forecast::ForecastDataset;
use lightts_nn::layers::{BatchNorm1d, Conv1d, Linear};
use lightts_nn::optim::{Adam, Optimizer};
use lightts_nn::{Bindings, Mode, ParamStore};
use lightts_tensor::rng::seeded;
use lightts_tensor::tape::{Tape, Var};
use lightts_tensor::Tensor;
use rand::Rng;

/// Configuration of a convolutional forecaster: an InceptionTime-style
/// backbone plus the forecast head size.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastConfig {
    /// Backbone blocks (layers/filter-length/bits per block, as in the
    /// classification search space).
    pub backbone: InceptionConfig,
    /// Output values per window: `dims × horizon`.
    pub out_len: usize,
}

impl ForecastConfig {
    /// A small default forecaster for the given task shape.
    pub fn for_task(ds: &ForecastDataset, filters: usize, bits: u8) -> Self {
        let mut backbone = InceptionConfig::student(
            ds.dims(),
            ds.history(),
            // num_classes is unused by the backbone body; keep it valid
            1,
            filters,
            bits,
        );
        // forecasting favours shorter filters than classification
        for b in &mut backbone.blocks {
            b.filter_len = b.filter_len.min(ds.history());
        }
        ForecastConfig { backbone, out_len: ds.dims() * ds.horizon() }
    }
}

struct FBlock {
    convs: Vec<Conv1d>,
    bn: BatchNorm1d,
}

/// A trainable, quantizable convolutional forecaster.
pub struct Forecaster {
    config: ForecastConfig,
    store: ParamStore,
    blocks: Vec<FBlock>,
    head: Linear,
}

impl Forecaster {
    /// Builds a randomly initialized forecaster.
    pub fn new<R: Rng>(config: ForecastConfig, rng: &mut R) -> Result<Self> {
        if config.out_len == 0 {
            return Err(ModelError::BadConfig { what: "forecaster: zero outputs".into() });
        }
        let bc = &config.backbone;
        let mut store = ParamStore::new();
        let mut blocks = Vec::with_capacity(bc.blocks.len());
        let mut cin = bc.in_dims;
        for (i, spec) in bc.blocks.iter().enumerate() {
            let mut convs = Vec::with_capacity(spec.layers);
            for j in 0..spec.layers {
                let k = spec.kernel(j, bc.in_len);
                convs.push(Conv1d::new(
                    &mut store,
                    rng,
                    &format!("fblock{i}.conv{j}"),
                    cin,
                    bc.filters,
                    k,
                    spec.bits,
                )?);
            }
            let bn =
                BatchNorm1d::new(&mut store, &format!("fblock{i}.bn"), spec.layers * bc.filters)?;
            blocks.push(FBlock { convs, bn });
            cin = spec.layers * bc.filters;
        }
        let head_bits = bc.blocks.last().map_or(32, |b| b.bits);
        let head = Linear::with_name(&mut store, rng, "head", cin, config.out_len, head_bits)?;
        Ok(Forecaster { config, store, blocks, head })
    }

    /// The model configuration.
    pub fn config(&self) -> &ForecastConfig {
        &self.config
    }

    /// Model size in bits (quantized accounting).
    pub fn size_bits(&self) -> u64 {
        self.store.size_bits()
    }

    /// Mutable parameter store (for optimizers).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Training forward: predictions `[batch, out_len]` on the tape.
    pub fn forward_train(
        &mut self,
        tape: &mut Tape,
        bind: &mut Bindings,
        inputs: &Tensor,
        mode: Mode,
    ) -> Result<Var> {
        let mut x = tape.constant(inputs.clone());
        let store = &self.store;
        for block in &mut self.blocks {
            let mut outs = Vec::with_capacity(block.convs.len());
            for conv in &block.convs {
                outs.push(conv.forward(tape, bind, store, x)?);
            }
            let cat = tape.concat_channels(&outs)?;
            let normed = block.bn.forward(tape, bind, store, cat, mode)?;
            x = tape.relu(normed)?;
        }
        let pooled = tape.gap(x)?;
        Ok(self.head.forward(tape, bind, store, pooled)?)
    }

    /// Inference predictions on plain tensors.
    pub fn predict(&self, inputs: &Tensor) -> Result<Tensor> {
        let mut x = inputs.clone();
        for block in &self.blocks {
            let mut outs = Vec::with_capacity(block.convs.len());
            for conv in &block.convs {
                outs.push(conv.eval_forward(&self.store, &x)?);
            }
            let cat = crate::inception::concat_channels_plain(&outs)?;
            let normed = block.bn.eval_forward(&self.store, &cat)?;
            x = normed.map(|v| v.max(0.0));
        }
        let pooled = crate::inception::gap_plain(&x)?;
        Ok(self.head.eval_forward(&self.store, &pooled)?)
    }

    /// Supervised MSE training (teacher forecasters).
    ///
    /// Returns the final-epoch training loss.
    pub fn fit(
        &mut self,
        train: &ForecastDataset,
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> Result<f32> {
        let mut rng = seeded(seed);
        let mut opt = Adam::new(lr);
        let mut last = f32::INFINITY;
        let n = train.len();
        let all: Vec<usize> = (0..n).collect();
        // Tape + bindings reused across mini-batches (reset per step) so the
        // steady-state loop is allocation-free; see `lightts_tensor::pool`.
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        for _ in 0..epochs {
            use rand::seq::SliceRandom;
            let mut order = all.clone();
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(32) {
                let (x, y) = train.batch(chunk)?;
                tape.reset();
                bind.reset();
                let pred = self.forward_train(&mut tape, &mut bind, &x, Mode::Train)?;
                let loss = tape.mse_to_target(pred, &y)?;
                loss_sum += tape.value(loss)?.item()?;
                batches += 1;
                let grads = tape.backward(loss)?;
                let pairs = bind.collect_grads(grads);
                opt.step(&mut self.store, &pairs)?;
            }
            last = loss_sum / batches.max(1) as f32;
        }
        Ok(last)
    }

    /// Mean squared forecast error on a dataset.
    pub fn mse_on(&self, ds: &ForecastDataset) -> Result<f32> {
        let pred = self.predict(ds.inputs())?;
        Ok(lightts_nn::loss::mse(&pred, ds.targets())?)
    }

    /// Serializes the forecaster (backbone config, output head size,
    /// batch-norm running statistics, bit-packed parameters).
    pub fn save_bytes(&self) -> Result<Vec<u8>> {
        use bytes::BufMut;
        let bc = &self.config.backbone;
        let mut buf = Vec::new();
        buf.put_slice(b"LTFC");
        buf.put_u16_le(1);
        buf.put_u32_le(bc.blocks.len() as u32);
        for b in &bc.blocks {
            buf.put_u32_le(b.layers as u32);
            buf.put_u32_le(b.filter_len as u32);
            buf.put_u8(b.bits);
        }
        buf.put_u32_le(bc.filters as u32);
        buf.put_u32_le(bc.in_dims as u32);
        buf.put_u32_le(bc.in_len as u32);
        buf.put_u32_le(bc.num_classes as u32);
        buf.put_u32_le(self.config.out_len as u32);
        for block in &self.blocks {
            let (mean, var) = block.bn.running_stats();
            for &m in mean {
                buf.put_f32_le(m);
            }
            for &v in var {
                buf.put_f32_le(v);
            }
        }
        let store_bytes = lightts_nn::serialize::serialize_store(&self.store)?;
        buf.put_u64_le(store_bytes.len() as u64);
        buf.put_slice(&store_bytes);
        Ok(buf)
    }

    /// Loads a forecaster saved by [`Forecaster::save_bytes`].
    pub fn load_bytes(bytes: &[u8]) -> Result<Self> {
        use crate::inception::BlockSpec;
        use bytes::Buf;
        let mut buf = bytes;
        let err = |what: &str| ModelError::BadConfig { what: format!("forecaster load: {what}") };
        if buf.remaining() < 10 {
            return Err(err("truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != b"LTFC" {
            return Err(err("bad magic"));
        }
        if buf.get_u16_le() != 1 {
            return Err(err("unsupported version"));
        }
        let n_blocks = buf.get_u32_le() as usize;
        if n_blocks > 64 || buf.remaining() < n_blocks * 9 {
            return Err(err("bad block table"));
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let layers = buf.get_u32_le() as usize;
            let filter_len = buf.get_u32_le() as usize;
            let bits = buf.get_u8();
            blocks.push(BlockSpec { layers, filter_len, bits });
        }
        if buf.remaining() < 20 {
            return Err(err("truncated config"));
        }
        let backbone = InceptionConfig {
            blocks,
            filters: buf.get_u32_le() as usize,
            in_dims: buf.get_u32_le() as usize,
            in_len: buf.get_u32_le() as usize,
            num_classes: buf.get_u32_le() as usize,
        };
        let out_len = buf.get_u32_le() as usize;
        let config = ForecastConfig { backbone, out_len };
        let mut rng = seeded(0);
        let mut model = Forecaster::new(config.clone(), &mut rng)?;
        for (bi, block) in model.blocks.iter_mut().enumerate() {
            let c = config.backbone.blocks[bi].layers * config.backbone.filters;
            if buf.remaining() < c * 8 {
                return Err(err("truncated batch-norm statistics"));
            }
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for m in &mut mean {
                *m = buf.get_f32_le();
            }
            for v in &mut var {
                *v = buf.get_f32_le();
            }
            block.bn.set_running_stats(&mean, &var)?;
        }
        if buf.remaining() < 8 {
            return Err(err("truncated store length"));
        }
        let store_len = buf.get_u64_le() as usize;
        if buf.remaining() != store_len {
            return Err(err("store length mismatch"));
        }
        let store = lightts_nn::serialize::deserialize_store(buf)?;
        if store.len() != model.store.len() {
            return Err(err("parameter count mismatch"));
        }
        for ((_, a), (_, b)) in model.store.iter().zip(store.iter()) {
            if a.name != b.name || a.value.dims() != b.value.dims() || a.bits != b.bits {
                return Err(err("parameter layout mismatch"));
            }
        }
        model.store = store;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_data::forecast::{synthetic_series, windows_from_series};

    fn task(seed: u64) -> lightts_data::forecast::ForecastSplits {
        let series = synthetic_series(1, 220, 0.05, seed);
        windows_from_series("f", &series, 16, 4, 2, 0.15, 0.15).unwrap()
    }

    #[test]
    fn forecaster_shapes() {
        let s = task(1);
        let cfg = ForecastConfig::for_task(&s.train, 4, 32);
        let mut rng = seeded(2);
        let f = Forecaster::new(cfg, &mut rng).unwrap();
        let pred = f.predict(s.train.inputs()).unwrap();
        assert_eq!(pred.dims(), &[s.train.len(), 4]);
    }

    #[test]
    fn training_beats_predicting_the_mean() {
        let s = task(3);
        let cfg = ForecastConfig::for_task(&s.train, 4, 32);
        let mut rng = seeded(4);
        let mut f = Forecaster::new(cfg, &mut rng).unwrap();
        f.fit(&s.train, 30, 0.01, 5).unwrap();
        let model_mse = f.mse_on(&s.test).unwrap();
        // baseline: predict the global mean of training targets
        let mean = s.train.targets().mean();
        let mut base = 0.0f32;
        for &v in s.test.targets().data() {
            base += (v - mean) * (v - mean);
        }
        base /= s.test.targets().len() as f32;
        assert!(model_mse < 0.7 * base, "forecaster MSE {model_mse} vs mean-baseline {base}");
    }

    #[test]
    fn quantized_forecaster_is_smaller_and_still_works() {
        let s = task(5);
        let mut rng = seeded(6);
        let f32bit = Forecaster::new(ForecastConfig::for_task(&s.train, 4, 32), &mut rng).unwrap();
        let f8bit = Forecaster::new(ForecastConfig::for_task(&s.train, 4, 8), &mut rng).unwrap();
        assert!(f8bit.size_bits() < f32bit.size_bits());
        let pred = f8bit.predict(s.test.inputs()).unwrap();
        assert!(pred.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let s = task(9);
        let cfg = ForecastConfig::for_task(&s.train, 4, 8);
        let mut rng = seeded(10);
        let mut f = Forecaster::new(cfg, &mut rng).unwrap();
        f.fit(&s.train, 5, 0.01, 11).unwrap();
        let bytes = f.save_bytes().unwrap();
        let loaded = Forecaster::load_bytes(&bytes).unwrap();
        let p1 = f.predict(s.test.inputs()).unwrap();
        let p2 = loaded.predict(s.test.inputs()).unwrap();
        for (a, b) in p1.data().iter().zip(p2.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        // corruption is rejected
        assert!(Forecaster::load_bytes(&bytes[..12]).is_err());
        let mut bad = bytes;
        bad[0] = b'X';
        assert!(Forecaster::load_bytes(&bad).is_err());
    }

    #[test]
    fn rejects_zero_outputs() {
        let s = task(7);
        let mut cfg = ForecastConfig::for_task(&s.train, 4, 32);
        cfg.out_len = 0;
        let mut rng = seeded(8);
        assert!(Forecaster::new(cfg, &mut rng).is_err());
    }
}
