//! Property tests for the int8 kernel family (`simd::qdot_i8` /
//! `simd::qgemm_i8t` and the `qint` conv driver).
//!
//! The quantized kernels sit in the *integer-exact* determinism class
//! (`docs/NUMERICS.md`, "Quantized inference"), so unlike the f32 suites
//! these properties demand **exact equality**:
//!
//! * every backend's GEMM equals an i64 brute-force reference bit for bit
//!   (the i64 reference also proves the i32 accumulator never wraps on
//!   supported shapes);
//! * all three forced backends agree bitwise on remainder-lane shapes
//!   (lengths straddling the 16- and 32-lane strides);
//! * quantize→dequantize round-trips stay within half a quantization step;
//! * the lowered quantized conv equals a direct integer convolution with
//!   explicit zero-point padding.

use lightts_tensor::qint::{qconv1d_same_into, ActQuant, QuantizedMatrix};
use lightts_tensor::simd::{qdot_i8_with, qgemm_i8t_with, SimdBackend};
use proptest::prelude::*;

const BACKENDS: [SimdBackend; 3] = [SimdBackend::Scalar, SimdBackend::Sse2, SimdBackend::Avx2];

fn dot_i64(a: &[i8], b: &[i8]) -> i64 {
    a.iter().zip(b).map(|(&x, &y)| i64::from(x) * i64::from(y)).sum()
}

/// Brute-force i64 reference for the transposed GEMM.
fn qgemm_ref(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i64> {
    let mut out = vec![0i64; m * n];
    for i in 0..m {
        for j in 0..n {
            out[i * n + j] = dot_i64(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
        }
    }
    out
}

/// Direct integer "same" convolution with zero-point padding — the oracle
/// for the lowered `qconv1d_same_into`.
fn qconv_ref(
    qw: &[i8],
    qx: &[i8],
    cout: usize,
    cin: usize,
    l: usize,
    k: usize,
    pad: i8,
) -> Vec<i64> {
    let pl = (k - 1) / 2;
    let mut out = vec![0i64; cout * l];
    for co in 0..cout {
        for t in 0..l {
            let mut acc = 0i64;
            for ci in 0..cin {
                for j in 0..k {
                    let src = t + j;
                    let x = if src >= pl && src - pl < l { qx[ci * l + (src - pl)] } else { pad };
                    acc += i64::from(qw[(co * cin + ci) * k + j]) * i64::from(x);
                }
            }
            out[co * l + t] = acc;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every backend's GEMM equals the i64 brute-force reference exactly.
    #[test]
    fn qgemm_matches_i64_reference_on_all_backends(
        m in 1usize..5,
        k in 1usize..70,
        n in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as u8 as i8
        };
        let a: Vec<i8> = (0..m * k).map(|_| next()).collect();
        let b: Vec<i8> = (0..n * k).map(|_| next()).collect();
        let want = qgemm_ref(&a, &b, m, k, n);
        for bk in BACKENDS {
            let mut out = vec![0i32; m * n];
            qgemm_i8t_with(bk, &mut out, &a, &b, m, k, n);
            for (i, (&got, &exp)) in out.iter().zip(&want).enumerate() {
                prop_assert!(i64::from(got) == exp, "bk={:?} elem {}: {} vs {}", bk, i, got, exp);
            }
        }
    }

    /// The three forced backends agree bitwise on dot products whose
    /// lengths straddle the SIMD strides (0/15/16/17/31/32/33/...): the
    /// remainder-lane handling must be invisible.
    #[test]
    fn qdot_backends_bitwise_identical_on_remainder_shapes(
        extra in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as u8 as i8
        };
        for base in [0usize, 15, 16, 17, 31, 32, 33, 47, 48, 49, 63, 64, 65] {
            let len = base + extra;
            let a: Vec<i8> = (0..len).map(|_| next()).collect();
            let b: Vec<i8> = (0..len).map(|_| next()).collect();
            let want = qdot_i8_with(SimdBackend::Scalar, &a, &b);
            prop_assert_eq!(i64::from(want), dot_i64(&a, &b));
            for bk in [SimdBackend::Sse2, SimdBackend::Avx2] {
                let got = qdot_i8_with(bk, &a, &b);
                prop_assert!(got == want, "len={} bk={:?}: {} vs {}", len, bk, got, want);
            }
        }
    }

    /// Symmetric weight quantization round-trips within half a step per
    /// row, and the stored row sums match the codes.
    #[test]
    fn weight_roundtrip_error_within_half_step(
        rows in 1usize..4,
        k in 1usize..32,
        vals in proptest::collection::vec(-8.0f32..8.0, 1..128),
    ) {
        let need = rows * k;
        let src: Vec<f32> = (0..need).map(|i| vals[i % vals.len()]).collect();
        let qm = QuantizedMatrix::quantize_rows_symmetric(&src, rows, k).unwrap();
        for r in 0..rows {
            let deq = qm.dequantize_row(r);
            let half = qm.scales()[r] * 0.5 + 1e-6;
            for (a, b) in src[r * k..(r + 1) * k].iter().zip(&deq) {
                prop_assert!((a - b).abs() <= half, "row {}: {} vs {}", r, a, b);
            }
            let sum: i32 = qm.data()[r * k..(r + 1) * k].iter().map(|&q| i32::from(q)).sum();
            prop_assert_eq!(sum, qm.row_sums()[r]);
        }
    }

    /// Activation quantization round-trips within half a step, keeps codes
    /// in range, and represents 0.0 exactly.
    #[test]
    fn activation_roundtrip_error_within_half_step(
        vals in proptest::collection::vec(-100.0f32..100.0, 1..256),
    ) {
        let aq = ActQuant::fit(&vals);
        prop_assert!(aq.scale > 0.0);
        prop_assert_eq!(aq.dequantize(aq.zero_point), 0.0);
        let mut codes = vec![0i8; vals.len()];
        aq.quantize_into(&vals, &mut codes);
        let half = aq.scale * 0.5 + aq.scale * 1e-4;
        for (&v, &q) in vals.iter().zip(&codes) {
            prop_assert!((v - aq.dequantize(q)).abs() <= half, "{} -> {}", v, q);
        }
    }

    /// The lowered quantized conv (qim2row + qgemm) equals the direct
    /// integer convolution exactly, for kernels shorter and longer than
    /// the series, on every backend via the process-wide entry point.
    #[test]
    fn qconv_matches_direct_integer_reference(
        cin in 1usize..4,
        cout in 1usize..4,
        l in 1usize..14,
        k in 1usize..10,
        pad in -5i8..6,
        seed in 0u64..u64::MAX,
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as u8 as i8
        };
        let wsrc: Vec<f32> = (0..cout * cin * k).map(|_| f32::from(next()) / 16.0).collect();
        let w = QuantizedMatrix::quantize_rows_symmetric(&wsrc, cout, cin * k).unwrap();
        let qx: Vec<i8> = (0..cin * l).map(|_| next()).collect();
        let mut out = vec![0i32; cout * l];
        let mut patch = Vec::new();
        qconv1d_same_into(&mut out, &mut patch, &qx, cin, l, &w, k, pad).unwrap();
        let want = qconv_ref(w.data(), &qx, cout, cin, l, k, pad);
        for (i, (&got, &exp)) in out.iter().zip(&want).enumerate() {
            prop_assert!(i64::from(got) == exp, "elem {}: {} vs {}", i, got, exp);
        }
    }
}

/// Reduction lengths past the AVX2 pre-widening bound (k > 512) take a
/// widen-in-loop fallback; it must agree with the i64 reference and the
/// other backends just as exactly.
#[test]
fn qgemm_large_k_fallback_is_exact_on_all_backends() {
    let (m, k, n) = (5usize, 700usize, 3usize);
    let code = |i: usize| ((i as u64).wrapping_mul(2_654_435_761) >> 24) as u8 as i8;
    let a: Vec<i8> = (0..m * k).map(code).collect();
    let b: Vec<i8> = (0..n * k).map(|i| code(i + 1)).collect();
    let want = qgemm_ref(&a, &b, m, k, n);
    for bk in BACKENDS {
        let mut out = vec![0i32; m * n];
        qgemm_i8t_with(bk, &mut out, &a, &b, m, k, n);
        for (i, (&got, &exp)) in out.iter().zip(&want).enumerate() {
            assert_eq!(i64::from(got), exp, "bk={bk:?} elem {i}");
        }
    }
}

/// Non-proptest spot check: a padded position dequantizes to exactly 0.0
/// through the zero-point correction (the property that makes "same"
/// padding exact in the quantized plan).
#[test]
fn zero_point_padding_cancels_exactly() {
    // One weight row, k=3, input length 2: every output position sees
    // padding. Correct the accumulator by zp·row_sum and the padded terms
    // must vanish.
    let wsrc = [0.5f32, -1.0, 0.25];
    let w = QuantizedMatrix::quantize_rows_symmetric(&wsrc, 1, 3).unwrap();
    let data = [1.25f32, -0.75];
    let aq = ActQuant::fit(&data);
    let mut qx = vec![0i8; 2];
    aq.quantize_into(&data, &mut qx);
    let mut out = vec![0i32; 2];
    let mut patch = Vec::new();
    qconv1d_same_into(&mut out, &mut patch, &qx, 1, 2, &w, 3, aq.zero_point).unwrap();
    // f32 reference conv over the *dequantized* codes with literal zero
    // padding.
    let deq: Vec<f32> = qx.iter().map(|&q| aq.dequantize(q)).collect();
    let wdeq = w.dequantize_row(0);
    for t in 0..2 {
        let mut want = 0.0f32;
        for j in 0..3 {
            let src = t as isize + j as isize - 1;
            if (0..2).contains(&src) {
                want += wdeq[j] * deq[src as usize];
            }
        }
        let zp = i32::from(aq.zero_point);
        let got = (out[t] - zp * w.row_sums()[0]) as f32 * (aq.scale * w.scales()[0]);
        assert!((got - want).abs() < 1e-5, "t={t}: {got} vs {want}");
    }
}
