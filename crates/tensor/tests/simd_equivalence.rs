//! Differential tests for the SIMD backend layer (`lightts_tensor::simd`).
//!
//! Every dispatched kernel has a scalar oracle (`SimdBackend::Scalar`) and
//! up to two vector instantiations (SSE2, AVX2+FMA). `docs/NUMERICS.md`
//! sorts the kernels into three determinism classes; this suite checks each
//! class's claim, via the `*_with` kernel variants so backends can be
//! compared concurrently from many test threads without touching the
//! process-wide toggle:
//!
//! 1. **Backend-invariant kernels** (element-wise ops, transcendentals,
//!    striped reductions, `log_softmax_row`) must agree *bitwise* across
//!    scalar / SSE2 / AVX2 on every shape — including remainder lanes,
//!    empty and single-element inputs — and on NaN/±inf/±0 specials.
//! 2. **FMA-sensitive kernels** (`gemm_row`, `gemm_block4`, `axpy_madd`)
//!    must be bitwise identical between scalar and SSE2 (both unfused),
//!    and bitwise identical between AVX2 and a scalar reference that uses
//!    `f32::mul_add` (both fused, same accumulation order).
//! 3. The transcendental approximations must stay within their documented
//!    ULP budgets of the correctly rounded result (`vec_exp` ≤ 2 ULP,
//!    `vec_tanh` ≤ 2 ULP, `vec_sigmoid` ≤ 3 ULP over the tested ranges;
//!    measured worst cases are 1 / 1 / 2).
//!
//! The few tests that *do* exercise the process-wide backend (clamping,
//! `set_simd_backend`, conv direct-vs-lowered under a forced backend) are
//! serialized behind a mutex, since the cargo test harness runs tests of
//! one binary concurrently in-process.

use lightts_tensor::conv::{conv1d_forward, set_conv_impl, ConvImpl};
use lightts_tensor::simd::{
    add_assign_with, axpy_madd_with, axpy_with, cpu_supports, dot_with, gemm_block4_with,
    gemm_row_with, log_softmax_row_with, mul_assign_with, reduce_sum_sq_with, reduce_sum_with,
    relu_with, scale_with, set_simd_backend, sub_assign_with, sub_scalar_with, sum_exp_with,
    vec_exp_with, vec_sigmoid_with, vec_tanh_with, SimdBackend,
};
use lightts_tensor::Tensor;
use proptest::prelude::*;
use std::sync::Mutex;

/// All three backends; `*_with` clamps unsupported requests down, so on a
/// non-AVX2 host the AVX2 entries degenerate to (already covered) SSE2
/// comparisons rather than failing.
const BACKENDS: [SimdBackend; 3] = [SimdBackend::Scalar, SimdBackend::Sse2, SimdBackend::Avx2];

/// Lengths that hit every remainder-lane case for 4- and 8-wide vectors.
const EDGE_LENS: [usize; 12] = [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33];

/// Serializes the tests that mutate process-wide state (the SIMD backend
/// and the conv implementation toggle).
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn vec_data(len: usize, seed: u32) -> Vec<f32> {
    // Small deterministic LCG; values in roughly [-4, 4] so exp stays
    // comfortably in range and sums stay well-conditioned.
    let mut s = seed.wrapping_mul(2_654_435_761).max(1);
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            ((s >> 8) as f32 / (1 << 24) as f32) * 8.0 - 4.0
        })
        .collect()
}

fn ordered(x: f32) -> i64 {
    let b = x.to_bits();
    if b & 0x8000_0000 != 0 {
        -i64::from(b & 0x7FFF_FFFF)
    } else {
        i64::from(b)
    }
}

/// Distance in representable floats; 0 iff bit-equal (treating ±0 as
/// equal); `u64::MAX` when exactly one side is NaN.
fn ulp_diff(a: f32, b: f32) -> u64 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => 0,
        (false, false) => (ordered(a) - ordered(b)).unsigned_abs(),
        _ => u64::MAX,
    }
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}[{i}]: {g:?} ({:#010x}) != {w:?} ({:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

// ---------------------------------------------------------------------
// Class 1: backend-invariant kernels, bitwise across all backends
// ---------------------------------------------------------------------

/// Runs an in-place kernel under every backend and asserts all outputs are
/// bitwise identical to the scalar oracle's.
fn check_invariant_inplace(xs: &[f32], what: &str, f: impl Fn(SimdBackend, &mut [f32])) {
    let mut oracle = xs.to_vec();
    f(SimdBackend::Scalar, &mut oracle);
    for bk in [SimdBackend::Sse2, SimdBackend::Avx2] {
        let mut out = xs.to_vec();
        f(bk, &mut out);
        assert_bits_eq(&out, &oracle, &format!("{what} [{}]", bk.name()));
    }
}

/// Same for scalar-returning reductions.
fn check_invariant_reduce(xs: &[f32], what: &str, f: impl Fn(SimdBackend, &[f32]) -> f32) {
    let oracle = f(SimdBackend::Scalar, xs);
    for bk in [SimdBackend::Sse2, SimdBackend::Avx2] {
        let got = f(bk, xs);
        assert_eq!(
            got.to_bits(),
            oracle.to_bits(),
            "{what} [{}]: {got:?} != {oracle:?}",
            bk.name()
        );
    }
}

#[test]
fn elementwise_kernels_bitwise_invariant_on_edge_lengths() {
    for &n in &EDGE_LENS {
        let xs = vec_data(n, 11);
        let rhs = vec_data(n, 23);
        check_invariant_inplace(&xs, "add_assign", |bk, o| add_assign_with(bk, o, &rhs));
        check_invariant_inplace(&xs, "sub_assign", |bk, o| sub_assign_with(bk, o, &rhs));
        check_invariant_inplace(&xs, "mul_assign", |bk, o| mul_assign_with(bk, o, &rhs));
        check_invariant_inplace(&xs, "scale", |bk, o| scale_with(bk, o, 1.7));
        check_invariant_inplace(&xs, "sub_scalar", |bk, o| sub_scalar_with(bk, o, 0.3));
        check_invariant_inplace(&xs, "axpy", |bk, o| axpy_with(bk, o, &rhs, -2.5));
        check_invariant_inplace(&xs, "relu", |bk, o| relu_with(bk, o));
        check_invariant_inplace(&xs, "vec_exp", |bk, o| vec_exp_with(bk, o));
        check_invariant_inplace(&xs, "vec_tanh", |bk, o| vec_tanh_with(bk, o));
        check_invariant_inplace(&xs, "vec_sigmoid", |bk, o| vec_sigmoid_with(bk, o));
        check_invariant_inplace(&xs, "log_softmax_row", |bk, o| log_softmax_row_with(bk, o));
        check_invariant_reduce(&xs, "sum_exp", sum_exp_with);
        check_invariant_reduce(&xs, "reduce_sum", reduce_sum_with);
        check_invariant_reduce(&xs, "reduce_sum_sq", reduce_sum_sq_with);
        check_invariant_reduce(&xs, "dot", |bk, x| dot_with(bk, x, &rhs));
    }
}

#[test]
fn transcendental_specials_bitwise_invariant() {
    let specials = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        1e-40, // subnormal
        88.02,
        88.03,
        200.0,
        -87.3,
        -88.0,
        -200.0,
        0.625,
        -0.625,
        f32::MAX,
        f32::MIN,
    ];
    check_invariant_inplace(&specials, "vec_exp/specials", |bk, o| vec_exp_with(bk, o));
    check_invariant_inplace(&specials, "vec_tanh/specials", |bk, o| vec_tanh_with(bk, o));
    check_invariant_inplace(&specials, "vec_sigmoid/specials", |bk, o| vec_sigmoid_with(bk, o));
    check_invariant_inplace(&specials, "relu/specials", |bk, o| relu_with(bk, o));

    // Pinned special-value semantics (scalar oracle; the loop above proved
    // the other backends identical).
    let mut v = specials.to_vec();
    vec_exp_with(SimdBackend::Scalar, &mut v);
    assert!(v[0].is_nan(), "exp(NaN) must stay NaN");
    assert!(v[1].is_finite(), "exp(+inf) saturates, never overflows");
    assert!(
        v[2] > 0.0 && v[2] <= 1.18e-38,
        "exp(-inf) saturates just above the smallest normal, got {:e}",
        v[2]
    );
    assert_eq!(v[3], 1.0);

    let mut v = specials.to_vec();
    vec_tanh_with(SimdBackend::Scalar, &mut v);
    assert!(v[0].is_nan(), "tanh(NaN) must stay NaN");
    assert_eq!(v[1], 1.0, "tanh(+inf) == 1");
    assert_eq!(v[2], -1.0, "tanh(-inf) == -1");
    assert_eq!(v[3].to_bits(), 0.0f32.to_bits(), "tanh(0) == +0");

    let mut v = specials.to_vec();
    vec_sigmoid_with(SimdBackend::Scalar, &mut v);
    assert!(v[0].is_nan(), "sigmoid(NaN) must stay NaN");
    assert_eq!(v[1], 1.0, "sigmoid(+inf) == 1 exactly");
    assert!(v[2] > 0.0 && v[2] < 1e-38, "sigmoid(-inf) saturates to a subnormal, got {:e}", v[2]);
    assert_eq!(v[3], 0.5);
}

#[test]
fn reductions_match_serial_sum_for_short_inputs() {
    // The striped scheme degenerates to the plain left-to-right fold for
    // n < 8 — exactly the pre-SIMD bits. (Not `Iterator::sum`, whose
    // identity element is `-0.0`.) At n = 8 the pairing tree kicks in.
    for n in 0..8usize {
        let xs = vec_data(n, 5);
        let serial: f32 = xs.iter().fold(0.0, |a, &b| a + b);
        assert_eq!(reduce_sum_with(SimdBackend::Avx2, &xs).to_bits(), serial.to_bits(), "n={n}");
        let serial_sq: f32 = xs.iter().fold(0.0, |a, &b| a + b * b);
        assert_eq!(
            reduce_sum_sq_with(SimdBackend::Avx2, &xs).to_bits(),
            serial_sq.to_bits(),
            "sq n={n}"
        );
    }
}

// ---------------------------------------------------------------------
// Class 2: FMA-sensitive kernels
// ---------------------------------------------------------------------

/// Scalar GEMM-row reference parameterized over the madd: `fused=false`
/// mirrors the scalar/SSE2 contract, `fused=true` the AVX2 one. Matches
/// the kernels' k-ascending accumulation order and zero-skip.
fn gemm_row_ref(c: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize, fused: bool) {
    for (p, &av) in a.iter().enumerate().take(k) {
        if av == 0.0 {
            continue;
        }
        let brow = &b[p * n..p * n + n];
        for j in 0..n {
            c[j] = if fused { av.mul_add(brow[j], c[j]) } else { av * brow[j] + c[j] };
        }
    }
}

#[test]
fn gemm_row_honours_per_backend_fma_contract() {
    for &(k, n) in &[(1usize, 1usize), (3, 5), (8, 16), (17, 33), (64, 40), (300, 7)] {
        let a = {
            let mut a = vec_data(k, 31);
            if k > 2 {
                a[k / 2] = 0.0; // exercise the zero-skip
            }
            a
        };
        let b = vec_data(k * n, 37);
        let seed_c = vec_data(n, 41);

        let mut unfused = seed_c.clone();
        gemm_row_ref(&mut unfused, &a, &b, k, n, false);
        let mut fused = seed_c.clone();
        gemm_row_ref(&mut fused, &a, &b, k, n, true);

        for bk in BACKENDS {
            let mut c = seed_c.clone();
            gemm_row_with(bk, &mut c, &a, &b, k, n);
            let want = if bk == SimdBackend::Avx2 && cpu_supports(SimdBackend::Avx2) {
                &fused
            } else {
                &unfused
            };
            assert_bits_eq(&c, want, &format!("gemm_row k={k} n={n} [{}]", bk.name()));
        }
    }
}

#[test]
fn gemm_block4_matches_gemm_row_per_backend() {
    // The 4-row tile must produce exactly the same bits as four independent
    // row kernels under the same backend (same madd per element, same
    // k-order), for every column-remainder case of the 16/8-wide tiles.
    for &(k, n) in &[(5usize, 1usize), (9, 7), (16, 16), (21, 17), (33, 31), (40, 64)] {
        let rows: Vec<Vec<f32>> = (0..4).map(|r| vec_data(k, 51 + r)).collect();
        let b = vec_data(k * n, 57);
        let seeds: Vec<Vec<f32>> = (0..4).map(|r| vec_data(n, 61 + r)).collect();

        for bk in BACKENDS {
            let mut want = seeds.clone();
            for r in 0..4 {
                gemm_row_with(bk, &mut want[r], &rows[r], &b, k, n);
            }
            let mut got = seeds.clone();
            let (g0, rest) = got.split_at_mut(1);
            let (g1, rest) = rest.split_at_mut(1);
            let (g2, g3) = rest.split_at_mut(1);
            gemm_block4_with(
                bk, &mut g0[0], &mut g1[0], &mut g2[0], &mut g3[0], &rows[0], &rows[1], &rows[2],
                &rows[3], &b, k, n,
            );
            for r in 0..4 {
                assert_bits_eq(
                    &got[r],
                    &want[r],
                    &format!("gemm_block4 row {r} k={k} n={n} [{}]", bk.name()),
                );
            }
        }
    }
}

#[test]
fn axpy_madd_honours_per_backend_fma_contract() {
    for &n in &EDGE_LENS {
        let xs = vec_data(n, 71);
        let rhs = vec_data(n, 73);
        let s = -1.3f32;

        let unfused: Vec<f32> = xs.iter().zip(&rhs).map(|(&o, &r)| r * s + o).collect();
        let fused: Vec<f32> = xs.iter().zip(&rhs).map(|(&o, &r)| r.mul_add(s, o)).collect();

        for bk in BACKENDS {
            let mut out = xs.clone();
            axpy_madd_with(bk, &mut out, &rhs, s);
            let want = if bk == SimdBackend::Avx2 && cpu_supports(SimdBackend::Avx2) {
                &fused
            } else {
                &unfused
            };
            assert_bits_eq(&out, want, &format!("axpy_madd n={n} [{}]", bk.name()));
        }
    }
}

// ---------------------------------------------------------------------
// Class 3: accuracy of the transcendental approximations
// ---------------------------------------------------------------------

#[test]
fn vec_exp_ulp_budget_holds_over_dense_sweep() {
    // ~200k points spanning the full non-saturated range.
    let mut worst = 0u64;
    let mut x = -87.0f32;
    while x < 88.0 {
        let mut v = [x];
        vec_exp_with(SimdBackend::Scalar, &mut v);
        let want = (f64::from(x)).exp() as f32;
        worst = worst.max(ulp_diff(v[0], want));
        x += 0.000_9;
    }
    assert!(worst <= 2, "vec_exp worst-case {worst} ULP, budget 2");
}

#[test]
fn vec_tanh_and_sigmoid_ulp_budgets_hold() {
    let mut worst_t = 0u64;
    let mut worst_s = 0u64;
    let mut x = -20.0f32;
    while x < 20.0 {
        let mut t = [x];
        vec_tanh_with(SimdBackend::Scalar, &mut t);
        worst_t = worst_t.max(ulp_diff(t[0], f64::from(x).tanh() as f32));
        let mut s = [x];
        vec_sigmoid_with(SimdBackend::Scalar, &mut s);
        let want_s = (1.0 / (1.0 + (-f64::from(x)).exp())) as f32;
        worst_s = worst_s.max(ulp_diff(s[0], want_s));
        x += 0.000_21;
    }
    assert!(worst_t <= 2, "vec_tanh worst-case {worst_t} ULP, budget 2");
    assert!(worst_s <= 3, "vec_sigmoid worst-case {worst_s} ULP, budget 3");
}

#[test]
fn log_softmax_row_produces_normalized_probabilities() {
    for &n in &[1usize, 3, 9, 16, 33] {
        let mut row = vec_data(n, 81);
        log_softmax_row_with(SimdBackend::Avx2, &mut row);
        vec_exp_with(SimdBackend::Avx2, &mut row);
        let total: f32 = row.iter().sum();
        assert!((total - 1.0).abs() < 1e-5, "probabilities sum to {total} for n={n}");
        assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}

// ---------------------------------------------------------------------
// Randomized sweeps (vendored proptest, sliced fixed-size vectors)
// ---------------------------------------------------------------------

const MAX_N: usize = 257;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_elementwise_and_reductions_invariant(
        xs in proptest::collection::vec(-50.0f32..50.0, MAX_N),
        rhs in proptest::collection::vec(-50.0f32..50.0, MAX_N),
        n in 0usize..MAX_N,
    ) {
        let xs = &xs[..n];
        let rhs = &rhs[..n];
        check_invariant_inplace(xs, "p/add", |bk, o| add_assign_with(bk, o, rhs));
        check_invariant_inplace(xs, "p/mul", |bk, o| mul_assign_with(bk, o, rhs));
        check_invariant_inplace(xs, "p/relu", |bk, o| relu_with(bk, o));
        check_invariant_inplace(xs, "p/tanh", |bk, o| vec_tanh_with(bk, o));
        check_invariant_inplace(xs, "p/sigmoid", |bk, o| vec_sigmoid_with(bk, o));
        check_invariant_reduce(xs, "p/sum", reduce_sum_with);
        check_invariant_reduce(xs, "p/sumsq", reduce_sum_sq_with);
        check_invariant_reduce(xs, "p/dot", |bk, x| dot_with(bk, x, rhs));
    }

    #[test]
    fn prop_exp_and_softmax_invariant(
        xs in proptest::collection::vec(-30.0f32..30.0, MAX_N),
        n in 1usize..MAX_N,
    ) {
        let xs = &xs[..n];
        check_invariant_inplace(xs, "p/exp", |bk, o| vec_exp_with(bk, o));
        check_invariant_inplace(xs, "p/lsm", |bk, o| log_softmax_row_with(bk, o));
        check_invariant_reduce(xs, "p/sum_exp", sum_exp_with);
    }

    #[test]
    fn prop_reduce_sum_tracks_f64_reference(
        xs in proptest::collection::vec(-100.0f32..100.0, MAX_N),
        n in 0usize..MAX_N,
    ) {
        let xs = &xs[..n];
        let want: f64 = xs.iter().map(|&x| f64::from(x)).sum();
        let got = reduce_sum_with(SimdBackend::Avx2, xs);
        prop_assert!((f64::from(got) - want).abs() <= 1e-3 + want.abs() * 1e-5);
    }
}

// ---------------------------------------------------------------------
// Process-wide backend state (serialized behind GLOBAL_STATE)
// ---------------------------------------------------------------------

#[test]
fn set_simd_backend_clamps_and_installs() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    let native = set_simd_backend(SimdBackend::Avx2);
    assert!(cpu_supports(native), "installed backend must be runnable");
    if !cpu_supports(SimdBackend::Avx2) {
        assert!(native < SimdBackend::Avx2, "unsupported request clamps down");
    }
    assert_eq!(set_simd_backend(SimdBackend::Scalar), SimdBackend::Scalar);
    assert_eq!(lightts_tensor::simd::backend(), SimdBackend::Scalar);
    // Restore native detection for any later test in this binary.
    set_simd_backend(native);
    assert_eq!(lightts_tensor::simd::backend(), native);
}

#[test]
fn backend_names_are_stable() {
    assert_eq!(SimdBackend::Scalar.name(), "scalar");
    assert_eq!(SimdBackend::Sse2.name(), "sse2");
    assert_eq!(SimdBackend::Avx2.name(), "avx2");
    assert!(SimdBackend::Scalar < SimdBackend::Sse2);
    assert!(SimdBackend::Sse2 < SimdBackend::Avx2);
}

#[test]
fn conv_direct_matches_lowered_bitwise_under_every_backend() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    let prev = lightts_tensor::simd::backend();
    let x = Tensor::from_vec(vec_data(2 * 3 * 40, 91), &[2, 3, 40]).unwrap();
    let w = Tensor::from_vec(vec_data(5 * 3 * 9, 97), &[5, 3, 9]).unwrap();
    for bk in BACKENDS {
        set_simd_backend(bk);
        set_conv_impl(ConvImpl::Direct);
        let direct = conv1d_forward(&x, &w).unwrap();
        set_conv_impl(ConvImpl::Lowered);
        let lowered = conv1d_forward(&x, &w).unwrap();
        assert_bits_eq(
            lowered.data(),
            direct.data(),
            &format!("conv direct vs lowered [{}]", bk.name()),
        );
    }
    set_conv_impl(ConvImpl::Auto);
    set_simd_backend(prev);
}
