//! Property-based tests for the tensor/autodiff substrate.
//!
//! These invariants are the foundation the whole reproduction rests on:
//! if gradients and quantization are right, the AED optimization dynamics
//! (paper Algorithm 1) are trustworthy.

use lightts_tensor::quant::{fake_quantize, max_roundtrip_error, QuantParams};
use lightts_tensor::tape::Tape;
use lightts_tensor::{conv, Tensor};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Softmax rows always form a probability distribution.
    #[test]
    fn softmax_rows_is_simplex(data in small_vec(12)) {
        let t = Tensor::from_vec(data, &[3, 4]).unwrap();
        let s = t.softmax_rows().unwrap();
        for i in 0..3 {
            let row = s.row(i).unwrap();
            let sum: f32 = row.data().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.data().iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    /// Quantization round-trip error is bounded by half a step for any bits.
    #[test]
    fn quantization_error_bound(data in small_vec(32), bits in 2u8..16) {
        let t = Tensor::from_vec(data, &[32]).unwrap();
        let qp = QuantParams::fit(t.data(), bits).unwrap();
        let q = fake_quantize(&t, bits).unwrap();
        let bound = max_roundtrip_error(&qp) + 1e-4;
        for (a, b) in t.data().iter().zip(q.data().iter()) {
            prop_assert!((a - b).abs() <= bound);
        }
    }

    /// Quantization is idempotent: quantizing twice equals quantizing once.
    #[test]
    fn quantization_idempotent(data in small_vec(16), bits in 2u8..12) {
        let t = Tensor::from_vec(data, &[16]).unwrap();
        let q1 = fake_quantize(&t, bits).unwrap();
        let q2 = fake_quantize(&q1, bits).unwrap();
        for (a, b) in q1.data().iter().zip(q2.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(a in small_vec(6), b in small_vec(6), c in small_vec(12)) {
        let ta = Tensor::from_vec(a, &[2, 3]).unwrap();
        let tb = Tensor::from_vec(b, &[2, 3]).unwrap();
        let tc = Tensor::from_vec(c, &[3, 4]).unwrap();
        let lhs = ta.add(&tb).unwrap().matmul(&tc).unwrap();
        let rhs = ta.matmul(&tc).unwrap().add(&tb.matmul(&tc).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Convolution is linear in the input.
    #[test]
    fn conv_linear_in_input(x1 in small_vec(12), x2 in small_vec(12), w in small_vec(6)) {
        let t1 = Tensor::from_vec(x1, &[1, 2, 6]).unwrap();
        let t2 = Tensor::from_vec(x2, &[1, 2, 6]).unwrap();
        let tw = Tensor::from_vec(w, &[1, 2, 3]).unwrap();
        let lhs = conv::conv1d_forward(&t1.add(&t2).unwrap(), &tw).unwrap();
        let rhs = conv::conv1d_forward(&t1, &tw)
            .unwrap()
            .add(&conv::conv1d_forward(&t2, &tw).unwrap())
            .unwrap();
        for (a, b) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// End-to-end gradient check of a small conv→relu→gap→logits→CE graph.
    #[test]
    fn network_gradient_matches_finite_difference(
        xs in small_vec(12),
        ws in small_vec(8),
        seedless_shift in -1.0f32..1.0,
    ) {
        let x = Tensor::from_vec(xs, &[2, 1, 6]).unwrap();
        let w0 = Tensor::from_vec(ws.clone(), &[2, 1, 4]).unwrap().scale(0.5)
            .add_scalar(seedless_shift * 0.1);
        let targets = vec![0usize, 1];

        // Discard cases whose pre-activations sit on (or near) the ReLU
        // kink: there the loss is non-smooth and finite differences do not
        // estimate the (sub)gradient the tape computes. Shrunken inputs
        // (all zeros) otherwise land exactly on the kink.
        let pre = conv::conv1d_forward(&x, &w0).unwrap();
        prop_assume!(pre.data().iter().all(|v| v.abs() > 0.06));

        let loss_fn = |w: &Tensor| -> f32 {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let wv = tape.leaf(w.clone(), false);
            let y = tape.conv1d(xv, wv).unwrap();
            let r = tape.relu(y).unwrap();
            let g = tape.gap(r).unwrap();
            let lp = tape.log_softmax(g).unwrap();
            let l = tape.nll_mean(lp, &targets).unwrap();
            tape.value(l).unwrap().item().unwrap()
        };

        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let wv = tape.leaf(w0.clone(), true);
        let y = tape.conv1d(xv, wv).unwrap();
        let r = tape.relu(y).unwrap();
        let g = tape.gap(r).unwrap();
        let lp = tape.log_softmax(g).unwrap();
        let l = tape.nll_mean(lp, &targets).unwrap();
        let grads = tape.backward(l).unwrap();
        let gw = grads.get(wv).unwrap();

        // Finite differences are invalid where a ReLU kink lies inside the
        // probe interval; detect that by comparing two FD scales and skip
        // coordinates where they disagree (non-smooth point).
        let fd_at = |i: usize, eps: f32| {
            let mut wp = w0.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w0.clone();
            wm.data_mut()[i] -= eps;
            (loss_fn(&wp) - loss_fn(&wm)) / (2.0 * eps)
        };
        for i in 0..w0.len() {
            let fd1 = fd_at(i, 1e-2);
            let fd2 = fd_at(i, 5e-3);
            if (fd1 - fd2).abs() > 0.02 + 0.05 * fd1.abs() {
                continue; // kink inside the probe interval
            }
            let an = gw.data()[i];
            prop_assert!(
                (an - fd1).abs() < 0.05 + 0.1 * fd1.abs(),
                "i={} analytic={} fd={}", i, an, fd1
            );
        }
    }

    /// Gumbel-reparameterized "unimportance" always forms a simplex.
    #[test]
    fn gumbel_softmax_simplex(lams in small_vec(5), tau in 0.1f32..5.0, seed in 0u64..1000) {
        use lightts_tensor::rng::{gumbel_vec, seeded};
        let mut rng = seeded(seed);
        let gs = gumbel_vec(&mut rng, lams.len());
        let logits: Vec<f32> = lams.iter().zip(gs.iter()).map(|(&l, &g)| (-l + g) / tau).collect();
        let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&v| (v - mx).exp()).collect();
        let z: f32 = exps.iter().sum();
        let gamma: Vec<f32> = exps.iter().map(|&e| e / z).collect();
        let sum: f32 = gamma.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(gamma.iter().all(|&g| g.is_finite() && g >= 0.0));
    }
}
