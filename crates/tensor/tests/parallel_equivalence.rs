//! Differential tests for the parallel kernel layer.
//!
//! Every kernel in `lightts-tensor` has two execution modes: the serial
//! oracle (the `parallel` feature disabled, or one thread) and the
//! thread-pool path. The kernels are *designed* to be bitwise identical —
//! they split work only along disjoint output rows and reduce in fixed
//! chunk order — and this suite checks that claim three ways:
//!
//! 1. randomized comparison against independent brute-force reference
//!    implementations written directly from the math (tolerance 1e-5);
//! 2. bitwise agreement between the default thread count and a forced
//!    single thread on shapes large enough to engage the pool;
//! 3. finite-difference gradient checks on conv shapes large enough that
//!    the backward kernels run parallel.
//!
//! CI runs this suite with `--no-default-features` too, so the same
//! assertions also pin the serial build.
//!
//! The shapes here sit below the GEMM-lowering threshold, so `conv1d_*`
//! dispatch to the direct kernels: this suite pins the *direct* path.
//! `conv_lowering.rs` is the mirror-image suite for the im2col/kn2row
//! lowered kernels (bitwise forward equivalence, tolerance-checked
//! backwards, thread-count invariance, and FD gradients through the
//! pooled-buffer path).

use lightts_tensor::conv::{
    conv1d_backward_input, conv1d_backward_weight, conv1d_forward, same_padding,
};
use lightts_tensor::{par, Tensor};
use proptest::prelude::*;

/// Shapes used by the randomized cases. Data vectors are generated at the
/// maximum size and sliced down, since the vendored proptest has no
/// dependent (`prop_flat_map`) strategies.
const MAX_B: usize = 4;
const MAX_C: usize = 4;
const MAX_L: usize = 64;
const MAX_K: usize = 11;

fn tensor_from(data: &[f32], dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec(data[..n].to_vec(), dims).unwrap()
}

/// Brute-force "same" conv, written from the definition
/// `y[b,co,t] = Σ_ci Σ_j x[b,ci,t+j−pl] · w[co,ci,j]`.
fn conv_forward_ref(x: &Tensor, w: &Tensor) -> (Tensor, Tensor) {
    let (b, cin, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let (cout, _, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    let (pl, _) = same_padding(k);
    let mut y = Tensor::zeros(&[b, cout, l]);
    let mut mag = Tensor::zeros(&[b, cout, l]);
    for bi in 0..b {
        for co in 0..cout {
            for t in 0..l {
                let mut acc = 0.0f64;
                let mut abs = 0.0f64;
                for ci in 0..cin {
                    for j in 0..k {
                        let s = t as isize + j as isize - pl as isize;
                        if s >= 0 && (s as usize) < l {
                            let term = f64::from(x.get(&[bi, ci, s as usize]).unwrap())
                                * f64::from(w.get(&[co, ci, j]).unwrap());
                            acc += term;
                            abs += term.abs();
                        }
                    }
                }
                y.set(&[bi, co, t], acc as f32).unwrap();
                mag.set(&[bi, co, t], abs as f32).unwrap();
            }
        }
    }
    (y, mag)
}

/// Brute-force input gradient: `dx[b,ci,s] = Σ_co Σ_j dy[b,co,s−j+pl] · w[co,ci,j]`.
fn conv_backward_input_ref(dy: &Tensor, w: &Tensor, input_dims: &[usize]) -> (Tensor, Tensor) {
    let (b, cin, l) = (input_dims[0], input_dims[1], input_dims[2]);
    let (cout, _, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    let (pl, _) = same_padding(k);
    let mut dx = Tensor::zeros(&[b, cin, l]);
    let mut mag = Tensor::zeros(&[b, cin, l]);
    for bi in 0..b {
        for ci in 0..cin {
            for s in 0..l {
                let mut acc = 0.0f64;
                let mut abs = 0.0f64;
                for co in 0..cout {
                    for j in 0..k {
                        let t = s as isize - j as isize + pl as isize;
                        if t >= 0 && (t as usize) < l {
                            let term = f64::from(dy.get(&[bi, co, t as usize]).unwrap())
                                * f64::from(w.get(&[co, ci, j]).unwrap());
                            acc += term;
                            abs += term.abs();
                        }
                    }
                }
                dx.set(&[bi, ci, s], acc as f32).unwrap();
                mag.set(&[bi, ci, s], abs as f32).unwrap();
            }
        }
    }
    (dx, mag)
}

/// Brute-force weight gradient: `dw[co,ci,j] = Σ_b Σ_t dy[b,co,t] · x[b,ci,t+j−pl]`.
fn conv_backward_weight_ref(dy: &Tensor, x: &Tensor, weight_dims: &[usize]) -> (Tensor, Tensor) {
    let (cout, cin, k) = (weight_dims[0], weight_dims[1], weight_dims[2]);
    let (b, _, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let (pl, _) = same_padding(k);
    let mut dw = Tensor::zeros(&[cout, cin, k]);
    let mut mag = Tensor::zeros(&[cout, cin, k]);
    for co in 0..cout {
        for ci in 0..cin {
            for j in 0..k {
                let mut acc = 0.0f64;
                let mut abs = 0.0f64;
                for bi in 0..b {
                    for t in 0..l {
                        let s = t as isize + j as isize - pl as isize;
                        if s >= 0 && (s as usize) < l {
                            let term = f64::from(dy.get(&[bi, co, t]).unwrap())
                                * f64::from(x.get(&[bi, ci, s as usize]).unwrap());
                            acc += term;
                            abs += term.abs();
                        }
                    }
                }
                dw.set(&[co, ci, j], acc as f32).unwrap();
                mag.set(&[co, ci, j], abs as f32).unwrap();
            }
        }
    }
    (dw, mag)
}

/// Asserts `fast` matches the f64-accumulated reference `slow` within
/// `1e-5 · max(Σ|terms|, 1)` per element — the f32 error model for a sum
/// whose absolute term mass is `mag` (association noise is proportional to
/// the accumulated magnitude, not the possibly-cancelled result).
fn assert_close(
    fast: &Tensor,
    slow: &Tensor,
    mag: &Tensor,
    what: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.dims(), slow.dims());
    for (i, (a, b)) in fast.data().iter().zip(slow.data().iter()).enumerate() {
        let scale = mag.data()[i].max(1.0);
        prop_assert!(
            (a - b).abs() <= 1e-5 * scale,
            "{} diverges at {}: {} vs {} (term mass {})",
            what,
            i,
            a,
            b,
            scale
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_forward_matches_reference(
        b in 1usize..MAX_B + 1,
        cin in 1usize..MAX_C + 1,
        cout in 1usize..MAX_C + 1,
        l in 8usize..MAX_L + 1,
        k in 1usize..MAX_K + 1,
        xs in proptest::collection::vec(-2.0f32..2.0, MAX_B * MAX_C * MAX_L),
        ws in proptest::collection::vec(-2.0f32..2.0, MAX_C * MAX_C * MAX_K),
    ) {
        let x = tensor_from(&xs, &[b, cin, l]);
        let w = tensor_from(&ws, &[cout, cin, k]);
        let fast = conv1d_forward(&x, &w).unwrap();
        let (slow, mag) = conv_forward_ref(&x, &w);
        assert_close(&fast, &slow, &mag, "conv1d_forward")?;
    }

    #[test]
    fn conv_backward_input_matches_reference(
        b in 1usize..MAX_B + 1,
        cin in 1usize..MAX_C + 1,
        cout in 1usize..MAX_C + 1,
        l in 8usize..MAX_L + 1,
        k in 1usize..MAX_K + 1,
        dys in proptest::collection::vec(-2.0f32..2.0, MAX_B * MAX_C * MAX_L),
        ws in proptest::collection::vec(-2.0f32..2.0, MAX_C * MAX_C * MAX_K),
    ) {
        let dy = tensor_from(&dys, &[b, cout, l]);
        let w = tensor_from(&ws, &[cout, cin, k]);
        let fast = conv1d_backward_input(&dy, &w, &[b, cin, l]).unwrap();
        let (slow, mag) = conv_backward_input_ref(&dy, &w, &[b, cin, l]);
        assert_close(&fast, &slow, &mag, "conv1d_backward_input")?;
    }

    #[test]
    fn conv_backward_weight_matches_reference(
        b in 1usize..MAX_B + 1,
        cin in 1usize..MAX_C + 1,
        cout in 1usize..MAX_C + 1,
        l in 8usize..MAX_L + 1,
        k in 1usize..MAX_K + 1,
        dys in proptest::collection::vec(-2.0f32..2.0, MAX_B * MAX_C * MAX_L),
        xs in proptest::collection::vec(-2.0f32..2.0, MAX_B * MAX_C * MAX_L),
    ) {
        let dy = tensor_from(&dys, &[b, cout, l]);
        let x = tensor_from(&xs, &[b, cin, l]);
        let fast = conv1d_backward_weight(&dy, &x, &[cout, cin, k]).unwrap();
        let (slow, mag) = conv_backward_weight_ref(&dy, &x, &[cout, cin, k]);
        assert_close(&fast, &slow, &mag, "conv1d_backward_weight")?;
    }

    #[test]
    fn matmul_matches_naive_triple_loop(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        avals in proptest::collection::vec(-2.0f32..2.0, 24 * 24),
        bvals in proptest::collection::vec(-2.0f32..2.0, 24 * 24),
    ) {
        let a = tensor_from(&avals, &[m, k]);
        let b = tensor_from(&bvals, &[k, n]);
        let fast = a.matmul(&b).unwrap();
        // independent ijk ordering in f64 (the kernel is f32 ikj + blocking)
        let mut slow = vec![0.0f32; m * n];
        let mut mags = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                let mut abs = 0.0f64;
                for p in 0..k {
                    let term = f64::from(avals[i * k + p]) * f64::from(bvals[p * n + j]);
                    acc += term;
                    abs += term.abs();
                }
                slow[i * n + j] = acc as f32;
                mags[i * n + j] = abs as f32;
            }
        }
        let slow = Tensor::from_vec(slow, &[m, n]).unwrap();
        let mag = Tensor::from_vec(mags, &[m, n]).unwrap();
        assert_close(&fast, &slow, &mag, "matmul")?;
    }

    #[test]
    fn elementwise_and_reductions_match_naive(
        n in 1usize..40_000,
        vals in proptest::collection::vec(-2.0f32..2.0, 40_000),
        s in -2.0f32..2.0,
    ) {
        let a = tensor_from(&vals, &[n]);
        let b = tensor_from(&vals[1..], &[n]);
        let sum_fast = a.add(&b).unwrap();
        let mul_fast = a.mul(&b).unwrap();
        let scale_fast = a.scale(s);
        for i in 0..n {
            prop_assert_eq!(sum_fast.data()[i], vals[i] + vals[i + 1]);
            prop_assert_eq!(mul_fast.data()[i], vals[i] * vals[i + 1]);
            prop_assert_eq!(scale_fast.data()[i], vals[i] * s);
        }
        // chunked sum vs f64 accumulation: loose tolerance covers the
        // (deterministic) difference in association
        let exact: f64 = vals[..n].iter().map(|&v| f64::from(v)).sum();
        prop_assert!(
            (f64::from(a.sum()) - exact).abs() <= 1e-2 * exact.abs().max(1.0),
            "sum {} vs f64 {}",
            a.sum(),
            exact
        );
    }
}

/// A conv shape comfortably past the parallelism threshold so the pool
/// genuinely engages (rows = b·cout = 64, work/row = cin·k·l ≈ 4600).
fn big_conv_case() -> (Tensor, Tensor) {
    let mut rng = lightts_tensor::rng::seeded(99);
    let x = Tensor::randn(&mut rng, &[8, 4, 128], 1.0);
    let w = Tensor::randn(&mut rng, &[8, 4, 9], 1.0);
    (x, w)
}

#[test]
fn thread_count_does_not_change_results_bitwise() {
    let (x, w) = big_conv_case();
    let dy = Tensor::ones(&[8, 8, 128]);

    // Force four threads explicitly: the pool keeps a minimum number of
    // parked workers precisely so this comparison is a genuine
    // multi-threaded-vs-serial check even on a single-core host, where
    // the automatic thread count would be 1 and the test would be vacuous.
    par::set_num_threads(4);
    let y_multi = conv1d_forward(&x, &w).unwrap();
    let dx_multi = conv1d_backward_input(&dy, &w, x.dims()).unwrap();
    let dw_multi = conv1d_backward_weight(&dy, &x, w.dims()).unwrap();
    let a = Tensor::randn(&mut lightts_tensor::rng::seeded(7), &[96, 80], 1.0);
    let b = Tensor::randn(&mut lightts_tensor::rng::seeded(8), &[80, 96], 1.0);
    let mm_multi = a.matmul(&b).unwrap();
    let sum_multi = x.sum();

    par::set_num_threads(1);
    let y_serial = conv1d_forward(&x, &w).unwrap();
    let dx_serial = conv1d_backward_input(&dy, &w, x.dims()).unwrap();
    let dw_serial = conv1d_backward_weight(&dy, &x, w.dims()).unwrap();
    let mm_serial = a.matmul(&b).unwrap();
    let sum_serial = x.sum();
    par::set_num_threads(0);

    for (name, multi, serial) in [
        ("forward", &y_multi, &y_serial),
        ("backward_input", &dx_multi, &dx_serial),
        ("backward_weight", &dw_multi, &dw_serial),
        ("matmul", &mm_multi, &mm_serial),
    ] {
        for (i, (p, s)) in multi.data().iter().zip(serial.data().iter()).enumerate() {
            assert_eq!(p.to_bits(), s.to_bits(), "{name} differs at {i}: {p} vs {s}");
        }
    }
    assert_eq!(sum_multi.to_bits(), sum_serial.to_bits(), "sum differs");
}

/// Finite-difference check of both conv gradients on a shape large enough
/// for the backward kernels to run on the pool. Only a sample of
/// coordinates is probed — full FD on this shape would dominate the suite.
#[test]
fn conv_gradients_match_finite_difference_on_parallel_shapes() {
    let (x, w) = big_conv_case();
    let dy = Tensor::ones(&[8, 8, 128]);
    let dx = conv1d_backward_input(&dy, &w, x.dims()).unwrap();
    let dw = conv1d_backward_weight(&dy, &x, w.dims()).unwrap();

    // f64 accumulation keeps the FD difference clear of f32 reduction noise
    let loss = |x: &Tensor, w: &Tensor| -> f64 {
        conv1d_forward(x, w).unwrap().data().iter().copied().map(f64::from).sum()
    };
    let eps = 1e-2f32;

    let mut rng = lightts_tensor::rng::seeded(123);
    use rand::Rng;
    for _ in 0..12 {
        let i = rng.gen_range(0..x.len());
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let fd = (loss(&xp, &w) - loss(&xm, &w)) / f64::from(2.0 * eps);
        let got = f64::from(dx.data()[i]);
        assert!((got - fd).abs() < 2e-2 * fd.abs().max(1.0), "dx[{i}] = {got} vs fd {fd}");
    }
    for _ in 0..12 {
        let i = rng.gen_range(0..w.len());
        let mut wp = w.clone();
        wp.data_mut()[i] += eps;
        let mut wm = w.clone();
        wm.data_mut()[i] -= eps;
        let fd = (loss(&x, &wp) - loss(&x, &wm)) / f64::from(2.0 * eps);
        let got = f64::from(dw.data()[i]);
        assert!((got - fd).abs() < 2e-2 * fd.abs().max(1.0), "dw[{i}] = {got} vs fd {fd}");
    }
}
