//! Differential tests for the GEMM-lowered conv kernels.
//!
//! Every conv pass has two implementations: the direct nested-loop oracle
//! and the im2col/kn2row lowering onto the shared GEMM kernels (see
//! `src/conv.rs`). This suite pins their relationship:
//!
//! 1. the lowered **forward** is *bitwise* equal to the direct oracle on
//!    random shapes — same per-element accumulation order by construction;
//! 2. the lowered **backwards** agree with the oracle to the f32 error
//!    model `1e-5 · Σ|terms|` (their reduction order differs in
//!    association, deterministically);
//! 3. the lowered kernels are bitwise identical across thread counts
//!    (mirroring `parallel_equivalence.rs` for the direct path);
//! 4. finite differences confirm the lowered gradients — driven through
//!    the pooled-buffer path the training loop uses.
//!
//! Shapes deliberately include kernels **longer than the sequence**
//! (`k > l`, exercising the padding clamps in im2col/col2im) and **even**
//! kernel widths (asymmetric "same" padding). CI runs this suite with
//! `--no-default-features` too, pinning the serial build.

use lightts_tensor::conv::{
    conv1d_backward_input_direct, conv1d_backward_input_lowered, conv1d_backward_weight_direct,
    conv1d_backward_weight_lowered, conv1d_forward_direct, conv1d_forward_lowered,
};
use lightts_tensor::{par, Tensor};
use proptest::prelude::*;

/// Shapes for the randomized cases. `MAX_K > MAX_L` so the padding clamps
/// (`k > l` means the pad exceeds the sequence) are genuinely exercised,
/// and `MAX_CO` is large enough that the panel GEMM hits its 4-row blocks,
/// the 4-row remainder, and the row-by-row tail.
const MAX_B: usize = 3;
const MAX_C: usize = 4;
const MAX_CO: usize = 12;
const MAX_L: usize = 48;
const MAX_K: usize = 56;

fn tensor_from(data: &[f32], dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec(data[..n].to_vec(), dims).unwrap()
}

/// `|t|` elementwise — feeding the direct kernels with absolute values
/// computes the per-element absolute term mass `Σ|terms|` exactly (every
/// product is non-negative, so no cancellation), which is the right scale
/// for association-noise tolerances.
fn abs_tensor(t: &Tensor) -> Tensor {
    Tensor::from_vec(t.data().iter().map(|v| v.abs()).collect(), t.dims()).unwrap()
}

fn assert_close(
    fast: &Tensor,
    slow: &Tensor,
    mag: &Tensor,
    what: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.dims(), slow.dims());
    for (i, (a, b)) in fast.data().iter().zip(slow.data().iter()).enumerate() {
        let scale = mag.data()[i].max(1.0);
        prop_assert!(
            (a - b).abs() <= 1e-5 * scale,
            "{} diverges at {}: {} vs {} (term mass {})",
            what,
            i,
            a,
            b,
            scale
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline contract: the im2col forward accumulates every output
    /// element in the direct kernel's exact `p = ci·k + j` order, so the
    /// two paths must agree to the bit — not within a tolerance.
    #[test]
    fn lowered_forward_is_bitwise_equal_to_direct(
        b in 1usize..MAX_B + 1,
        cin in 1usize..MAX_C + 1,
        cout in 1usize..MAX_CO + 1,
        l in 4usize..MAX_L + 1,
        k in 1usize..MAX_K + 1,
        xs in proptest::collection::vec(-2.0f32..2.0, MAX_B * MAX_C * MAX_L),
        ws in proptest::collection::vec(-2.0f32..2.0, MAX_CO * MAX_C * MAX_K),
    ) {
        let x = tensor_from(&xs, &[b, cin, l]);
        let w = tensor_from(&ws, &[cout, cin, k]);
        let direct = conv1d_forward_direct(&x, &w).unwrap();
        let lowered = conv1d_forward_lowered(&x, &w).unwrap();
        for (i, (d, lo)) in direct.data().iter().zip(lowered.data().iter()).enumerate() {
            prop_assert!(
                d.to_bits() == lo.to_bits(),
                "forward differs at {} (b={} cin={} cout={} l={} k={}): {} vs {}",
                i,
                b,
                cin,
                cout,
                l,
                k,
                d,
                lo
            );
        }
    }

    /// The kn2row input gradient reduces `co` inside the GEMM then scatters
    /// `j`-ascending; the direct oracle interleaves them. Different
    /// association, same sum — compare within the f32 error model.
    #[test]
    fn lowered_backward_input_matches_direct(
        b in 1usize..MAX_B + 1,
        cin in 1usize..MAX_C + 1,
        cout in 1usize..MAX_CO + 1,
        l in 4usize..MAX_L + 1,
        k in 1usize..MAX_K + 1,
        dys in proptest::collection::vec(-2.0f32..2.0, MAX_B * MAX_CO * MAX_L),
        ws in proptest::collection::vec(-2.0f32..2.0, MAX_CO * MAX_C * MAX_K),
    ) {
        let dy = tensor_from(&dys, &[b, cout, l]);
        let w = tensor_from(&ws, &[cout, cin, k]);
        let direct = conv1d_backward_input_direct(&dy, &w, &[b, cin, l]).unwrap();
        let lowered = conv1d_backward_input_lowered(&dy, &w, &[b, cin, l]).unwrap();
        let mag = conv1d_backward_input_direct(&abs_tensor(&dy), &abs_tensor(&w), &[b, cin, l])
            .unwrap();
        assert_close(&lowered, &direct, &mag, "conv1d_backward_input_lowered")?;
    }

    /// The im2col weight gradient reduces `t` inside the GEMM and sums the
    /// batch outside; the direct oracle nests `b` outer, `t` inner.
    #[test]
    fn lowered_backward_weight_matches_direct(
        b in 1usize..MAX_B + 1,
        cin in 1usize..MAX_C + 1,
        cout in 1usize..MAX_CO + 1,
        l in 4usize..MAX_L + 1,
        k in 1usize..MAX_K + 1,
        dys in proptest::collection::vec(-2.0f32..2.0, MAX_B * MAX_CO * MAX_L),
        xs in proptest::collection::vec(-2.0f32..2.0, MAX_B * MAX_C * MAX_L),
    ) {
        let dy = tensor_from(&dys, &[b, cout, l]);
        let x = tensor_from(&xs, &[b, cin, l]);
        let direct = conv1d_backward_weight_direct(&dy, &x, &[cout, cin, k]).unwrap();
        let lowered = conv1d_backward_weight_lowered(&dy, &x, &[cout, cin, k]).unwrap();
        let mag = conv1d_backward_weight_direct(&abs_tensor(&dy), &abs_tensor(&x), &[cout, cin, k])
            .unwrap();
        assert_close(&lowered, &direct, &mag, "conv1d_backward_weight_lowered")?;
    }
}

/// A shape past the parallelism threshold with `cout = 16` so the lowered
/// forward runs two full `GEMM_PANEL_ROWS` chunks per sample.
fn big_case() -> (Tensor, Tensor, Tensor) {
    let mut rng = lightts_tensor::rng::seeded(41);
    let x = Tensor::randn(&mut rng, &[8, 4, 128], 1.0);
    let w = Tensor::randn(&mut rng, &[16, 4, 9], 1.0);
    let dy = Tensor::randn(&mut rng, &[8, 16, 128], 1.0);
    (x, w, dy)
}

/// The lowered kernels split work along fixed panel boundaries, so forcing
/// four workers must reproduce the single-thread result to the bit — the
/// same invariant `parallel_equivalence.rs` pins for the direct path, and
/// the one PR 2's batched-serving equivalence ultimately rests on.
#[test]
fn lowered_kernels_are_bitwise_identical_across_thread_counts() {
    let (x, w, dy) = big_case();

    par::set_num_threads(4);
    let y_multi = conv1d_forward_lowered(&x, &w).unwrap();
    let dx_multi = conv1d_backward_input_lowered(&dy, &w, x.dims()).unwrap();
    let dw_multi = conv1d_backward_weight_lowered(&dy, &x, w.dims()).unwrap();

    par::set_num_threads(1);
    let y_serial = conv1d_forward_lowered(&x, &w).unwrap();
    let dx_serial = conv1d_backward_input_lowered(&dy, &w, x.dims()).unwrap();
    let dw_serial = conv1d_backward_weight_lowered(&dy, &x, w.dims()).unwrap();
    par::set_num_threads(0);

    for (name, multi, serial) in [
        ("forward_lowered", &y_multi, &y_serial),
        ("backward_input_lowered", &dx_multi, &dx_serial),
        ("backward_weight_lowered", &dw_multi, &dw_serial),
    ] {
        for (i, (p, s)) in multi.data().iter().zip(serial.data().iter()).enumerate() {
            assert_eq!(p.to_bits(), s.to_bits(), "{name} differs at {i}: {p} vs {s}");
        }
    }
}

/// Finite-difference check of the lowered gradients, driven exactly the way
/// the training loop drives them: repeated calls reusing the thread-local
/// buffer pool (the first call warms the pool, later calls are served from
/// recycled slabs — FD probing makes dozens of such calls).
#[test]
fn lowered_gradients_match_finite_difference_through_pooled_buffers() {
    let (x, w, _) = big_case();
    let dy = Tensor::ones(&[8, 16, 128]);
    let dx = conv1d_backward_input_lowered(&dy, &w, x.dims()).unwrap();
    let dw = conv1d_backward_weight_lowered(&dy, &x, w.dims()).unwrap();

    let loss = |x: &Tensor, w: &Tensor| -> f64 {
        conv1d_forward_lowered(x, w).unwrap().data().iter().copied().map(f64::from).sum()
    };
    let eps = 1e-2f32;

    let mut rng = lightts_tensor::rng::seeded(301);
    use rand::Rng;
    for _ in 0..10 {
        let i = rng.gen_range(0..x.len());
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let fd = (loss(&xp, &w) - loss(&xm, &w)) / f64::from(2.0 * eps);
        let got = f64::from(dx.data()[i]);
        assert!((got - fd).abs() < 2e-2 * fd.abs().max(1.0), "dx[{i}] = {got} vs fd {fd}");
    }
    for _ in 0..10 {
        let i = rng.gen_range(0..w.len());
        let mut wp = w.clone();
        wp.data_mut()[i] += eps;
        let mut wm = w.clone();
        wm.data_mut()[i] -= eps;
        let fd = (loss(&x, &wp) - loss(&x, &wm)) / f64::from(2.0 * eps);
        let got = f64::from(dw.data()[i]);
        assert!((got - fd).abs() < 2e-2 * fd.abs().max(1.0), "dw[{i}] = {got} vs fd {fd}");
    }
}
