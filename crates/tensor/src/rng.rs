//! Deterministic random-number helpers.
//!
//! Every stochastic component of the reproduction (weight initialization,
//! dataset synthesis, Gumbel noise, Bayesian-optimization sampling) takes an
//! explicit seed so experiments are exactly reproducible. This module
//! provides the seeded generator constructor and the Gumbel sampler used by
//! the confident teacher-removal reparameterization (paper Section 3.2.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic generator from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Captures a generator's full internal state (its stream position).
///
/// Checkpointed loops save this next to their weights so a resumed run
/// draws the exact random sequence the uninterrupted run would have —
/// see [`rng_from_state`].
pub fn rng_state(rng: &StdRng) -> [u64; 4] {
    rng.state()
}

/// Rebuilds a generator at the exact stream position captured by
/// [`rng_state`].
pub fn rng_from_state(s: [u64; 4]) -> StdRng {
    StdRng::from_state(s)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Uses SplitMix64 finalization so nearby `(seed, stream)` pairs produce
/// decorrelated child seeds — this is how, e.g., the ten base models of an
/// ensemble receive "different random states to ensure diversity"
/// (paper Section 4.1.4).
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples standard Gumbel(0, 1) noise: `-ln(-ln(U))`, `U ~ U(0,1)`.
///
/// Used by the Gumbel-Max trick in the teacher-removal reparameterization
/// `γ_i = exp((-λ_i + gs_i)/τ) / Σ_j exp((-λ_j + gs_j)/τ)`.
pub fn gumbel<R: Rng>(rng: &mut R) -> f32 {
    let u: f32 = rng.gen_range(f32::EPSILON..1.0);
    -(-u.ln()).ln()
}

/// Samples `n` standard Gumbel values.
pub fn gumbel_vec<R: Rng>(rng: &mut R, n: usize) -> Vec<f32> {
    (0..n).map(|_| gumbel(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let xa: f64 = a.gen();
        let xb: f64 = b.gen();
        assert_eq!(xa, xb);
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s0 = derive_seed(1, 0);
        let s1 = derive_seed(1, 1);
        let s2 = derive_seed(2, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        // stability: derived seeds are part of the reproducibility contract
        assert_eq!(derive_seed(1, 0), s0);
    }

    #[test]
    fn gumbel_mean_is_near_euler_mascheroni() {
        // E[Gumbel(0,1)] = γ ≈ 0.5772.
        let mut rng = seeded(9);
        let n = 20_000;
        let mean: f32 = (0..n).map(|_| gumbel(&mut rng)).sum::<f32>() / n as f32;
        assert!((mean - 0.5772).abs() < 0.03, "mean was {mean}");
    }

    #[test]
    fn gumbel_vec_len() {
        let mut rng = seeded(1);
        assert_eq!(gumbel_vec(&mut rng, 5).len(), 5);
    }
}
