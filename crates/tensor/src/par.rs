//! Parallel execution layer for the tensor kernels.
//!
//! This module provides a small persistent thread pool plus the helpers the
//! convolution / matmul / elementwise kernels use to fan work out across
//! cores. It exists because the build environment vendors every dependency,
//! so a `rayon`-style work-stealing runtime is not available; the pool here
//! implements the subset the kernels need:
//!
//! * [`par_for`] — run `f(i)` for every index in `0..n`, work distributed
//!   over the pool with an atomic chunk counter (the calling thread
//!   participates, so one-thread configurations never context-switch);
//! * [`par_for_rows`] — split one mutable output buffer into disjoint
//!   fixed-size rows and hand each row to a closure, the pattern every
//!   kernel with an output tensor fits;
//! * [`chunked_sum`] — deterministic chunked reduction (see below).
//!
//! # Determinism
//!
//! Parallel kernels in this crate are required to produce **bitwise
//! identical** results to the serial oracle (the `parallel` feature turned
//! off), regardless of thread count. Kernels achieve this by only
//! parallelising over *disjoint output rows* whose per-element accumulation
//! order is unchanged, and by running reductions in fixed-size chunks that
//! are combined in chunk order. The property tests in
//! `tests/parallel_equivalence.rs` assert the agreement.
//!
//! # Configuration
//!
//! Thread count resolution order:
//! 1. [`set_num_threads`] (also exposed as `lightts::runtime::set_num_threads`),
//! 2. the `LIGHTTS_NUM_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! With the `parallel` cargo feature disabled every helper degrades to its
//! serial loop and no threads are ever spawned.
//!
//! # Interaction with the buffer pool
//!
//! Worker threads never construct or drop [`crate::Tensor`]s — kernels hand
//! them borrowed `&mut [f32]` rows only. All [`crate::pool`] takes and
//! recycles therefore happen on the thread driving the kernel, which keeps
//! the pool's thread-local free lists coherent (no slab ever migrates to a
//! worker's list) and the allocation-free steady state independent of the
//! thread count.

// The crate denies unsafe code; this module is the one audited exception —
// the pool erases a closure lifetime (re-bound before returning) and splits
// one output buffer into disjoint per-row windows.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Explicitly configured thread count; 0 means "not set".
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of threads tensor kernels may use (including the calling
/// thread). `n = 1` forces fully serial execution; `n = 0` resets to
/// automatic detection (`LIGHTTS_NUM_THREADS`, then available
/// parallelism). Takes effect for all subsequent kernel invocations;
/// threads already spawned stay parked but receive no work beyond the
/// configured count.
pub fn set_num_threads(n: usize) {
    CONFIGURED_THREADS.store(n, Ordering::SeqCst);
}

/// The number of threads kernels will use for sufficiently large work.
///
/// Resolution order: [`set_num_threads`], then `LIGHTTS_NUM_THREADS`, then
/// the machine's available parallelism. Always at least 1.
pub fn num_threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::SeqCst);
    if configured != 0 {
        return configured;
    }
    static FALLBACK: OnceLock<usize> = OnceLock::new();
    *FALLBACK.get_or_init(|| {
        std::env::var("LIGHTTS_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Minimum number of scalar operations a kernel call must involve before the
/// pool is engaged; below this the fixed cost of waking workers exceeds the
/// win. Tuned coarsely — the exact value only shifts where tiny ops stay
/// serial, never affects results.
pub const MIN_PARALLEL_WORK: usize = 16 * 1024;

#[cfg(feature = "parallel")]
mod pool {
    use super::{num_threads, MIN_PARALLEL_WORK};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    std::thread_local! {
        /// True on pool worker threads; prevents nested parallelism from
        /// deadlocking by forcing inner kernels to run serially.
        static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    /// One broadcast work item: indices `0..total` are claimed from `next`
    /// by whichever thread gets there first.
    #[derive(Clone)]
    struct Job {
        /// The per-index closure. Lifetime is erased: `run` guarantees the
        /// referent outlives the job by draining all workers before
        /// returning.
        func: &'static (dyn Fn(usize) + Sync),
        next: Arc<AtomicUsize>,
        total: usize,
        /// How many pool workers may join this job, so a pool larger than
        /// the configured thread count never exceeds it.
        max_helpers: usize,
        panicked: Arc<AtomicBool>,
    }

    struct State {
        job: Option<Job>,
        generation: u64,
        running: usize,
    }

    struct Shared {
        state: Mutex<State>,
        work_cv: Condvar,
        done_cv: Condvar,
    }

    struct Pool {
        shared: Arc<Shared>,
        workers: usize,
    }

    fn execute(job: &Job) {
        loop {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.total {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| (job.func)(i))).is_err() {
                job.panicked.store(true, Ordering::SeqCst);
            }
        }
    }

    fn worker_loop(shared: Arc<Shared>) {
        IS_WORKER.with(|w| w.set(true));
        let mut last_generation = 0u64;
        loop {
            let job = {
                let mut st = shared.state.lock().unwrap();
                loop {
                    if st.generation != last_generation {
                        last_generation = st.generation;
                        if let Some(job) = st.job.clone() {
                            if st.running < job.max_helpers {
                                st.running += 1;
                                break job;
                            }
                        }
                    }
                    st = shared.work_cv.wait(st).unwrap();
                }
            };
            execute(&job);
            let mut st = shared.state.lock().unwrap();
            st.running -= 1;
            if st.running == 0 {
                shared.done_cv.notify_all();
            }
        }
    }

    /// Parked workers kept even on small machines, so forced thread counts
    /// (tests, `LIGHTTS_NUM_THREADS` larger than the core count) genuinely
    /// execute multi-threaded. Idle workers sleep on a condvar; the only
    /// cost of the floor is a few parked threads.
    const MIN_POOL_WORKERS: usize = 4;

    /// The process-wide pool, created on the first parallel kernel call
    /// with `max(num_threads(), MIN_POOL_WORKERS) - 1` workers (the caller
    /// is the remaining thread). The pool size is fixed at creation; each
    /// job's `max_helpers` keeps the *active* count at the configured
    /// `num_threads()`, so later `set_num_threads` calls up to the pool
    /// size take full effect and larger values are capped.
    fn pool() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = num_threads().max(MIN_POOL_WORKERS).saturating_sub(1);
            let shared = Arc::new(Shared {
                state: Mutex::new(State { job: None, generation: 0, running: 0 }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            });
            for i in 0..workers {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lightts-par-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn lightts worker thread");
            }
            Pool { shared, workers }
        })
    }

    /// Whether a kernel with `chunks` independent pieces totalling roughly
    /// `total_work` scalar ops should engage the pool.
    pub fn should_parallelize(chunks: usize, total_work: usize) -> bool {
        chunks >= 2
            && total_work >= MIN_PARALLEL_WORK
            && num_threads() > 1
            && !IS_WORKER.with(|w| w.get())
    }

    /// Runs `func(i)` for all `i in 0..total` across the pool. The calling
    /// thread participates; returns once every index has completed.
    pub fn run(total: usize, func: &(dyn Fn(usize) + Sync)) {
        let pool = pool();
        let max_helpers = num_threads().saturating_sub(1).min(pool.workers);
        if max_helpers == 0 {
            for i in 0..total {
                func(i);
            }
            return;
        }
        let job = Job {
            // Safety: the job is dropped from the pool state and all
            // workers are drained before this function returns, so the
            // borrow never escapes the caller's stack frame.
            func: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    func,
                )
            },
            next: Arc::new(AtomicUsize::new(0)),
            total,
            max_helpers,
            panicked: Arc::new(AtomicBool::new(false)),
        };
        {
            let mut st = pool.shared.state.lock().unwrap();
            st.job = Some(job.clone());
            st.generation += 1;
            pool.shared.work_cv.notify_all();
        }
        execute(&job);
        {
            let mut st = pool.shared.state.lock().unwrap();
            st.job = None;
            while st.running > 0 {
                st = pool.shared.done_cv.wait(st).unwrap();
            }
        }
        if job.panicked.load(Ordering::SeqCst) {
            panic!("a lightts-tensor parallel kernel panicked on a worker thread");
        }
    }
}

/// Pointer wrapper asserting that concurrent uses touch disjoint regions.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Runs `f(i)` for every `i in 0..n`.
///
/// `work_per_index` is a rough per-index scalar-op estimate used by the
/// parallelism threshold. `f` must be safe to call concurrently for
/// distinct indices.
pub fn par_for(n: usize, work_per_index: usize, f: impl Fn(usize) + Sync) {
    #[cfg(feature = "parallel")]
    {
        if pool::should_parallelize(n, n.saturating_mul(work_per_index)) {
            pool::run(n, &f);
            return;
        }
    }
    let _ = work_per_index;
    for i in 0..n {
        f(i);
    }
}

/// Splits `out` into disjoint consecutive rows of `row_len` elements and
/// runs `f(row_index, row)` for each, in parallel when worthwhile.
///
/// Panics if `out.len()` is not a multiple of `row_len`. `work_per_row`
/// estimates the scalar ops needed to fill one row (for the threshold).
pub fn par_for_rows<F>(out: &mut [f32], row_len: usize, work_per_row: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() {
        return;
    }
    assert!(row_len > 0 && out.len() % row_len == 0, "par_for_rows: ragged rows");
    let rows = out.len() / row_len;
    #[cfg(feature = "parallel")]
    {
        if pool::should_parallelize(rows, rows.saturating_mul(work_per_row)) {
            let base = SendPtr(out.as_mut_ptr());
            pool::run(rows, &|r| {
                let base = base; // capture the Sync wrapper, not the raw field
                                 // Safety: each row index is claimed exactly once, and rows
                                 // are disjoint `row_len`-sized windows of `out`.
                let row =
                    unsafe { std::slice::from_raw_parts_mut(base.0.add(r * row_len), row_len) };
                f(r, row);
            });
            return;
        }
        let _ = SendPtr(out.as_mut_ptr()); // silence unused in serial-path builds
    }
    let _ = work_per_row;
    for (r, row) in out.chunks_exact_mut(row_len).enumerate() {
        f(r, row);
    }
}

/// Splits `out` into consecutive chunks of at most `chunk` elements (the
/// last chunk may be shorter) and runs `f(chunk_index, chunk)` for each.
///
/// The elementwise kernels use this with position-independent `f`, so the
/// result never depends on the chunking or the thread count.
pub fn par_for_chunks<F>(out: &mut [f32], chunk: usize, work_per_elem: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk > 0, "par_for_chunks: zero chunk size");
    let len = out.len();
    let n_chunks = len.div_ceil(chunk);
    #[cfg(feature = "parallel")]
    {
        if pool::should_parallelize(n_chunks, len.saturating_mul(work_per_elem)) {
            let base = SendPtr(out.as_mut_ptr());
            pool::run(n_chunks, &|c| {
                let base = base; // capture the Sync wrapper, not the raw field
                let lo = c * chunk;
                let hi = (lo + chunk).min(len);
                // Safety: chunk indices are claimed exactly once and the
                // [lo, hi) windows are pairwise disjoint.
                let piece = unsafe { std::slice::from_raw_parts_mut(base.0.add(lo), hi - lo) };
                f(c, piece);
            });
            return;
        }
    }
    let _ = work_per_elem;
    for (c, piece) in out.chunks_mut(chunk).enumerate() {
        f(c, piece);
    }
}

/// Chunk size for deterministic reductions. Fixed (never derived from the
/// thread count) so that results are identical no matter how many threads
/// run; tensors smaller than one chunk reduce exactly like a plain
/// left-to-right loop.
pub const REDUCE_CHUNK: usize = 8192;

/// Sums `data` by reducing fixed-size chunks left-to-right and then
/// combining the chunk partials in order.
///
/// Both the serial and the parallel path use this exact association, so
/// `Tensor::sum` is bitwise reproducible across thread counts and feature
/// configurations.
pub fn chunked_sum(data: &[f32]) -> f32 {
    let n_chunks = data.len().div_ceil(REDUCE_CHUNK).max(1);
    if n_chunks == 1 {
        return data.iter().sum();
    }
    let mut partials = vec![0.0f32; n_chunks];
    par_for_rows(&mut partials, 1, REDUCE_CHUNK, |c, out| {
        let chunk = &data[c * REDUCE_CHUNK..((c + 1) * REDUCE_CHUNK).min(data.len())];
        out[0] = chunk.iter().sum();
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_for_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        par_for(hits.len(), MIN_PARALLEL_WORK, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn par_for_rows_fills_disjoint_rows() {
        let mut out = vec![0.0f32; 64 * 33];
        par_for_rows(&mut out, 33, MIN_PARALLEL_WORK, |r, row| {
            for (t, v) in row.iter_mut().enumerate() {
                *v = (r * 100 + t) as f32;
            }
        });
        for r in 0..64 {
            for t in 0..33 {
                assert_eq!(out[r * 33 + t], (r * 100 + t) as f32);
            }
        }
    }

    #[test]
    fn chunked_sum_matches_plain_sum_small() {
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.25).collect();
        let plain: f32 = data.iter().sum();
        assert_eq!(chunked_sum(&data), plain);
    }

    #[test]
    fn chunked_sum_is_reproducible_large() {
        let data: Vec<f32> = (0..3 * REDUCE_CHUNK + 17).map(|i| (i as f32).sin()).collect();
        let a = chunked_sum(&data);
        let b = chunked_sum(&data);
        assert_eq!(a.to_bits(), b.to_bits());
        let plain: f32 = data.iter().sum();
        assert!((a - plain).abs() < 1e-2 * plain.abs().max(1.0));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn worker_panic_propagates_to_caller() {
        // Force real multi-threading even on single-core hosts: the pool
        // always keeps MIN_POOL_WORKERS parked workers available.
        set_num_threads(2);
        let result = std::panic::catch_unwind(|| {
            par_for(1024, MIN_PARALLEL_WORK, |i| {
                if i == 700 {
                    panic!("boom");
                }
            });
        });
        set_num_threads(0);
        assert!(result.is_err());
    }
}
