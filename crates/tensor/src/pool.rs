//! Grow-only buffer pool: size-bucketed `Vec<f32>` slabs reused across ops.
//!
//! Every transient `f32` buffer that ends up owned by a [`Tensor`](crate::Tensor) is taken
//! from this pool and returned to it when the tensor drops (see the manual
//! `Drop`/`Clone` impls in `tensor.rs`). The pool is the memory half of the
//! GEMM-lowered kernel work: once a steady-state training step has warmed the
//! pool, every conv/matmul/elementwise op is served from recycled slabs and
//! the step performs **zero transient heap allocations** — asserted by the
//! repo-level `allocation_regression` test via the miss counter below.
//!
//! Design:
//! - **Thread-local buckets.** Each thread owns a private free list, so takes
//!   and recycles are lock-free `RefCell` operations. The worker threads in
//!   [`crate::par`] never construct or drop tensors (they operate on borrowed
//!   `&mut [f32]` rows), so in practice only the thread driving a training or
//!   serving loop touches its pool — there is no cross-thread migration and
//!   no shared-state contention.
//! - **Power-of-two buckets.** A request for `n` elements is served from the
//!   bucket of capacity `2^ceil(log2 n)`; recycled vectors are filed under
//!   `floor(log2 capacity)`, which guarantees every resident of bucket `b`
//!   has capacity ≥ `2^b`. A miss allocates exactly `2^ceil(log2 n)` so the
//!   slab is maximally reusable.
//! - **Grow-only.** Slabs are never freed while the thread lives; the pool's
//!   footprint is bounded by the high-water mark of simultaneously-live
//!   buffers, not by the number of ops executed.
//!
//! Only allocations that deterministically return to the pool are routed
//! through it: a `take_*` whose buffer escapes as a plain `Vec<f32>` would
//! drain the pool by one slab per iteration and show up as steady-state
//! misses. Code that hands vectors to callers (serve reply rows, folded
//! batch-norm coefficients, [`Tensor::into_vec`](crate::Tensor::into_vec)) therefore uses ordinary
//! allocation.
//!
//! Counters (process-global, relaxed atomics, mirroring
//! [`crate::tape::tapes_created`]): [`pool_hits`], [`pool_misses`],
//! [`pool_held_bytes`] (bytes currently parked in free lists) and
//! [`pool_high_water_bytes`] (maximum ever parked — exported as a gauge by
//! the serve crate so deployment memory is observable).

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

/// One bucket per possible power-of-two capacity class on a 64-bit host.
const BUCKETS: usize = 48;

static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);
static POOL_HELD_BYTES: AtomicU64 = AtomicU64::new(0);
static POOL_HIGH_WATER_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static FREE_LISTS: RefCell<Vec<Vec<Vec<f32>>>> =
        RefCell::new((0..BUCKETS).map(|_| Vec::new()).collect());
    /// Per-thread miss count: lets a test assert *its own* steady state even
    /// while unrelated test threads in the same process are warming up.
    static LOCAL_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Bucket index a vector of capacity `cap` is filed under (floor log2).
fn floor_bucket(cap: usize) -> usize {
    debug_assert!(cap > 0);
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

/// Bucket index a request for `n` elements is served from (ceil log2).
fn ceil_bucket(n: usize) -> usize {
    debug_assert!(n > 0);
    let b = floor_bucket(n);
    if n.is_power_of_two() {
        b
    } else {
        b + 1
    }
}

/// Takes a slab with capacity ≥ `n` and length 0 from the calling thread's
/// pool, allocating a fresh power-of-two slab on a miss. `n == 0` returns an
/// (allocation-free) empty vector without touching the counters.
pub fn take_empty(n: usize) -> Vec<f32> {
    if n == 0 {
        return Vec::new();
    }
    let b = ceil_bucket(n);
    let got = FREE_LISTS.with(|fl| {
        let mut fl = fl.borrow_mut();
        if let Some(mut v) = fl[b].pop() {
            v.clear();
            return Some(v);
        }
        // Every resident of bucket b-1 has capacity in [2^(b-1), 2^b); when n
        // is not a power of two some of those may still satisfy it.
        if b > 0 && !n.is_power_of_two() {
            let lower = &mut fl[b - 1];
            for i in (0..lower.len()).rev() {
                if lower[i].capacity() >= n {
                    let mut v = lower.swap_remove(i);
                    v.clear();
                    return Some(v);
                }
            }
        }
        None
    });
    match got {
        Some(v) => {
            POOL_HITS.fetch_add(1, Ordering::Relaxed);
            POOL_HELD_BYTES.fetch_sub((v.capacity() * 4) as u64, Ordering::Relaxed);
            v
        }
        None => {
            POOL_MISSES.fetch_add(1, Ordering::Relaxed);
            LOCAL_MISSES.with(|c| c.set(c.get() + 1));
            Vec::with_capacity(1usize << b)
        }
    }
}

/// Takes a slab of exactly `n` zeroed elements.
pub fn take_zeroed(n: usize) -> Vec<f32> {
    let mut v = take_empty(n);
    v.resize(n, 0.0);
    v
}

/// Takes a slab of exactly `n` elements, all equal to `fill`.
pub fn take_filled(n: usize, fill: f32) -> Vec<f32> {
    let mut v = take_empty(n);
    v.resize(n, fill);
    v
}

/// Takes a slab holding a copy of `src`.
pub fn take_copy(src: &[f32]) -> Vec<f32> {
    let mut v = take_empty(src.len());
    v.extend_from_slice(src);
    v
}

/// Returns a slab to the calling thread's pool. Zero-capacity vectors (which
/// never allocated) are dropped without touching the counters.
pub fn recycle(v: Vec<f32>) {
    let cap = v.capacity();
    if cap == 0 {
        return;
    }
    let bytes = (cap * 4) as u64;
    FREE_LISTS.with(|fl| fl.borrow_mut()[floor_bucket(cap)].push(v));
    let held = POOL_HELD_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    POOL_HIGH_WATER_BYTES.fetch_max(held, Ordering::Relaxed);
}

/// Grows `v` to exactly `n` zeroed elements, swapping in a pooled slab when
/// the current capacity is short (the old slab is recycled). Existing
/// contents are discarded; on return `v.len() == n` and every element is 0.
pub fn ensure_zeroed(v: &mut Vec<f32>, n: usize) {
    if v.capacity() < n {
        let old = std::mem::replace(v, take_empty(n));
        recycle(old);
    }
    v.clear();
    v.resize(n, 0.0);
}

/// Number of pool requests served from a free list since process start.
pub fn pool_hits() -> u64 {
    POOL_HITS.load(Ordering::Relaxed)
}

/// Number of pool requests that fell through to the allocator since process
/// start. Steady-state training steps must not move this counter — see the
/// `allocation_regression` test.
pub fn pool_misses() -> u64 {
    POOL_MISSES.load(Ordering::Relaxed)
}

/// Number of pool misses charged to the *calling thread* since it started.
/// Unlike the process-global [`pool_misses`], this is immune to concurrent
/// threads (e.g. other tests in the same binary) warming their own pools, so
/// single-thread steady-state assertions use it.
pub fn thread_pool_misses() -> u64 {
    LOCAL_MISSES.with(|c| c.get())
}

/// Bytes currently parked in free lists across all threads.
pub fn pool_held_bytes() -> u64 {
    POOL_HELD_BYTES.load(Ordering::Relaxed)
}

/// Maximum value [`pool_held_bytes`] has ever reached.
pub fn pool_high_water_bytes() -> u64 {
    POOL_HIGH_WATER_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        assert_eq!(floor_bucket(1), 0);
        assert_eq!(floor_bucket(2), 1);
        assert_eq!(floor_bucket(3), 1);
        assert_eq!(floor_bucket(4), 2);
        assert_eq!(ceil_bucket(1), 0);
        assert_eq!(ceil_bucket(2), 1);
        assert_eq!(ceil_bucket(3), 2);
        assert_eq!(ceil_bucket(4), 2);
        assert_eq!(ceil_bucket(5), 3);
    }

    #[test]
    fn recycled_slab_is_reused() {
        let before = pool_misses();
        let v = take_zeroed(100);
        assert!(v.capacity() >= 128, "miss should allocate the full bucket");
        let cap = v.capacity();
        recycle(v);
        let w = take_zeroed(100);
        assert_eq!(w.capacity(), cap);
        assert_eq!(w.len(), 100);
        assert!(w.iter().all(|&x| x == 0.0));
        // Exactly one of the two takes missed (the first — unless an earlier
        // test on this thread already parked a 128-slab, in which case zero).
        assert!(pool_misses() - before <= 1);
        recycle(w);
    }

    #[test]
    fn take_respects_requested_length() {
        let v = take_filled(5, 2.5);
        assert_eq!(v, vec![2.5; 5]);
        recycle(v);
        let v = take_copy(&[1.0, 2.0, 3.0]);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        recycle(v);
    }

    #[test]
    fn zero_sized_takes_do_not_allocate() {
        let (h0, m0) = (pool_hits(), pool_misses());
        let v = take_empty(0);
        assert_eq!(v.capacity(), 0);
        recycle(v);
        assert_eq!((pool_hits(), pool_misses()), (h0, m0));
    }

    #[test]
    fn lower_bucket_scan_finds_oversized_slab() {
        // Park a capacity-12 slab (bucket 3 holds caps 8..16), then ask for
        // 10 elements (ceil bucket 4, empty) — the bucket-3 scan must find it.
        let mut v = Vec::with_capacity(12);
        v.push(0.0f32);
        let cap = v.capacity();
        assert!((8..16).contains(&cap));
        recycle(v);
        let hits = pool_hits();
        let w = take_zeroed(10);
        if cap >= 10 {
            assert_eq!(pool_hits(), hits + 1);
            assert_eq!(w.capacity(), cap);
        }
        recycle(w);
    }

    #[test]
    fn high_water_tracks_held_bytes() {
        let v = take_zeroed(1 << 12);
        let held = pool_held_bytes();
        recycle(v);
        assert!(pool_held_bytes() >= held + 4 * (1 << 12));
        assert!(pool_high_water_bytes() >= pool_held_bytes());
        // Drain it back out so this test is idempotent for its thread.
        let v = take_zeroed(1 << 12);
        drop_forever(v);
    }

    /// Intentionally leaks a slab out of the pool (plain drop).
    fn drop_forever(v: Vec<f32>) {
        drop(v);
    }

    #[test]
    fn thread_local_misses_ignore_other_threads() {
        let here = thread_pool_misses();
        std::thread::spawn(|| {
            // A fresh thread has a cold pool: this must miss over there...
            let v = take_zeroed(1 << 20);
            assert!(thread_pool_misses() >= 1);
            drop(v);
        })
        .join()
        .unwrap();
        // ...without charging the miss to this thread.
        assert_eq!(thread_pool_misses(), here);
    }

    #[test]
    fn ensure_zeroed_grows_and_resets() {
        let mut v = take_copy(&[1.0, 2.0]);
        ensure_zeroed(&mut v, 300);
        assert_eq!(v.len(), 300);
        assert!(v.iter().all(|&x| x == 0.0));
        ensure_zeroed(&mut v, 3);
        assert_eq!(v.len(), 3);
        recycle(v);
    }
}
