//! # lightts-tensor
//!
//! Dense `f32` tensors, a tape-based reverse-mode automatic-differentiation
//! engine, and the small amount of linear algebra (Cholesky factorization,
//! triangular solves) needed by the LightTS reproduction.
//!
//! The LightTS paper trains quantized InceptionTime students with
//! back-propagation (Algorithm 1) and fits Gaussian processes for the encoded
//! multi-objective Bayesian optimization (Section 3.3.3). Both substrates are
//! provided here from scratch:
//!
//! * [`Tensor`] — an owned, contiguous, row-major `f32` n-d array with the
//!   element-wise, reduction, and convolution kernels used by the neural
//!   classifiers.
//! * [`tape::Tape`] — a define-by-run autodiff tape. Every operation is an
//!   explicit [`tape::Op`] variant with a hand-written backward rule, verified
//!   against finite differences by property tests.
//! * [`linalg`] — Cholesky decomposition, triangular solves, and the blocked
//!   matmul kernel for the GP estimator and dense layers.
//! * [`quant`] — uniform quantization (paper Figure 4) shared by the
//!   quantization-aware training op and the model-size accounting.
//! * [`par`] — the thread-pool execution layer behind the convolution,
//!   matmul, elementwise, and reduction kernels. Gated by the `parallel`
//!   cargo feature (on by default); with the feature off every kernel runs
//!   its serial path, which doubles as the differential-testing oracle.
//! * [`pool`] — a grow-only, size-bucketed buffer pool backing every tensor
//!   allocation, so steady-state training and serving loops perform zero
//!   transient heap allocations (hit/miss counters included).
//! * [`simd`] — the runtime-dispatched vector backends (AVX2+FMA, SSE2,
//!   scalar oracle) every inner loop above lowers onto, selected once per
//!   process via detection, `LIGHTTS_SIMD`, or
//!   [`simd::set_simd_backend`]; `docs/NUMERICS.md` documents exactly
//!   which kernels stay bitwise identical across backends.
//!
//! # Example
//!
//! ```
//! use lightts_tensor::{Tensor, tape::Tape};
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap(), true);
//! let y = tape.scale(x, 2.0).unwrap();
//! let s = tape.sum(y).unwrap();
//! let grads = tape.backward(s).unwrap();
//! assert_eq!(grads.get(x).unwrap().data(), &[2.0, 2.0, 2.0]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod shape;
mod tensor;

pub mod conv;
pub mod linalg;
pub mod par;
pub mod pool;
pub mod qint;
pub mod quant;
pub mod rng;
pub mod simd;
pub mod tape;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
