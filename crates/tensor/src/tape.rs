//! Tape-based reverse-mode automatic differentiation.
//!
//! Training a quantized student with the AED loss (paper Eq. 2, Algorithm 1)
//! needs gradients of a scalar loss with respect to every convolutional
//! filter, bias, and batch-norm parameter. This module provides a
//! define-by-run tape: each operation appends a [`Op`] node recording its
//! parents; [`Tape::backward`] walks the tape in reverse, applying a
//! hand-written adjoint rule per operation.
//!
//! Every rule is validated against central finite differences in this
//! module's tests and in crate-level proptests, which is what makes the
//! from-scratch engine a trustworthy substitute for PyTorch here.
//!
//! # Memory behaviour
//!
//! Every buffer a tape op materializes — forward values, saved auxiliaries,
//! and the gradients produced by [`Tape::backward`] — lives in a [`Tensor`]
//! whose storage is drawn from the thread-local [`crate::pool`] and recycled
//! when the node is dropped. Together with [`Tape::reset`] (which clears the
//! node list while keeping its allocation), a steady-state training loop
//! that reuses one tape performs zero transient heap allocations per step
//! once the pool is warm; the pool's hit/miss counters sit next to
//! [`tapes_created`] so tests can assert exactly that.

use crate::conv::{conv1d_backward_input, conv1d_backward_weight, conv1d_forward};
use crate::quant::fake_quantize;
use crate::{pool, Result, Tensor, TensorError};

/// Handle to a node on a [`Tape`].
///
/// `Var` is a plain index; it is only meaningful for the tape that created
/// it. Using a `Var` from another tape yields [`TensorError::InvalidVar`] or
/// wrong results caught by shape checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The raw node index (exposed for diagnostics only).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Auxiliary values saved by the batch-norm forward pass for its backward.
#[derive(Debug, Clone)]
pub struct BnAux {
    /// Normalized activations `x̂ = (x − μ_c) · inv_std_c`.
    pub x_hat: Tensor,
    /// Per-channel `1 / sqrt(var + eps)`.
    pub inv_std: Vec<f32>,
}

/// The operation recorded at a tape node.
///
/// Shapes follow the conventions of the crate: activations are
/// `[batch, channels, length]`, class scores are `[batch, classes]`, and
/// scalars are rank-1 tensors of length 1.
#[derive(Debug, Clone)]
pub enum Op {
    /// Input node (parameter or data).
    Leaf,
    /// Element-wise `a + b`.
    Add(usize, usize),
    /// Element-wise `a − b`.
    Sub(usize, usize),
    /// Element-wise `a ⊙ b`.
    Mul(usize, usize),
    /// `a · s` for a constant `s`.
    Scale(usize, f32),
    /// `max(a, 0)` element-wise.
    Relu(usize),
    /// Logistic sigmoid `1 / (1 + e^{−a})` element-wise.
    Sigmoid(usize),
    /// Hyperbolic tangent element-wise.
    Tanh(usize),
    /// Rank-2 matrix product `a[m,k] @ b[k,n]`.
    MatMul(usize, usize),
    /// "Same" 1-D convolution of `x` with filters `w`.
    Conv1d {
        /// Input activations `[b, cin, l]`.
        x: usize,
        /// Filters `[cout, cin, k]`.
        w: usize,
    },
    /// Broadcast bias add: `x[b,c,l] + bias[c]` or `x[b,c] + bias[c]`.
    AddBias {
        /// Activations.
        x: usize,
        /// Per-channel bias.
        bias: usize,
    },
    /// Channel-wise concatenation of `[b, c_i, l]` tensors.
    ConcatChannels(Vec<usize>),
    /// Global average pooling over time: `[b,c,l] → [b,c]`.
    Gap(usize),
    /// Row-wise log-softmax of `[b, k]`.
    LogSoftmax(usize),
    /// Mean of all elements → scalar.
    Mean(usize),
    /// Sum of all elements → scalar.
    Sum(usize),
    /// Mean negative log-likelihood of `targets` under row log-probabilities.
    NllMean {
        /// Log-probabilities `[b, k]` (from [`Op::LogSoftmax`]).
        logp: usize,
        /// Ground-truth class per row.
        targets: Vec<usize>,
    },
    /// Mean over the batch of `KL(q ‖ p)` given the student's
    /// log-probabilities and a constant teacher distribution `q`.
    KlToTarget {
        /// Student log-probabilities `[b, k]`.
        logp: usize,
        /// Teacher class distribution `[b, k]` (constant, not a tape node).
        q: Tensor,
    },
    /// Mean squared error to a constant target.
    MseToTarget {
        /// Predictions.
        x: usize,
        /// Constant target of the same shape.
        target: Tensor,
    },
    /// Uniform fake quantization with straight-through gradient.
    FakeQuant {
        /// The full-precision tensor.
        x: usize,
        /// Bit-width (32 ⇒ identity).
        bits: u8,
    },
    /// Batch normalization over `[b, c, l]`, training mode.
    BatchNorm {
        /// Activations.
        x: usize,
        /// Per-channel scale γ.
        gamma: usize,
        /// Per-channel shift β.
        beta: usize,
        /// Saved forward statistics.
        aux: BnAux,
    },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
#[derive(Debug)]
pub struct Grads {
    grads: Vec<Option<Tensor>>,
}

impl Grads {
    /// The gradient of the loss with respect to `var`, if it was computed.
    ///
    /// `None` for nodes that do not require gradients or are not ancestors
    /// of the loss.
    pub fn get(&self, var: Var) -> Option<&Tensor> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }

    /// Takes ownership of the gradient for `var`, leaving `None` behind.
    pub fn take(&mut self, var: Var) -> Option<Tensor> {
        self.grads.get_mut(var.0).and_then(|g| g.take())
    }
}

/// Process-wide count of [`Tape`] constructions, for instrumentation.
///
/// The serving runtime (`lightts-serve`) promises a tape-free hot path;
/// its tests sample this counter around a request burst to prove that no
/// code path sneaks an autodiff allocation back in. A relaxed atomic
/// increment per tape is noise next to the `Vec` the tape itself allocates.
static TAPES_CREATED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total number of [`Tape`]s constructed by this process so far.
///
/// Monotonically increasing; meaningful only as a *delta* around a region
/// that is claimed to be tape-free (inference/serving paths).
pub fn tapes_created() -> u64 {
    TAPES_CREATED.load(std::sync::atomic::Ordering::Relaxed)
}

/// A define-by-run reverse-mode autodiff tape.
///
/// A tape is built per forward pass (per mini-batch) and discarded after
/// [`Tape::backward`]; this keeps lifetimes simple and matches how the
/// training loops in `lightts-nn` are structured.
#[derive(Debug)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        TAPES_CREATED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Tape { nodes: Vec::new() }
    }

    /// Discards all recorded nodes while keeping the tape's own allocation.
    ///
    /// Dropping the nodes returns their tensor buffers to the thread-local
    /// [`crate::pool`]; the node list's capacity is retained, so a training
    /// loop that calls `reset` between mini-batches (instead of building a
    /// fresh [`Tape::new`] each step) re-records the next step without any
    /// heap traffic. Does not increment [`tapes_created`] — it is the same
    /// tape.
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records an input node. `requires_grad` marks trainable parameters.
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> Var {
        self.push(value, Op::Leaf, requires_grad)
    }

    /// Records a constant input (no gradient).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.leaf(value, false)
    }

    /// The forward value at `var`.
    pub fn value(&self, var: Var) -> Result<&Tensor> {
        self.nodes
            .get(var.0)
            .map(|n| &n.value)
            .ok_or(TensorError::InvalidVar { id: var.0, len: self.nodes.len() })
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node { value, op, requires_grad });
        Var(self.nodes.len() - 1)
    }

    fn check(&self, v: Var) -> Result<()> {
        if v.0 >= self.nodes.len() {
            return Err(TensorError::InvalidVar { id: v.0, len: self.nodes.len() });
        }
        Ok(())
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    // ------------------------------------------------------------------
    // Forward operations
    // ------------------------------------------------------------------

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value)?;
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::Add(a.0, b.0), rg))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value)?;
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::Sub(a.0, b.0), rg))
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let v = self.nodes[a.0].value.mul(&self.nodes[b.0].value)?;
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::Mul(a.0, b.0), rg))
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Result<Var> {
        self.check(a)?;
        let v = self.nodes[a.0].value.scale(s);
        let rg = self.rg(a);
        Ok(self.push(v, Op::Scale(a.0, s), rg))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let v = self.nodes[a.0].value.relu();
        let rg = self.rg(a);
        Ok(self.push(v, Op::Relu(a.0), rg))
    }

    /// Logistic sigmoid, computed by the [`crate::simd::vec_sigmoid`]
    /// kernel (bitwise backend-invariant; see `docs/NUMERICS.md`).
    pub fn sigmoid(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let v = self.nodes[a.0].value.sigmoid();
        let rg = self.rg(a);
        Ok(self.push(v, Op::Sigmoid(a.0), rg))
    }

    /// Hyperbolic tangent, computed by the [`crate::simd::vec_tanh`]
    /// kernel (bitwise backend-invariant; see `docs/NUMERICS.md`).
    pub fn tanh(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let v = self.nodes[a.0].value.tanh();
        let rg = self.rg(a);
        Ok(self.push(v, Op::Tanh(a.0), rg))
    }

    /// Rank-2 matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value)?;
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::MatMul(a.0, b.0), rg))
    }

    /// "Same" 1-D convolution.
    pub fn conv1d(&mut self, x: Var, w: Var) -> Result<Var> {
        self.check(x)?;
        self.check(w)?;
        let v = conv1d_forward(&self.nodes[x.0].value, &self.nodes[w.0].value)?;
        let rg = self.rg(x) || self.rg(w);
        Ok(self.push(v, Op::Conv1d { x: x.0, w: w.0 }, rg))
    }

    /// Broadcast bias add over the channel dimension.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Result<Var> {
        self.check(x)?;
        self.check(bias)?;
        let xv = &self.nodes[x.0].value;
        let bv = &self.nodes[bias.0].value;
        if bv.rank() != 1 {
            return Err(TensorError::RankMismatch {
                found: bv.rank(),
                expected: 1,
                op: "add_bias",
            });
        }
        let c = bv.len();
        let v = match xv.rank() {
            2 => {
                if xv.dims()[1] != c {
                    return Err(TensorError::ShapeMismatch {
                        left: xv.dims().to_vec(),
                        right: bv.dims().to_vec(),
                        op: "add_bias",
                    });
                }
                let (b, k) = (xv.dims()[0], xv.dims()[1]);
                let mut out = pool::take_copy(xv.data());
                for bi in 0..b {
                    for ci in 0..k {
                        out[bi * k + ci] += bv.data()[ci];
                    }
                }
                Tensor::from_vec(out, xv.dims())?
            }
            3 => {
                if xv.dims()[1] != c {
                    return Err(TensorError::ShapeMismatch {
                        left: xv.dims().to_vec(),
                        right: bv.dims().to_vec(),
                        op: "add_bias",
                    });
                }
                let (b, ch, l) = (xv.dims()[0], xv.dims()[1], xv.dims()[2]);
                let mut out = pool::take_copy(xv.data());
                for bi in 0..b {
                    for ci in 0..ch {
                        let off = (bi * ch + ci) * l;
                        let bias_v = bv.data()[ci];
                        for o in &mut out[off..off + l] {
                            *o += bias_v;
                        }
                    }
                }
                Tensor::from_vec(out, xv.dims())?
            }
            r => {
                return Err(TensorError::RankMismatch { found: r, expected: 3, op: "add_bias" });
            }
        };
        let rg = self.rg(x) || self.rg(bias);
        Ok(self.push(v, Op::AddBias { x: x.0, bias: bias.0 }, rg))
    }

    /// Concatenates `[b, c_i, l]` activations along the channel dimension.
    pub fn concat_channels(&mut self, parts: &[Var]) -> Result<Var> {
        if parts.is_empty() {
            return Err(TensorError::Empty { op: "concat_channels" });
        }
        for &p in parts {
            self.check(p)?;
        }
        let first = &self.nodes[parts[0].0].value;
        if first.rank() != 3 {
            return Err(TensorError::RankMismatch {
                found: first.rank(),
                expected: 3,
                op: "concat_channels",
            });
        }
        let (b, l) = (first.dims()[0], first.dims()[2]);
        let mut c_total = 0usize;
        for &p in parts {
            let t = &self.nodes[p.0].value;
            if t.rank() != 3 || t.dims()[0] != b || t.dims()[2] != l {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: t.dims().to_vec(),
                    op: "concat_channels",
                });
            }
            c_total += t.dims()[1];
        }
        let mut out = pool::take_zeroed(b * c_total * l);
        for bi in 0..b {
            let mut c_off = 0usize;
            for &p in parts {
                let t = &self.nodes[p.0].value;
                let ci = t.dims()[1];
                let src = &t.data()[bi * ci * l..(bi + 1) * ci * l];
                let dst_off = (bi * c_total + c_off) * l;
                out[dst_off..dst_off + ci * l].copy_from_slice(src);
                c_off += ci;
            }
        }
        let v = Tensor::from_vec(out, &[b, c_total, l])?;
        let rg = parts.iter().any(|&p| self.rg(p));
        Ok(self.push(v, Op::ConcatChannels(parts.iter().map(|p| p.0).collect()), rg))
    }

    /// Global average pooling over the time dimension.
    pub fn gap(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let xv = &self.nodes[x.0].value;
        if xv.rank() != 3 {
            return Err(TensorError::RankMismatch { found: xv.rank(), expected: 3, op: "gap" });
        }
        let (b, c, l) = (xv.dims()[0], xv.dims()[1], xv.dims()[2]);
        let mut out = pool::take_zeroed(b * c);
        for bi in 0..b {
            for ci in 0..c {
                let off = (bi * c + ci) * l;
                out[bi * c + ci] = xv.data()[off..off + l].iter().sum::<f32>() / l as f32;
            }
        }
        let v = Tensor::from_vec(out, &[b, c])?;
        let rg = self.rg(x);
        Ok(self.push(v, Op::Gap(x.0), rg))
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = self.nodes[x.0].value.log_softmax_rows()?;
        let rg = self.rg(x);
        Ok(self.push(v, Op::LogSoftmax(x.0), rg))
    }

    /// Mean of all elements → scalar node.
    pub fn mean(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = Tensor::scalar(self.nodes[x.0].value.mean());
        let rg = self.rg(x);
        Ok(self.push(v, Op::Mean(x.0), rg))
    }

    /// Sum of all elements → scalar node.
    pub fn sum(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = Tensor::scalar(self.nodes[x.0].value.sum());
        let rg = self.rg(x);
        Ok(self.push(v, Op::Sum(x.0), rg))
    }

    /// Mean negative log-likelihood loss given log-probabilities.
    ///
    /// Combined with [`Tape::log_softmax`] this is the cross-entropy
    /// `L_CE(p_w, y)` of paper Eq. 2.
    pub fn nll_mean(&mut self, logp: Var, targets: &[usize]) -> Result<Var> {
        self.check(logp)?;
        let lp = &self.nodes[logp.0].value;
        if lp.rank() != 2 {
            return Err(TensorError::RankMismatch {
                found: lp.rank(),
                expected: 2,
                op: "nll_mean",
            });
        }
        let (b, k) = (lp.dims()[0], lp.dims()[1]);
        if targets.len() != b {
            return Err(TensorError::LengthMismatch { len: targets.len(), expected: b });
        }
        let mut acc = 0.0f32;
        for (bi, &t) in targets.iter().enumerate() {
            if t >= k {
                return Err(TensorError::IndexOutOfBounds {
                    index: vec![bi, t],
                    shape: lp.dims().to_vec(),
                });
            }
            acc -= lp.data()[bi * k + t];
        }
        let v = Tensor::scalar(acc / b as f32);
        let rg = self.rg(logp);
        Ok(self.push(v, Op::NllMean { logp: logp.0, targets: targets.to_vec() }, rg))
    }

    /// Mean Kullback–Leibler divergence `KL(q ‖ p)` over the batch, where
    /// `q` is a constant teacher distribution and `p` is the student
    /// distribution given by its log-probabilities.
    ///
    /// This is the `Dist(q_i, p_w)` term of paper Eq. 2.
    pub fn kl_to_target(&mut self, logp: Var, q: &Tensor) -> Result<Var> {
        self.check(logp)?;
        let lp = &self.nodes[logp.0].value;
        if lp.dims() != q.dims() {
            return Err(TensorError::ShapeMismatch {
                left: lp.dims().to_vec(),
                right: q.dims().to_vec(),
                op: "kl_to_target",
            });
        }
        if lp.rank() != 2 {
            return Err(TensorError::RankMismatch {
                found: lp.rank(),
                expected: 2,
                op: "kl_to_target",
            });
        }
        let b = lp.dims()[0];
        let mut acc = 0.0f32;
        for (&qv, &lpv) in q.data().iter().zip(lp.data().iter()) {
            if qv > 0.0 {
                acc += qv * (qv.ln() - lpv);
            }
        }
        let v = Tensor::scalar(acc / b as f32);
        let rg = self.rg(logp);
        Ok(self.push(v, Op::KlToTarget { logp: logp.0, q: q.clone() }, rg))
    }

    /// Mean squared error against a constant target.
    pub fn mse_to_target(&mut self, x: Var, target: &Tensor) -> Result<Var> {
        self.check(x)?;
        let xv = &self.nodes[x.0].value;
        if xv.dims() != target.dims() {
            return Err(TensorError::ShapeMismatch {
                left: xv.dims().to_vec(),
                right: target.dims().to_vec(),
                op: "mse_to_target",
            });
        }
        let n = xv.len().max(1);
        let mut acc = 0.0f32;
        for (&a, &b) in xv.data().iter().zip(target.data().iter()) {
            acc += (a - b) * (a - b);
        }
        let v = Tensor::scalar(acc / n as f32);
        let rg = self.rg(x);
        Ok(self.push(v, Op::MseToTarget { x: x.0, target: target.clone() }, rg))
    }

    /// Uniform fake quantization of `x` to `bits`, with straight-through
    /// gradients (the backward rule is the identity).
    pub fn fake_quant(&mut self, x: Var, bits: u8) -> Result<Var> {
        self.check(x)?;
        let v = fake_quantize(&self.nodes[x.0].value, bits)?;
        let rg = self.rg(x);
        Ok(self.push(v, Op::FakeQuant { x: x.0, bits }, rg))
    }

    /// Training-mode batch normalization over `[b, c, l]` with per-channel
    /// learnable scale `gamma` and shift `beta`.
    ///
    /// Returns `(output, batch_mean, batch_var)` so callers can maintain
    /// running statistics for inference.
    #[allow(clippy::needless_range_loop)] // per-channel stats with strided offsets
    pub fn batch_norm(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    ) -> Result<(Var, Vec<f32>, Vec<f32>)> {
        self.check(x)?;
        self.check(gamma)?;
        self.check(beta)?;
        let xv = &self.nodes[x.0].value;
        if xv.rank() != 3 {
            return Err(TensorError::RankMismatch {
                found: xv.rank(),
                expected: 3,
                op: "batch_norm",
            });
        }
        let (b, c, l) = (xv.dims()[0], xv.dims()[1], xv.dims()[2]);
        let g = &self.nodes[gamma.0].value;
        let be = &self.nodes[beta.0].value;
        if g.len() != c || be.len() != c {
            return Err(TensorError::ShapeMismatch {
                left: xv.dims().to_vec(),
                right: g.dims().to_vec(),
                op: "batch_norm",
            });
        }
        let m = (b * l) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for bi in 0..b {
            for ci in 0..c {
                let off = (bi * c + ci) * l;
                for &v in &xv.data()[off..off + l] {
                    mean[ci] += v;
                }
            }
        }
        for mu in &mut mean {
            *mu /= m;
        }
        for bi in 0..b {
            for ci in 0..c {
                let off = (bi * c + ci) * l;
                for &v in &xv.data()[off..off + l] {
                    let d = v - mean[ci];
                    var[ci] += d * d;
                }
            }
        }
        for vv in &mut var {
            *vv /= m;
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let mut x_hat = pool::take_zeroed(b * c * l);
        let mut out = pool::take_zeroed(b * c * l);
        for bi in 0..b {
            for ci in 0..c {
                let off = (bi * c + ci) * l;
                for t in 0..l {
                    let xh = (xv.data()[off + t] - mean[ci]) * inv_std[ci];
                    x_hat[off + t] = xh;
                    out[off + t] = g.data()[ci] * xh + be.data()[ci];
                }
            }
        }
        let x_hat = Tensor::from_vec(x_hat, &[b, c, l])?;
        let v = Tensor::from_vec(out, &[b, c, l])?;
        let rg = self.rg(x) || self.rg(gamma) || self.rg(beta);
        let var_out = var.clone();
        let node = self.push(
            v,
            Op::BatchNorm { x: x.0, gamma: gamma.0, beta: beta.0, aux: BnAux { x_hat, inv_std } },
            rg,
        );
        Ok((node, mean, var_out))
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from the scalar node `root`.
    pub fn backward(&self, root: Var) -> Result<Grads> {
        self.check(root)?;
        if self.nodes[root.0].value.len() != 1 {
            return Err(TensorError::InvalidArgument {
                what: "backward root must be a scalar node",
            });
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[root.0] = Some(Tensor::scalar(1.0));

        for id in (0..=root.0).rev() {
            let Some(gy) = grads[id].take() else { continue };
            // put it back for consumers of Grads
            let node = &self.nodes[id];
            if !node.requires_grad {
                grads[id] = Some(gy);
                continue;
            }
            self.accumulate_parents(id, &gy, &mut grads)?;
            grads[id] = Some(gy);
        }
        Ok(Grads { grads })
    }

    fn acc(grads: &mut [Option<Tensor>], id: usize, g: Tensor) -> Result<()> {
        match &mut grads[id] {
            Some(existing) => existing.axpy(&g, 1.0),
            slot @ None => {
                *slot = Some(g);
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_lines, clippy::needless_range_loop)]
    fn accumulate_parents(
        &self,
        id: usize,
        gy: &Tensor,
        grads: &mut [Option<Tensor>],
    ) -> Result<()> {
        let node = &self.nodes[id];
        match &node.op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                if self.nodes[*a].requires_grad {
                    Self::acc(grads, *a, gy.clone())?;
                }
                if self.nodes[*b].requires_grad {
                    Self::acc(grads, *b, gy.clone())?;
                }
            }
            Op::Sub(a, b) => {
                if self.nodes[*a].requires_grad {
                    Self::acc(grads, *a, gy.clone())?;
                }
                if self.nodes[*b].requires_grad {
                    Self::acc(grads, *b, gy.scale(-1.0))?;
                }
            }
            Op::Mul(a, b) => {
                if self.nodes[*a].requires_grad {
                    Self::acc(grads, *a, gy.mul(&self.nodes[*b].value)?)?;
                }
                if self.nodes[*b].requires_grad {
                    Self::acc(grads, *b, gy.mul(&self.nodes[*a].value)?)?;
                }
            }
            Op::Scale(a, s) => {
                if self.nodes[*a].requires_grad {
                    Self::acc(grads, *a, gy.scale(*s))?;
                }
            }
            Op::Relu(a) => {
                if self.nodes[*a].requires_grad {
                    let mask = self.nodes[*a].value.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                    Self::acc(grads, *a, gy.mul(&mask)?)?;
                }
            }
            Op::Sigmoid(a) => {
                if self.nodes[*a].requires_grad {
                    // gx = gy · y · (1 − y), reusing the forward output y.
                    let y = &node.value;
                    let one_minus_y = y.map(|v| 1.0 - v);
                    Self::acc(grads, *a, gy.mul(y)?.mul(&one_minus_y)?)?;
                }
            }
            Op::Tanh(a) => {
                if self.nodes[*a].requires_grad {
                    // gx = gy · (1 − y²), reusing the forward output y.
                    let d = node.value.map(|v| 1.0 - v * v);
                    Self::acc(grads, *a, gy.mul(&d)?)?;
                }
            }
            Op::MatMul(a, b) => {
                let av = &self.nodes[*a].value;
                let bv = &self.nodes[*b].value;
                if self.nodes[*a].requires_grad {
                    // dA = dY Bᵀ
                    Self::acc(grads, *a, gy.matmul(&bv.transpose2()?)?)?;
                }
                if self.nodes[*b].requires_grad {
                    // dB = Aᵀ dY
                    Self::acc(grads, *b, av.transpose2()?.matmul(gy)?)?;
                }
            }
            Op::Conv1d { x, w } => {
                let xv = &self.nodes[*x].value;
                let wv = &self.nodes[*w].value;
                if self.nodes[*x].requires_grad {
                    Self::acc(grads, *x, conv1d_backward_input(gy, wv, xv.dims())?)?;
                }
                if self.nodes[*w].requires_grad {
                    Self::acc(grads, *w, conv1d_backward_weight(gy, xv, wv.dims())?)?;
                }
            }
            Op::AddBias { x, bias } => {
                if self.nodes[*x].requires_grad {
                    Self::acc(grads, *x, gy.clone())?;
                }
                if self.nodes[*bias].requires_grad {
                    let c = self.nodes[*bias].value.len();
                    let mut gb = pool::take_zeroed(c);
                    match gy.rank() {
                        2 => {
                            let (b, k) = (gy.dims()[0], gy.dims()[1]);
                            for bi in 0..b {
                                for ci in 0..k {
                                    gb[ci] += gy.data()[bi * k + ci];
                                }
                            }
                        }
                        _ => {
                            let (b, ch, l) = (gy.dims()[0], gy.dims()[1], gy.dims()[2]);
                            for bi in 0..b {
                                for ci in 0..ch {
                                    let off = (bi * ch + ci) * l;
                                    gb[ci] += gy.data()[off..off + l].iter().sum::<f32>();
                                }
                            }
                        }
                    }
                    Self::acc(grads, *bias, Tensor::from_vec(gb, &[c])?)?;
                }
            }
            Op::ConcatChannels(parts) => {
                let (b, c_total, l) = (gy.dims()[0], gy.dims()[1], gy.dims()[2]);
                let mut c_off = 0usize;
                for &p in parts {
                    let ci = self.nodes[p].value.dims()[1];
                    if self.nodes[p].requires_grad {
                        let mut gp = pool::take_zeroed(b * ci * l);
                        for bi in 0..b {
                            let src_off = (bi * c_total + c_off) * l;
                            let dst_off = bi * ci * l;
                            gp[dst_off..dst_off + ci * l]
                                .copy_from_slice(&gy.data()[src_off..src_off + ci * l]);
                        }
                        Self::acc(grads, p, Tensor::from_vec(gp, &[b, ci, l])?)?;
                    }
                    c_off += ci;
                }
            }
            Op::Gap(x) => {
                if self.nodes[*x].requires_grad {
                    let xd = self.nodes[*x].value.dims();
                    let (b, c, l) = (xd[0], xd[1], xd[2]);
                    let mut gx = pool::take_zeroed(b * c * l);
                    for bi in 0..b {
                        for ci in 0..c {
                            let g = gy.data()[bi * c + ci] / l as f32;
                            let off = (bi * c + ci) * l;
                            for v in &mut gx[off..off + l] {
                                *v = g;
                            }
                        }
                    }
                    Self::acc(grads, *x, Tensor::from_vec(gx, &[b, c, l])?)?;
                }
            }
            Op::LogSoftmax(x) => {
                if self.nodes[*x].requires_grad {
                    // d/dx log_softmax: gx = gy − softmax(x) · Σ_row gy
                    let lsm = &node.value;
                    let (b, k) = (lsm.dims()[0], lsm.dims()[1]);
                    let mut gx = pool::take_zeroed(b * k);
                    for bi in 0..b {
                        let row_sum: f32 = gy.data()[bi * k..(bi + 1) * k].iter().sum();
                        for ci in 0..k {
                            let p = lsm.data()[bi * k + ci].exp();
                            gx[bi * k + ci] = gy.data()[bi * k + ci] - p * row_sum;
                        }
                    }
                    Self::acc(grads, *x, Tensor::from_vec(gx, &[b, k])?)?;
                }
            }
            Op::Mean(x) => {
                if self.nodes[*x].requires_grad {
                    let n = self.nodes[*x].value.len().max(1) as f32;
                    let g = gy.item()? / n;
                    let dims = self.nodes[*x].value.dims().to_vec();
                    Self::acc(grads, *x, Tensor::full(&dims, g))?;
                }
            }
            Op::Sum(x) => {
                if self.nodes[*x].requires_grad {
                    let g = gy.item()?;
                    let dims = self.nodes[*x].value.dims().to_vec();
                    Self::acc(grads, *x, Tensor::full(&dims, g))?;
                }
            }
            Op::NllMean { logp, targets } => {
                if self.nodes[*logp].requires_grad {
                    let dims = self.nodes[*logp].value.dims().to_vec();
                    let (b, k) = (dims[0], dims[1]);
                    let g = gy.item()? / b as f32;
                    let mut gl = pool::take_zeroed(b * k);
                    for (bi, &t) in targets.iter().enumerate() {
                        gl[bi * k + t] = -g;
                    }
                    Self::acc(grads, *logp, Tensor::from_vec(gl, &dims)?)?;
                }
            }
            Op::KlToTarget { logp, q } => {
                if self.nodes[*logp].requires_grad {
                    let b = q.dims()[0] as f32;
                    let g = gy.item()? / b;
                    Self::acc(grads, *logp, q.scale(-g))?;
                }
            }
            Op::MseToTarget { x, target } => {
                if self.nodes[*x].requires_grad {
                    let xv = &self.nodes[*x].value;
                    let n = xv.len().max(1) as f32;
                    let g = gy.item()? * 2.0 / n;
                    let diff = xv.sub(target)?;
                    Self::acc(grads, *x, diff.scale(g))?;
                }
            }
            Op::FakeQuant { x, .. } => {
                // Straight-through estimator: pass the gradient unchanged.
                if self.nodes[*x].requires_grad {
                    Self::acc(grads, *x, gy.clone())?;
                }
            }
            Op::BatchNorm { x, gamma, beta, aux } => {
                let (b, c, l) = (gy.dims()[0], gy.dims()[1], gy.dims()[2]);
                let m = (b * l) as f32;
                let gv = &self.nodes[*gamma].value;
                // per-channel reductions
                let mut sum_dy = vec![0.0f32; c];
                let mut sum_dy_xhat = vec![0.0f32; c];
                for bi in 0..b {
                    for ci in 0..c {
                        let off = (bi * c + ci) * l;
                        for t in 0..l {
                            let dy = gy.data()[off + t];
                            sum_dy[ci] += dy;
                            sum_dy_xhat[ci] += dy * aux.x_hat.data()[off + t];
                        }
                    }
                }
                if self.nodes[*beta].requires_grad {
                    Self::acc(grads, *beta, Tensor::from_vec(pool::take_copy(&sum_dy), &[c])?)?;
                }
                if self.nodes[*gamma].requires_grad {
                    Self::acc(
                        grads,
                        *gamma,
                        Tensor::from_vec(pool::take_copy(&sum_dy_xhat), &[c])?,
                    )?;
                }
                if self.nodes[*x].requires_grad {
                    let mut gx = pool::take_zeroed(b * c * l);
                    for bi in 0..b {
                        for ci in 0..c {
                            let off = (bi * c + ci) * l;
                            let coeff = gv.data()[ci] * aux.inv_std[ci] / m;
                            for t in 0..l {
                                let dy = gy.data()[off + t];
                                let xh = aux.x_hat.data()[off + t];
                                gx[off + t] = coeff * (m * dy - sum_dy[ci] - xh * sum_dy_xhat[ci]);
                            }
                        }
                    }
                    Self::acc(grads, *x, Tensor::from_vec(gx, &[b, c, l])?)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Central finite-difference gradient of `f` w.r.t. entry `i` of `x`.
    fn fd<F: Fn(&Tensor) -> f32>(f: &F, x: &Tensor, i: usize, eps: f32) -> f32 {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        (f(&xp) - f(&xm)) / (2.0 * eps)
    }

    /// Asserts analytic ≈ finite-difference gradients for all entries.
    fn check_grad<F: Fn(&Tensor) -> f32>(f: F, x: &Tensor, analytic: &Tensor, tol: f32) {
        for i in 0..x.len() {
            let n = fd(&f, x, i, 1e-2);
            let a = analytic.data()[i];
            assert!(
                (a - n).abs() <= tol * (1.0 + n.abs()),
                "entry {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn add_sub_mul_scale_grads() {
        let mut rng = StdRng::seed_from_u64(1);
        let xa = Tensor::randn(&mut rng, &[4], 1.0);
        let xb = Tensor::randn(&mut rng, &[4], 1.0);

        let mut tape = Tape::new();
        let a = tape.leaf(xa.clone(), true);
        let b = tape.leaf(xb.clone(), true);
        let ab = tape.mul(a, b).unwrap();
        let s = tape.scale(ab, 3.0).unwrap();
        let d = tape.sub(s, a).unwrap();
        let loss = tape.sum(d).unwrap();
        let grads = tape.backward(loss).unwrap();

        let f_a = |t: &Tensor| t.mul(&xb).unwrap().scale(3.0).sub(t).unwrap().sum();
        check_grad(f_a, &xa, grads.get(a).unwrap(), 1e-2);
        let f_b = |t: &Tensor| xa.mul(t).unwrap().scale(3.0).sub(&xa).unwrap().sum();
        check_grad(f_b, &xb, grads.get(b).unwrap(), 1e-2);
    }

    #[test]
    fn relu_grad_masks_negatives() {
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[4]).unwrap();
        let mut tape = Tape::new();
        let a = tape.leaf(x, true);
        let r = tape.relu(a).unwrap();
        let loss = tape.sum(r).unwrap();
        let grads = tape.backward(loss).unwrap();
        assert_eq!(grads.get(a).unwrap().data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn matmul_grads_match_fd() {
        let mut rng = StdRng::seed_from_u64(2);
        let xa = Tensor::randn(&mut rng, &[3, 4], 1.0);
        let xb = Tensor::randn(&mut rng, &[4, 2], 1.0);
        let mut tape = Tape::new();
        let a = tape.leaf(xa.clone(), true);
        let b = tape.leaf(xb.clone(), true);
        let y = tape.matmul(a, b).unwrap();
        let loss = tape.mean(y).unwrap();
        let grads = tape.backward(loss).unwrap();
        check_grad(|t| t.matmul(&xb).unwrap().mean(), &xa, grads.get(a).unwrap(), 1e-2);
        check_grad(|t| xa.matmul(t).unwrap().mean(), &xb, grads.get(b).unwrap(), 1e-2);
    }

    #[test]
    fn conv_grads_match_fd() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&mut rng, &[2, 2, 7], 1.0);
        let w = Tensor::randn(&mut rng, &[3, 2, 4], 0.5);
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone(), true);
        let wv = tape.leaf(w.clone(), true);
        let y = tape.conv1d(xv, wv).unwrap();
        let loss = tape.mean(y).unwrap();
        let grads = tape.backward(loss).unwrap();
        check_grad(
            |t| crate::conv::conv1d_forward(t, &w).unwrap().mean(),
            &x,
            grads.get(xv).unwrap(),
            2e-2,
        );
        check_grad(
            |t| crate::conv::conv1d_forward(&x, t).unwrap().mean(),
            &w,
            grads.get(wv).unwrap(),
            2e-2,
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn log_softmax_nll_equals_softmax_cross_entropy_grad() {
        // For CE after log-softmax the input gradient is (softmax − onehot)/B.
        let logits = Tensor::from_vec(vec![0.5, -0.2, 1.0, 0.0, 0.3, -0.7], &[2, 3]).unwrap();
        let targets = vec![2usize, 0];
        let mut tape = Tape::new();
        let x = tape.leaf(logits.clone(), true);
        let lp = tape.log_softmax(x).unwrap();
        let loss = tape.nll_mean(lp, &targets).unwrap();
        let grads = tape.backward(loss).unwrap();
        let sm = logits.softmax_rows().unwrap();
        let gx = grads.get(x).unwrap();
        for bi in 0..2 {
            for k in 0..3 {
                let onehot = if targets[bi] == k { 1.0 } else { 0.0 };
                let expect = (sm.get(&[bi, k]).unwrap() - onehot) / 2.0;
                let got = gx.get(&[bi, k]).unwrap();
                assert!((got - expect).abs() < 1e-5, "({bi},{k}): {got} vs {expect}");
            }
        }
    }

    #[test]
    fn kl_to_target_is_zero_when_equal_and_positive_otherwise() {
        let q = Tensor::from_vec(vec![0.7, 0.3], &[1, 2]).unwrap();
        let logits_eq = q.map(f32::ln);
        let mut tape = Tape::new();
        let x = tape.leaf(logits_eq, true);
        let kl = tape.kl_to_target(x, &q).unwrap();
        assert!(tape.value(kl).unwrap().item().unwrap().abs() < 1e-5);

        let mut tape2 = Tape::new();
        let logits_ne = Tensor::from_vec(vec![0.1f32.ln(), 0.9f32.ln()], &[1, 2]).unwrap();
        let x2 = tape2.leaf(logits_ne, true);
        let kl2 = tape2.kl_to_target(x2, &q).unwrap();
        assert!(tape2.value(kl2).unwrap().item().unwrap() > 0.0);
    }

    #[test]
    fn kl_grad_matches_fd() {
        let mut rng = StdRng::seed_from_u64(5);
        let logits = Tensor::randn(&mut rng, &[2, 4], 1.0);
        let q =
            Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4, 0.25, 0.25, 0.25, 0.25], &[2, 4]).unwrap();
        let mut tape = Tape::new();
        let x = tape.leaf(logits.clone(), true);
        let lp = tape.log_softmax(x).unwrap();
        let kl = tape.kl_to_target(lp, &q).unwrap();
        let grads = tape.backward(kl).unwrap();
        let q2 = q.clone();
        let f = move |t: &Tensor| {
            let lp = t.log_softmax_rows().unwrap();
            let mut acc = 0.0f32;
            for (&qv, &lpv) in q2.data().iter().zip(lp.data().iter()) {
                if qv > 0.0 {
                    acc += qv * (qv.ln() - lpv);
                }
            }
            acc / 2.0
        };
        check_grad(f, &logits, grads.get(x).unwrap(), 1e-2);
    }

    #[test]
    fn gap_and_concat_grads_match_fd() {
        let mut rng = StdRng::seed_from_u64(7);
        let x1 = Tensor::randn(&mut rng, &[2, 2, 5], 1.0);
        let x2 = Tensor::randn(&mut rng, &[2, 3, 5], 1.0);
        let mut tape = Tape::new();
        let a = tape.leaf(x1.clone(), true);
        let b = tape.leaf(x2.clone(), true);
        let c = tape.concat_channels(&[a, b]).unwrap();
        let g = tape.gap(c).unwrap();
        let loss = tape.sum(g).unwrap();
        let grads = tape.backward(loss).unwrap();
        // analytic: every input element's grad is 1/l (concat then gap then sum)
        for v in grads.get(a).unwrap().data() {
            assert!((v - 0.2).abs() < 1e-6);
        }
        for v in grads.get(b).unwrap().data() {
            assert!((v - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn add_bias_broadcast_and_grad() {
        let x = Tensor::zeros(&[2, 3, 4]);
        let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let mut tape = Tape::new();
        let xv = tape.leaf(x, false);
        let bv = tape.leaf(bias, true);
        let y = tape.add_bias(xv, bv).unwrap();
        assert_eq!(tape.value(y).unwrap().get(&[0, 1, 0]).unwrap(), 2.0);
        let loss = tape.sum(y).unwrap();
        let grads = tape.backward(loss).unwrap();
        // each channel contributes batch·length = 8 ones
        assert_eq!(grads.get(bv).unwrap().data(), &[8.0, 8.0, 8.0]);
    }

    #[test]
    fn fake_quant_is_straight_through() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::randn(&mut rng, &[16], 1.0);
        let mut tape = Tape::new();
        let a = tape.leaf(x, true);
        let q = tape.fake_quant(a, 4).unwrap();
        let loss = tape.sum(q).unwrap();
        let grads = tape.backward(loss).unwrap();
        for v in grads.get(a).unwrap().data() {
            assert_eq!(*v, 1.0);
        }
    }

    #[test]
    fn batch_norm_output_is_normalized() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(&mut rng, &[4, 2, 8], 3.0).add_scalar(5.0);
        let mut tape = Tape::new();
        let xv = tape.leaf(x, true);
        let g = tape.leaf(Tensor::ones(&[2]), true);
        let b = tape.leaf(Tensor::zeros(&[2]), true);
        let (y, mean, var) = tape.batch_norm(xv, g, b, 1e-5).unwrap();
        let yv = tape.value(y).unwrap();
        // output per-channel mean ≈ 0, var ≈ 1
        for ci in 0..2 {
            let mut s = 0.0;
            let mut s2 = 0.0;
            let mut n = 0.0;
            for bi in 0..4 {
                for t in 0..8 {
                    let v = yv.get(&[bi, ci, t]).unwrap();
                    s += v;
                    s2 += v * v;
                    n += 1.0;
                }
            }
            assert!((s / n).abs() < 1e-4);
            assert!((s2 / n - 1.0).abs() < 1e-2);
        }
        assert!(mean[0].abs() > 1.0, "input mean should be near 5");
        assert!(var[0] > 1.0);
    }

    #[test]
    fn batch_norm_grads_match_fd() {
        let mut rng = StdRng::seed_from_u64(13);
        let x = Tensor::randn(&mut rng, &[2, 2, 4], 1.0);
        let gamma = Tensor::from_vec(vec![1.5, 0.5], &[2]).unwrap();
        let beta = Tensor::from_vec(vec![0.1, -0.2], &[2]).unwrap();

        let run = |x: &Tensor, g: &Tensor, b: &Tensor| -> f32 {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone(), false);
            let gv = tape.leaf(g.clone(), false);
            let bv = tape.leaf(b.clone(), false);
            let (y, _, _) = tape.batch_norm(xv, gv, bv, 1e-5).unwrap();
            // use a non-uniform downstream fn so grads are informative
            let r = tape.relu(y).unwrap();
            let loss = tape.mean(r).unwrap();
            tape.value(loss).unwrap().item().unwrap()
        };

        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone(), true);
        let gv = tape.leaf(gamma.clone(), true);
        let bv = tape.leaf(beta.clone(), true);
        let (y, _, _) = tape.batch_norm(xv, gv, bv, 1e-5).unwrap();
        let r = tape.relu(y).unwrap();
        let loss = tape.mean(r).unwrap();
        let grads = tape.backward(loss).unwrap();

        let g2 = gamma.clone();
        let b2 = beta.clone();
        check_grad(|t| run(t, &g2, &b2), &x, grads.get(xv).unwrap(), 5e-2);
        let x2 = x.clone();
        let b3 = beta.clone();
        check_grad(|t| run(&x2, t, &b3), &gamma, grads.get(gv).unwrap(), 5e-2);
        let x3 = x.clone();
        let g3 = gamma.clone();
        check_grad(|t| run(&x3, &g3, t), &beta, grads.get(bv).unwrap(), 5e-2);
    }

    #[test]
    fn backward_requires_scalar_root() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::zeros(&[3]), true);
        assert!(tape.backward(a).is_err());
    }

    #[test]
    fn grad_accumulates_across_reuse() {
        // loss = sum(a) + sum(a) ⇒ grad = 2 everywhere
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[3]), true);
        let s1 = tape.sum(a).unwrap();
        let s2 = tape.sum(a).unwrap();
        let loss = tape.add(s1, s2).unwrap();
        let grads = tape.backward(loss).unwrap();
        assert_eq!(grads.get(a).unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn no_grad_for_constants() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::ones(&[2]));
        let b = tape.leaf(Tensor::ones(&[2]), true);
        let y = tape.mul(a, b).unwrap();
        let loss = tape.sum(y).unwrap();
        let grads = tape.backward(loss).unwrap();
        assert!(grads.get(a).is_none());
        assert!(grads.get(b).is_some());
    }

    #[test]
    fn tape_constructions_are_counted() {
        let before = tapes_created();
        let _t1 = Tape::new();
        let _t2 = Tape::default();
        assert!(tapes_created() >= before + 2);
    }

    #[test]
    fn reset_clears_nodes_without_counting_a_new_tape() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[4]), true);
        let _ = tape.scale(a, 2.0).unwrap();
        assert_eq!(tape.len(), 2);
        let before = tapes_created();
        tape.reset();
        assert!(tape.is_empty());
        assert_eq!(tapes_created(), before);
        // The tape is reusable: record and differentiate a fresh step.
        let b = tape.leaf(Tensor::ones(&[3]), true);
        let loss = tape.sum(b).unwrap();
        let grads = tape.backward(loss).unwrap();
        assert_eq!(grads.get(b).unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn invalid_var_is_rejected() {
        let mut t1 = Tape::new();
        let _ = t1.leaf(Tensor::ones(&[1]), true);
        let t2 = Tape::new();
        assert!(t2.value(Var(0)).is_err());
    }

    #[test]
    fn mse_to_target_value_and_grad() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let t = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let mut tape = Tape::new();
        let xv = tape.leaf(x, true);
        let loss = tape.mse_to_target(xv, &t).unwrap();
        assert!((tape.value(loss).unwrap().item().unwrap() - 2.5).abs() < 1e-6);
        let grads = tape.backward(loss).unwrap();
        assert_eq!(grads.get(xv).unwrap().data(), &[1.0, 2.0]); // 2(x−t)/n
    }
}
