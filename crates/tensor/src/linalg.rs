//! Small dense linear algebra for the Gaussian-process estimator and the
//! dense-layer matmul kernel.
//!
//! The encoded multi-objective Bayesian optimization (paper Section 3.3.3)
//! needs the GP posterior mean and variance (Eqs. 8–9), which reduce to
//! solving linear systems against the kernel matrix `K`. `K` is symmetric
//! positive definite (after jitter), so we use Cholesky factorization with
//! forward/backward substitution — numerically stable and `O(n³)` exactly as
//! the paper's complexity analysis assumes.
//!
//! [`matmul_into`] is the cache-blocked, row-parallel matrix-multiply that
//! backs [`Tensor::matmul`] (and through it the tape's dense layers).

use crate::{par, simd, Result, Tensor, TensorError};

/// One output row of the blocked GEMM: `c_row += a_row · b` for
/// `a_row: [k]`, `b: [k, n]`, `c_row: [n]`.
///
/// This is the single accumulation kernel shared by [`matmul_into`] and the
/// im2col-lowered convolution in [`crate::conv`] — training dense layers,
/// serving plans, and all three conv passes reduce through this exact loop,
/// so their numerics cannot drift apart. The traversal is `kj` (row-major
/// friendly, vectorized along `j` by [`crate::simd::gemm_row`]) with a
/// zero-skip on `a_row`'s elements, k-blocked so the touched rows of `b`
/// stay resident in L1/L2; blocking and lane width reorder only loop
/// traversal, never the per-element accumulation sequence (`k`-ascending
/// into each output), so results are independent of block size, thread
/// count, and caller. Each accumulation step is one
/// `simd::mul_add_fast`: under the scalar and SSE2 backends that is the
/// historical multiply-then-add (bitwise identical to the pre-SIMD
/// kernel); under AVX2 it fuses into a single rounding (see
/// `docs/NUMERICS.md`).
#[inline]
pub fn gemm_row_into(c_row: &mut [f32], a_row: &[f32], b: &[f32], k: usize, n: usize) {
    debug_assert_eq!(a_row.len(), k);
    debug_assert_eq!(c_row.len(), n);
    debug_assert_eq!(b.len(), k * n);
    simd::gemm_row(c_row, a_row, b, k, n);
}

/// Preferred output-row blocking for [`gemm_panel_into`]; callers that chunk
/// work for the panel kernel (the lowered conv paths) use multiples of this.
pub const GEMM_PANEL_ROWS: usize = 8;

/// A register-tiled GEMM panel: `c += a . b` for row-major `a: [rows,k]`,
/// `b: [k,n]`, `c: [rows,n]`.
///
/// The micro-kernel ([`crate::simd::gemm_block4`]) walks 4 output rows x
/// one backend-sized column tile at a time — 2 `ymm` vectors (16 columns)
/// under AVX2, 2 `xmm` vectors (8 columns) under SSE2, 16 scalar
/// accumulators under the scalar oracle — keeping that block of
/// accumulators in registers for the entire `k` reduction and touching `c`
/// memory exactly twice (initial load, final store). Compared with calling
/// [`gemm_row_into`] per output row this eliminates the per-`p` load/store
/// of the `c` row *and* streams each `b` row once per 4 output rows
/// instead of once per row - which is what makes the im2col-lowered conv
/// forward beat the (already contiguous) direct kernel.
///
/// **Bitwise contract:** every output element still starts from its current
/// `c` value and accumulates in the exact `k`-ascending order of
/// [`gemm_row_into`], one `simd::mul_add_fast` per term — so for any fixed
/// backend the panel result is bit-identical to the row-by-row kernel,
/// independent of tile width and thread count (scalar ≡ SSE2; AVX2 fuses
/// each step, see `docs/NUMERICS.md`). When all four rows' `a` values are
/// zero the `p` step is skipped outright; when only some are zero the
/// four-row update adds `+-0.0 . b` for those rows instead of skipping -
/// an accumulator can never hold `-0.0` (it starts at `+0.0`, and both
/// `+0.0 + (+-0.0)` and `x + (-x)` round to `+0.0` — fused or not), so for
/// finite inputs those terms change no bits. A remainder of fewer than
/// four rows falls back to [`gemm_row_into`].
pub fn gemm_panel_into(c: &mut [f32], a: &[f32], b: &[f32], rows: usize, k: usize, n: usize) {
    debug_assert_eq!(c.len(), rows * n);
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(b.len(), k * n);
    let _prof = lightts_obs::prof::scope("gemm.panel");
    let mut r = 0;
    while r + 4 <= rows {
        let (c01, c23) = c[r * n..(r + 4) * n].split_at_mut(2 * n);
        let (c0, c1) = c01.split_at_mut(n);
        let (c2, c3) = c23.split_at_mut(n);
        let ar = |i: usize| &a[(r + i) * k..(r + i + 1) * k];
        simd::gemm_block4(c0, c1, c2, c3, ar(0), ar(1), ar(2), ar(3), b, k, n);
        r += 4;
    }
    for rr in r..rows {
        gemm_row_into(&mut c[rr * n..(rr + 1) * n], &a[rr * k..(rr + 1) * k], b, k, n);
    }
}

/// `c = a · b` for row-major `a: [m,k]`, `b: [k,n]`, `c: [m,n]`.
///
/// Rows of `c` are computed independently (in parallel) through
/// [`gemm_row_into`], in the same `k`-ascending accumulation order as the
/// serial loop, so the parallel path is bitwise identical to the serial
/// oracle. The zero-skip on `a` helps the magnitude-pruned weight matrices
/// common in this workspace.
pub fn matmul_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul_into: lhs length");
    assert_eq!(b.len(), k * n, "matmul_into: rhs length");
    assert_eq!(c.len(), m * n, "matmul_into: out length");
    if n == 0 {
        return;
    }
    let _prof = lightts_obs::prof::scope("gemm.matmul");
    par::par_for_rows(c, n, 2 * k * n, |i, c_row| {
        gemm_row_into(c_row, &a[i * k..(i + 1) * k], b, k, n);
    });
}

/// Cholesky factorization of a symmetric positive-definite matrix.
///
/// Holds the lower-triangular factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Row-major lower-triangular factor (upper part is zero).
    l: Vec<f64>,
}

impl Cholesky {
    /// Factors `a` (rank-2, square, symmetric positive definite).
    ///
    /// Computation runs in `f64` to keep the GP numerically healthy even
    /// though tensors store `f32`.
    pub fn new(a: &Tensor) -> Result<Self> {
        if a.rank() != 2 || a.dims()[0] != a.dims()[1] {
            return Err(TensorError::RankMismatch {
                found: a.rank(),
                expected: 2,
                op: "cholesky (square matrix required)",
            });
        }
        let n = a.dims()[0];
        let ad = a.data();
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = ad[i * n + j] as f64;
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(TensorError::NotPositiveDefinite { pivot: i });
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(Cholesky { n, l })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` via `L y = b` then `Lᵀ x = y`.
    #[allow(clippy::needless_range_loop)] // triangular solves have loop-carried deps
    pub fn solve(&self, b: &[f32]) -> Result<Vec<f32>> {
        if b.len() != self.n {
            return Err(TensorError::LengthMismatch { len: b.len(), expected: self.n });
        }
        let n = self.n;
        let mut y = vec![0.0f64; n];
        // forward substitution
        for i in 0..n {
            let mut sum = b[i] as f64;
            for k in 0..i {
                sum -= self.l[i * n + k] * y[k];
            }
            y[i] = sum / self.l[i * n + i];
        }
        // backward substitution with Lᵀ
        let mut x = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[k * n + i] * x[k];
            }
            x[i] = sum / self.l[i * n + i];
        }
        Ok(x.into_iter().map(|v| v as f32).collect())
    }

    /// Solves `L y = b` only (used for the GP variance term
    /// `κ(x*,x*) − vᵀv` with `v = L⁻¹ κ(X, x*)`).
    #[allow(clippy::needless_range_loop)]
    pub fn solve_lower(&self, b: &[f32]) -> Result<Vec<f32>> {
        if b.len() != self.n {
            return Err(TensorError::LengthMismatch { len: b.len(), expected: self.n });
        }
        let n = self.n;
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut sum = b[i] as f64;
            for k in 0..i {
                sum -= self.l[i * n + k] * y[k];
            }
            y[i] = sum / self.l[i * n + i];
        }
        Ok(y.into_iter().map(|v| v as f32).collect())
    }

    /// Log-determinant of `A`: `2 Σ ln L_ii`. Used for GP log-marginal
    /// likelihood when tuning kernel hyper-parameters.
    pub fn log_det(&self) -> f64 {
        (0..self.n).map(|i| self.l[i * self.n + i].ln()).sum::<f64>() * 2.0
    }
}

/// Solves a symmetric positive-definite system, adding `jitter` to the
/// diagonal and retrying (up to 6 doublings) if factorization fails.
///
/// This mirrors the standard GP practice of jittering the kernel matrix when
/// observations are noise-free and nearly duplicated.
pub fn solve_spd_with_jitter(a: &Tensor, b: &[f32], jitter: f32) -> Result<Vec<f32>> {
    let n = a.dims()[0];
    let mut eps = jitter;
    for _ in 0..7 {
        let mut aj = a.clone();
        for i in 0..n {
            let d = aj.data()[i * n + i] + eps;
            aj.data_mut()[i * n + i] = d;
        }
        match Cholesky::new(&aj) {
            Ok(ch) => return ch.solve(b),
            Err(_) => eps = if eps == 0.0 { 1e-6 } else { eps * 10.0 },
        }
    }
    Err(TensorError::NotPositiveDefinite { pivot: 0 })
}

/// Dot product of two equal-length slices.
///
/// Deliberately a plain left-to-right scalar fold, *not* the striped
/// [`crate::simd::dot`] kernel: these helpers feed the Gaussian-process
/// estimator, whose inputs are short hyper-parameter encodings (nothing to
/// vectorize) and whose seeded search trajectories are pinned by tests —
/// keeping the historical summation order keeps them backend-independent.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices
/// (left-to-right scalar fold; see [`dot`] for why).
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn random_spd(n: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Tensor::randn(&mut rng, &[n, n], 1.0);
        // A = M Mᵀ + n·I is SPD.
        let mt = m.transpose2().unwrap();
        let mut a = m.matmul(&mt).unwrap();
        for i in 0..n {
            let d = a.data()[i * n + i] + n as f32;
            a.data_mut()[i * n + i] = d;
        }
        a
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = random_spd(5, 1);
        let ch = Cholesky::new(&a).unwrap();
        let n = 5;
        // rebuild L·Lᵀ
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0f64;
                for k in 0..n {
                    v += ch.l[i * n + k] * ch.l[j * n + k];
                }
                let expect = a.data()[i * n + j] as f64;
                assert!((v - expect).abs() < 1e-3, "({i},{j}): {v} vs {expect}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn solve_recovers_known_solution() {
        let a = random_spd(6, 2);
        let x_true: Vec<f32> = (0..6).map(|i| (i as f32) - 2.5).collect();
        // b = A x
        let n = 6;
        let mut b = vec![0.0f32; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a.data()[i * n + j] * x_true[j];
            }
        }
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        for (xs, xt) in x.iter().zip(x_true.iter()) {
            assert!((xs - xt).abs() < 1e-3, "{xs} vs {xt}");
        }
    }

    #[test]
    fn identity_solve_is_identity() {
        let mut a = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            a.set(&[i, i], 1.0).unwrap();
        }
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        assert!(ch.log_det().abs() < 1e-9);
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 2.0, 1.0], &[2, 2]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(Cholesky::new(&a), Err(TensorError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // rank-1 matrix: [1 1; 1 1] is PSD but singular.
        let a = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[2, 2]).unwrap();
        let x = solve_spd_with_jitter(&a, &[1.0, 1.0], 1e-6).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn solve_lower_matches_full_solve_composition() {
        let a = random_spd(4, 3);
        let ch = Cholesky::new(&a).unwrap();
        let b = [0.3f32, -0.1, 0.7, 0.2];
        // ‖L⁻¹ b‖² should equal bᵀ A⁻¹ b
        let v = ch.solve_lower(&b).unwrap();
        let lhs: f32 = v.iter().map(|x| x * x).sum();
        let x = ch.solve(&b).unwrap();
        let rhs = dot(&b, &x);
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn dot_and_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn rejects_non_square() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let a = random_spd(3, 4);
        let ch = Cholesky::new(&a).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }
}
