//! True int8 quantized storage and the integer conv/GEMM drivers built on
//! it.
//!
//! [`crate::quant`] implements the paper's *fake* quantization: values are
//! snapped to a `2^b`-level grid but stay `f32`, which is what
//! quantization-aware training needs. This module is the deployment-side
//! counterpart: weights and activations are stored as real `i8` codes and
//! multiplied in pure integer arithmetic (`i8×i8→i32` via
//! [`crate::simd::qgemm_i8t`]), with one `f32` rescale at the very end.
//!
//! # Scheme
//!
//! * **Weights** ([`QuantizedMatrix`]): symmetric per-row affine,
//!   `w ≈ scale[r] · q` with `q ∈ [−127, 127]` and zero-point 0. Rows are
//!   output channels (conv filters or FC rows), so each channel keeps its
//!   own dynamic range — the same per-channel granularity the folded
//!   BatchNorm affine already uses. The per-row code sums are precomputed
//!   so activation zero-points can be corrected exactly (see below).
//! * **Activations** ([`ActQuant`]): asymmetric per-buffer affine fitted at
//!   run time, `x ≈ scale · (q − zero_point)` with `q ∈ [−128, 127]`. The
//!   fitted range always includes 0.0 so the zero code is exact — which
//!   makes "same" conv padding exact too: padded positions are filled with
//!   the zero-point code and their contribution is cancelled by the
//!   `zero_point · row_sum` correction term.
//!
//! For an accumulated dot `acc = Σ q_w · q_x` the dequantized result is
//!
//! ```text
//! y = scale_w · scale_x · (acc − zero_point_x · Σ q_w)
//! ```
//!
//! computed per output element in scalar `f32` (fixed rounding sequence),
//! so the only inexact steps are the two quantizations themselves. Code
//! assignment uses `f32::round` (half away from zero) everywhere.
//!
//! # Determinism
//!
//! Everything here is in the **integer-exact** class (`docs/NUMERICS.md`,
//! "Quantized inference"): the integer kernels are bitwise identical across
//! all SIMD backends, and the f32 fit/dequantize steps are element-wise
//! scalar code — so quantized inference is bitwise reproducible across
//! backends, thread counts, and batch splits.

use crate::simd;
use crate::{Result, TensorError};

/// Quantized-code magnitude bound for symmetric weight rows (±127; −128 is
/// excluded so negation stays in range and the scheme stays symmetric).
pub const WEIGHT_QMAX: f32 = 127.0;

/// An `i8` matrix with per-row symmetric quantization metadata, laid out
/// row-major `[rows, k]` — the weight-side operand of
/// [`simd::qgemm_i8t`].
///
/// `rows` is the output-channel axis (conv filters, FC output features);
/// `k` is the reduction axis (`cin·kernel` or `in_features`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    data: Vec<i8>,
    rows: usize,
    k: usize,
    scales: Vec<f32>,
    row_sums: Vec<i32>,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `[rows, k]` f32 matrix with a symmetric
    /// per-row scheme: `scale[r] = max|row| / 127`, codes
    /// `round(w / scale)` clamped to `[−127, 127]`, zero-point 0.
    ///
    /// An all-zero (or empty-range) row gets scale 1.0 and all-zero codes,
    /// which round-trips exactly. Fails if `src.len() != rows · k`, if
    /// either dimension is zero, or if `k` exceeds the integer-overflow
    /// bound of the quantized kernels ([`simd::QDOT_MAX_K`]).
    pub fn quantize_rows_symmetric(src: &[f32], rows: usize, k: usize) -> Result<Self> {
        if rows == 0 || k == 0 {
            return Err(TensorError::Empty { op: "QuantizedMatrix::quantize_rows_symmetric" });
        }
        if src.len() != rows * k {
            return Err(TensorError::LengthMismatch { len: src.len(), expected: rows * k });
        }
        if k > simd::QDOT_MAX_K {
            return Err(TensorError::LengthMismatch { len: k, expected: simd::QDOT_MAX_K });
        }
        let mut data = vec![0i8; rows * k];
        let mut scales = vec![1.0f32; rows];
        let mut row_sums = vec![0i32; rows];
        for r in 0..rows {
            let row = &src[r * k..(r + 1) * k];
            let maxabs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if maxabs > 0.0 && maxabs.is_finite() { maxabs / WEIGHT_QMAX } else { 1.0 };
            let inv = 1.0 / scale;
            let dst = &mut data[r * k..(r + 1) * k];
            let mut sum = 0i32;
            for (d, &v) in dst.iter_mut().zip(row.iter()) {
                let q = (v * inv).round().clamp(-WEIGHT_QMAX, WEIGHT_QMAX) as i32;
                sum += q;
                *d = q as i8;
            }
            scales[r] = scale;
            row_sums[r] = sum;
        }
        Ok(QuantizedMatrix { data, rows, k, scales, row_sums })
    }

    /// Number of rows (output channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Reduction-axis length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The `i8` codes, row-major `[rows, k]`.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-row scales (`w ≈ scale[r] · q`).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Per-row code sums `Σ_j q[r, j]`, precomputed for the activation
    /// zero-point correction.
    pub fn row_sums(&self) -> &[i32] {
        &self.row_sums
    }

    /// Dequantizes row `r` back to f32 (test/debug helper).
    pub fn dequantize_row(&self, r: usize) -> Vec<f32> {
        let s = self.scales[r];
        self.data[r * self.k..(r + 1) * self.k].iter().map(|&q| f32::from(q) * s).collect()
    }

    /// Heap bytes held by the quantized codes plus per-row metadata —
    /// the number the README size table quotes against `4 · rows · k`
    /// for the f32 equivalent.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
            + self.scales.len() * std::mem::size_of::<f32>()
            + self.row_sums.len() * std::mem::size_of::<i32>()
    }
}

/// A fitted asymmetric activation quantizer: `x ≈ scale · (q − zero_point)`
/// with codes in `[−128, 127]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActQuant {
    /// Real-valued step between adjacent codes.
    pub scale: f32,
    /// Code representing 0.0 exactly.
    pub zero_point: i8,
}

impl ActQuant {
    /// Fits the quantizer to the value range of `data`, widened to include
    /// 0.0 so the zero code is exact. Non-finite values are ignored during
    /// the range scan; a degenerate (empty or all-zero) range yields the
    /// identity-ish quantizer `scale = 1, zero_point = 0`.
    pub fn fit(data: &[f32]) -> ActQuant {
        let mut lo = 0.0f32;
        let mut hi = 0.0f32;
        for &v in data {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if hi <= lo {
            return ActQuant { scale: 1.0, zero_point: 0 };
        }
        let scale = (hi - lo) / 255.0;
        // Code for 0.0: −128 maps to `lo`, so zero sits at −128 − lo/scale.
        let zp = (-128.0 - lo / scale).round().clamp(-128.0, 127.0) as i8;
        ActQuant { scale, zero_point: zp }
    }

    /// Quantizes one value (round half away from zero, saturating clamp).
    pub fn quantize(&self, v: f32) -> i8 {
        let q = (v / self.scale).round() as i32 + i32::from(self.zero_point);
        q.clamp(-128, 127) as i8
    }

    /// Quantizes a buffer into `dst` (`dst.len()` must equal `src.len()`).
    pub fn quantize_into(&self, src: &[f32], dst: &mut [i8]) {
        debug_assert_eq!(src.len(), dst.len());
        let inv = 1.0 / self.scale;
        let zp = i32::from(self.zero_point);
        for (d, &v) in dst.iter_mut().zip(src.iter()) {
            *d = ((v * inv).round() as i32 + zp).clamp(-128, 127) as i8;
        }
    }

    /// Dequantizes one code.
    pub fn dequantize(&self, code: i8) -> f32 {
        (i32::from(code) - i32::from(self.zero_point)) as f32 * self.scale
    }
}

/// Quantized analogue of the f32 lowering's `im2row`: scatters an `i8`
/// activation map `qx: [cin, l]` into patch rows `patch: [l, cin·kernel]`
/// where `patch[t, ci·kernel + j] = qx[ci, t + j − pl]`, out-of-range
/// positions filled with `pad` (the activation zero-point code, so padding
/// dequantizes to exactly 0.0).
pub fn qim2row(
    patch: &mut [i8],
    qx: &[i8],
    cin: usize,
    l: usize,
    kernel: usize,
    pl: usize,
    pad: i8,
) {
    let ck = cin * kernel;
    debug_assert_eq!(patch.len(), l * ck);
    debug_assert_eq!(qx.len(), cin * l);
    for t in 0..l {
        let dst_t = &mut patch[t * ck..(t + 1) * ck];
        for ci in 0..cin {
            let x_row = &qx[ci * l..(ci + 1) * l];
            let dst = &mut dst_t[ci * kernel..(ci + 1) * kernel];
            let j_lo = pl.saturating_sub(t).min(kernel);
            let j_hi = (l + pl - t).min(kernel);
            dst[..j_lo].fill(pad);
            dst[j_hi.max(j_lo)..].fill(pad);
            if j_lo < j_hi {
                dst[j_lo..j_hi].copy_from_slice(&x_row[t + j_lo - pl..t + j_hi - pl]);
            }
        }
    }
}

/// Quantized "same" 1-D convolution for one sample, lowered onto
/// [`simd::qgemm_i8t`]: builds zero-point-padded patch rows with
/// [`qim2row`], then computes `out[co·l + t] = Σ_ci Σ_j w[co, ci, j] ·
/// patch[t, ci·kernel + j]` in i32.
///
/// `w` must be a `[cout, cin·kernel]` [`QuantizedMatrix`] (the flattened
/// conv weight), `qx` the quantized `[cin, l]` activation map, `pad` the
/// activation zero-point code. `patch` is a caller-owned grow-only scratch
/// buffer (resized, never shrunk); `out` must hold `cout · l` elements.
/// Integer-exact: bitwise identical on every SIMD backend.
#[allow(clippy::too_many_arguments)]
pub fn qconv1d_same_into(
    out: &mut [i32],
    patch: &mut Vec<i8>,
    qx: &[i8],
    cin: usize,
    l: usize,
    w: &QuantizedMatrix,
    kernel: usize,
    pad: i8,
) -> Result<()> {
    if cin == 0 || l == 0 || kernel == 0 {
        return Err(TensorError::Empty { op: "qconv1d_same_into" });
    }
    if w.k() != cin * kernel {
        return Err(TensorError::LengthMismatch { len: w.k(), expected: cin * kernel });
    }
    if qx.len() != cin * l {
        return Err(TensorError::LengthMismatch { len: qx.len(), expected: cin * l });
    }
    if out.len() != w.rows() * l {
        return Err(TensorError::LengthMismatch { len: out.len(), expected: w.rows() * l });
    }
    let _prof = lightts_obs::prof::scope("qconv.same");
    let (pl, _pr) = crate::conv::same_padding(kernel);
    patch.resize(l * cin * kernel, 0);
    qim2row(patch, qx, cin, l, kernel, pl, pad);
    // A = weights [cout, ck], B = patches [l, ck] ⇒ out [cout, l], exactly
    // the channel-major layout the f32 plan produces.
    simd::qgemm_i8t(out, w.data(), patch, w.rows(), cin * kernel, l);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_roundtrip_error_is_bounded() {
        let src: Vec<f32> = (0..64).map(|i| ((i * 7 + 3) % 29) as f32 / 7.0 - 2.0).collect();
        let qm = QuantizedMatrix::quantize_rows_symmetric(&src, 4, 16).unwrap();
        for r in 0..4 {
            let deq = qm.dequantize_row(r);
            let half_step = qm.scales()[r] * 0.5;
            for (a, b) in src[r * 16..(r + 1) * 16].iter().zip(&deq) {
                assert!((a - b).abs() <= half_step + 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn zero_row_quantizes_exactly() {
        let src = vec![0.0f32; 8];
        let qm = QuantizedMatrix::quantize_rows_symmetric(&src, 1, 8).unwrap();
        assert_eq!(qm.scales()[0], 1.0);
        assert!(qm.data().iter().all(|&q| q == 0));
        assert_eq!(qm.row_sums()[0], 0);
    }

    #[test]
    fn act_quant_zero_is_exact() {
        for data in [
            vec![-1.5f32, 0.25, 3.0, 0.0],
            vec![0.1f32, 2.0, 5.5],
            vec![-4.0f32, -0.5],
            vec![0.0f32; 3],
        ] {
            let aq = ActQuant::fit(&data);
            assert_eq!(aq.quantize(0.0), aq.zero_point);
            assert_eq!(aq.dequantize(aq.zero_point), 0.0);
        }
    }

    #[test]
    fn act_quant_roundtrip_error_is_bounded() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32) * 0.13 - 6.0).collect();
        let aq = ActQuant::fit(&data);
        let mut codes = vec![0i8; data.len()];
        aq.quantize_into(&data, &mut codes);
        for (&v, &q) in data.iter().zip(&codes) {
            assert!((v - aq.dequantize(q)).abs() <= aq.scale * 0.5 + 1e-6);
        }
    }

    #[test]
    fn qconv_matches_dequantized_f32_conv_on_identity() {
        // k=1 identity kernel: quantized conv must reproduce the quantized
        // input codes times the weight scale.
        let qx: Vec<i8> = vec![-3, 0, 5, 7];
        let w = QuantizedMatrix::quantize_rows_symmetric(&[1.0], 1, 1).unwrap();
        let mut out = vec![0i32; 4];
        let mut patch = Vec::new();
        qconv1d_same_into(&mut out, &mut patch, &qx, 1, 4, &w, 1, 0).unwrap();
        let wq = i32::from(w.data()[0]);
        let want: Vec<i32> = qx.iter().map(|&q| i32::from(q) * wq).collect();
        assert_eq!(out, want);
    }
}
