//! Shape and stride arithmetic for row-major tensors.

use crate::TensorError;

/// A tensor shape: the extent of each dimension, row-major.
///
/// `Shape` is a thin wrapper around a `Vec<usize>` providing the volume and
/// stride computations used by [`Tensor`](crate::Tensor). Rank-0 shapes are
/// not used in this crate; scalars are rank-1 tensors of length 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    #[inline]
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides: the linear step for a unit move in each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linearizes a multi-index, checking bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.0.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.0.clone(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (d, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            if i >= self.0[d] {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.0.clone(),
                });
            }
            off += i * s;
        }
        Ok(off)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn offset_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0, 3]).is_err());
        assert!(s.offset(&[0]).is_err());
    }

    #[test]
    fn scalar_like_shape() {
        let s = Shape::new(&[1]);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn empty_dim_gives_zero_volume() {
        let s = Shape::new(&[3, 0, 2]);
        assert_eq!(s.volume(), 0);
    }
}
