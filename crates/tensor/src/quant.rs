//! Uniform quantization (paper Section 2.3, Figure 4).
//!
//! LightTS compresses student models by storing layer parameters with a
//! reduced bit-width `b ∈ {4, 8, 16, 32}`. Uniform quantization maps a
//! full-precision value into one of `2^b` evenly spaced buckets spanning the
//! observed `[min, max]` range of the tensor, then represents it by the
//! bucket's midpoint value (Figure 4: `8.623728 ∈ [7.5, 12.5) → 10 → 101₂`).
//!
//! During quantization-aware training the forward pass uses the dequantized
//! values while the backward pass uses the straight-through estimator (the
//! [`Op::FakeQuant`](crate::tape::Op) rule is the identity), matching the
//! standard practice the paper builds on (\[23\] in the paper).

use crate::{Result, Tensor, TensorError};

/// Parameters of a fitted uniform quantizer: the affine map between the
/// integer code space `{0, …, 2^bits − 1}` and the real line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Bit-width of the code space.
    pub bits: u8,
    /// Real value represented by code 0.
    pub zero_point: f32,
    /// Real-valued distance between adjacent codes.
    pub step: f32,
}

impl QuantParams {
    /// Fits a uniform quantizer to the value range of `data`.
    ///
    /// `bits` must be in `1..=32`. Degenerate ranges (constant tensors)
    /// produce a zero step so every value round-trips exactly.
    pub fn fit(data: &[f32], bits: u8) -> Result<Self> {
        if bits == 0 || bits > 32 {
            return Err(TensorError::InvalidArgument { what: "bits must be in 1..=32" });
        }
        if data.is_empty() {
            return Err(TensorError::Empty { op: "QuantParams::fit" });
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let levels = if bits >= 31 { u32::MAX } else { (1u32 << bits) - 1 };
        let step = if hi > lo { (hi - lo) / levels as f32 } else { 0.0 };
        Ok(QuantParams { bits, zero_point: lo, step })
    }

    /// Number of representable levels.
    pub fn levels(&self) -> u64 {
        1u64 << self.bits.min(32)
    }

    /// Quantizes a single value: encode then decode ("fake quantization").
    #[inline]
    pub fn quantize(&self, v: f32) -> f32 {
        if self.step == 0.0 {
            return self.zero_point;
        }
        let max_code = (self.levels() - 1) as f32;
        let code = ((v - self.zero_point) / self.step).round().clamp(0.0, max_code);
        self.zero_point + code * self.step
    }

    /// Encodes a value to its integer code.
    #[inline]
    pub fn encode(&self, v: f32) -> u32 {
        if self.step == 0.0 {
            return 0;
        }
        let max_code = (self.levels() - 1) as f32;
        ((v - self.zero_point) / self.step).round().clamp(0.0, max_code) as u32
    }

    /// Decodes an integer code back to its real value.
    #[inline]
    pub fn decode(&self, code: u32) -> f32 {
        self.zero_point + code as f32 * self.step
    }
}

/// Quantizes a whole tensor with a quantizer fitted to its own range,
/// returning the dequantized ("fake-quantized") tensor.
///
/// 32-bit quantization is the identity, matching the paper's use of 32 bits
/// to denote full precision. The result's buffer comes from the thread-local
/// [`crate::pool`] (via [`Tensor::map`] / `Clone`), so the per-step weight
/// re-quantization in QAT training loops is allocation-free once the pool
/// is warm.
pub fn fake_quantize(t: &Tensor, bits: u8) -> Result<Tensor> {
    if bits >= 32 {
        return Ok(t.clone());
    }
    let qp = QuantParams::fit(t.data(), bits)?;
    Ok(t.map(|v| qp.quantize(v)))
}

/// Maximum absolute round-trip error of a uniform quantizer over a range:
/// half a quantization step.
pub fn max_roundtrip_error(qp: &QuantParams) -> f32 {
    0.5 * qp.step
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn paper_figure4_example() {
        // Figure 4: range [0, 35] quantized to 3 bits gives buckets of width
        // 5 with representative values {0, 5, 10, ..., 35}; 8.623728 → 10.
        let data: Vec<f32> = vec![0.0, 35.0];
        let qp = QuantParams::fit(&data, 3).unwrap();
        assert!((qp.step - 5.0).abs() < 1e-6);
        assert!((qp.quantize(8.623_728) - 10.0).abs() < 1e-5);
        assert_eq!(qp.encode(8.623_728), 2);
    }

    #[test]
    fn fit_rejects_bad_bits() {
        assert!(QuantParams::fit(&[1.0], 0).is_err());
        assert!(QuantParams::fit(&[1.0], 33).is_err());
        assert!(QuantParams::fit(&[], 8).is_err());
    }

    #[test]
    fn constant_tensor_roundtrips_exactly() {
        let t = Tensor::full(&[4], 3.25);
        let q = fake_quantize(&t, 4).unwrap();
        assert_eq!(q.data(), t.data());
    }

    #[test]
    fn thirty_two_bits_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::randn(&mut rng, &[64], 1.0);
        let q = fake_quantize(&t, 32).unwrap();
        assert_eq!(q, t);
    }

    #[test]
    fn roundtrip_error_is_bounded_by_half_step() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::randn(&mut rng, &[256], 2.0);
        for &bits in &[2u8, 4, 8, 16] {
            let qp = QuantParams::fit(t.data(), bits).unwrap();
            let bound = max_roundtrip_error(&qp) + 1e-5;
            let q = fake_quantize(&t, bits).unwrap();
            for (a, b) in t.data().iter().zip(q.data().iter()) {
                assert!((a - b).abs() <= bound, "bits={bits}: |{a} - {b}| > {bound}");
            }
        }
    }

    #[test]
    fn more_bits_never_hurts() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::randn(&mut rng, &[128], 1.0);
        let err = |bits: u8| {
            let q = fake_quantize(&t, bits).unwrap();
            t.sub(&q).unwrap().norm_sq()
        };
        assert!(err(8) <= err(4));
        assert!(err(16) <= err(8));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let data = vec![-1.0f32, 0.0, 0.5, 1.0];
        let qp = QuantParams::fit(&data, 8).unwrap();
        for &v in &data {
            let code = qp.encode(v);
            assert!((qp.decode(code) - qp.quantize(v)).abs() < 1e-6);
        }
    }

    #[test]
    fn min_and_max_are_representable() {
        let data = vec![-3.5f32, 0.0, 7.25];
        for bits in [2u8, 4, 8] {
            let qp = QuantParams::fit(&data, bits).unwrap();
            assert!((qp.quantize(-3.5) - -3.5).abs() < 1e-5);
            assert!((qp.quantize(7.25) - 7.25).abs() < 1e-4);
        }
    }
}
