//! 1-D convolution kernels shared by the forward pass and the autodiff tape.
//!
//! The InceptionTime classifier (paper Section 2.2) is built from 1-D
//! convolutions with "same" zero padding: the output sequence has the same
//! length as the input, matching the paper's `T^(i) = ∥_k T^(i-1) * F_k`
//! formulation where per-layer outputs are concatenated channel-wise.
//!
//! Layout conventions:
//! * input `x`: `[batch, in_channels, length]`
//! * weight `w`: `[out_channels, in_channels, kernel]`
//! * output `y`: `[batch, out_channels, length]`
//!
//! # Two implementations, one contract
//!
//! Each pass (forward, backward-input, backward-weight) exists in two forms:
//!
//! * **Direct** — the original nested-loop kernels, kept as the test oracle
//!   and used for small shapes where lowering overhead dominates.
//! * **Lowered** — im2col/kn2row lowering onto the cache-blocked GEMM row
//!   kernel [`crate::linalg::gemm_row_into`] shared with `matmul`. Per
//!   sample, the input is unfolded into a `[cin·k, l]` patch matrix (built
//!   in a pooled slab, one contiguous copy per `(ci, j)` row) and the
//!   convolution becomes `W[cout, cin·k] @ X_col` — the flattened weight
//!   tensor *is* the packed GEMM panel, reused across the whole batch.
//!   The backward-input pass packs `Wᵀ` once per call and reuses it across
//!   the batch; backward-weight unfolds each sample as `[l, cin·k]` rows
//!   and accumulates `dy_row @ X_rowᵀ` per output channel. The win comes
//!   from turning indexed, bounds-checked inner loops into straight-line
//!   slice-zip accumulations the compiler vectorizes.
//!
//! Both forms honour the determinism contract the serving layer relies on:
//! fixed per-element reduction order, results identical across thread counts
//! and batch fusions. The **forward** lowering is bitwise identical to the
//! direct kernel *under any fixed SIMD backend* (same `(ci, j)`-ascending
//! accumulation per output element, one [`crate::simd`] `mul_add_fast` per
//! term in both paths — fused on AVX2, plain mul+add on SSE2/scalar — same
//! zero-skip; padding contributes exact `±0.0` terms which cannot change
//! an accumulator that is never `-0.0`). The backward lowerings use a
//! different (but still fixed) summation association and are validated
//! against the direct oracles by property tests in `tests/conv_lowering.rs`;
//! the direct backward-weight kernel deliberately stays scalar (its inner
//! loop is a dot product, and reassociating it would change the oracle),
//! so it is bitwise identical across every backend.
//!
//! The active implementation is chosen by [`set_conv_impl`]; the default
//! [`ConvImpl::Auto`] picks per shape (batch-independently, so fused and
//! per-sample runs agree).

use crate::linalg::{gemm_panel_into, gemm_row_into, GEMM_PANEL_ROWS};
use crate::{par, pool, simd, Result, Tensor, TensorError};
use std::sync::atomic::{AtomicU8, Ordering};

/// Padding for "same"-length convolution with a kernel of size `k`:
/// `(pad_left, pad_right)`.
///
/// For odd kernels both sides get `k/2`; for even kernels the left side gets
/// one less, matching common deep-learning framework behaviour.
#[inline]
pub fn same_padding(k: usize) -> (usize, usize) {
    ((k - 1) / 2, k / 2)
}

// ---------------------------------------------------------------------------
// Implementation selection
// ---------------------------------------------------------------------------

/// Which convolution kernel family the dispatching entry points use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvImpl {
    /// Choose per shape: lowered for GEMM-sized problems, direct for tiny
    /// ones. The choice depends only on `(cin, l, cout, k)` — never on the
    /// batch size or thread count — so batched and per-sample executions of
    /// the same layer always take the same path.
    Auto,
    /// Always the direct nested-loop kernels (the oracle).
    Direct,
    /// Always the im2col/GEMM lowering.
    Lowered,
}

static CONV_IMPL: AtomicU8 = AtomicU8::new(0);

/// Below this per-sample multiply count the im2col build + pooled-slab
/// bookkeeping costs more than it saves and the direct kernels win.
const LOWERED_MIN_WORK: usize = 1 << 12;

/// Sets the process-global convolution implementation (default
/// [`ConvImpl::Auto`]).
pub fn set_conv_impl(which: ConvImpl) {
    let v = match which {
        ConvImpl::Auto => 0,
        ConvImpl::Direct => 1,
        ConvImpl::Lowered => 2,
    };
    CONV_IMPL.store(v, Ordering::Relaxed);
}

/// The currently selected convolution implementation.
pub fn conv_impl() -> ConvImpl {
    match CONV_IMPL.load(Ordering::Relaxed) {
        1 => ConvImpl::Direct,
        2 => ConvImpl::Lowered,
        _ => ConvImpl::Auto,
    }
}

/// Resolves [`ConvImpl::Auto`] for a concrete (batch-independent) shape.
#[inline]
fn use_lowered(cin: usize, l: usize, cout: usize, k: usize) -> bool {
    match conv_impl() {
        ConvImpl::Direct => false,
        ConvImpl::Lowered => true,
        ConvImpl::Auto => cin * k * l * cout >= LOWERED_MIN_WORK,
    }
}

fn check_conv_shapes(x: &Tensor, w: &Tensor) -> Result<(usize, usize, usize, usize, usize)> {
    if x.rank() != 3 {
        return Err(TensorError::RankMismatch { found: x.rank(), expected: 3, op: "conv1d(x)" });
    }
    if w.rank() != 3 {
        return Err(TensorError::RankMismatch { found: w.rank(), expected: 3, op: "conv1d(w)" });
    }
    let (b, cin, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let (cout, cin_w, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    if cin != cin_w {
        return Err(TensorError::ShapeMismatch {
            left: x.dims().to_vec(),
            right: w.dims().to_vec(),
            op: "conv1d",
        });
    }
    if k == 0 || l == 0 {
        return Err(TensorError::Empty { op: "conv1d" });
    }
    Ok((b, cin, l, cout, k))
}

// ---------------------------------------------------------------------------
// im2col / im2row unfolding
// ---------------------------------------------------------------------------

/// Unfolds one sample `x_b: [cin, l]` into `xcol: [cin·k, l]` where row
/// `p = ci·k + j` holds `x[ci, t + j - pl]` for `t in 0..l` (zero outside
/// the valid range). Each row is one edge-zeroed contiguous copy.
fn im2col(xcol: &mut [f32], x_b: &[f32], cin: usize, l: usize, k: usize, pl: usize) {
    for ci in 0..cin {
        let x_row = &x_b[ci * l..(ci + 1) * l];
        for j in 0..k {
            let dst = &mut xcol[(ci * k + j) * l..(ci * k + j + 1) * l];
            // t + j - pl in [0, l) ⇒ t in [pl - j, l + pl - j); when k > l
            // a row can be entirely padding, hence the extra clamp to l.
            let t_lo = pl.saturating_sub(j).min(l);
            let t_hi = (l + pl).saturating_sub(j).min(l);
            dst[..t_lo].fill(0.0);
            dst[t_hi..].fill(0.0);
            if t_lo < t_hi {
                dst[t_lo..t_hi].copy_from_slice(&x_row[t_lo + j - pl..t_hi + j - pl]);
            }
        }
    }
}

/// Unfolds one sample `x_b: [cin, l]` into `xrow: [l, cin·k]` where row `t`,
/// column `p = ci·k + j` holds `x[ci, t + j - pl]` (zero outside the valid
/// range) — the transpose of [`im2col`], laid out so backward-weight can
/// reduce over `t` with [`gemm_row_into`].
fn im2row(xrow: &mut [f32], x_b: &[f32], cin: usize, l: usize, k: usize, pl: usize) {
    let ck = cin * k;
    for t in 0..l {
        let dst_t = &mut xrow[t * ck..(t + 1) * ck];
        for ci in 0..cin {
            let x_row = &x_b[ci * l..(ci + 1) * l];
            let dst = &mut dst_t[ci * k..(ci + 1) * k];
            // t + j - pl in [0, l) ⇒ j in [pl - t, l + pl - t); pl < k so
            // the lower clamp never exceeds k.
            let j_lo = pl.saturating_sub(t);
            let j_hi = (l + pl - t).min(k);
            dst[..j_lo].fill(0.0);
            dst[j_hi..].fill(0.0);
            if j_lo < j_hi {
                dst[j_lo..j_hi].copy_from_slice(&x_row[t + j_lo - pl..t + j_hi - pl]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Forward
// ---------------------------------------------------------------------------

/// Forward "same" 1-D convolution (actually cross-correlation, the deep
/// learning convention): `y[b,co,t] = Σ_ci Σ_j x[b,ci,t+j-pl] · w[co,ci,j]`.
///
/// Dispatches between the direct and lowered kernels per [`conv_impl`]; the
/// two are bitwise identical for the forward pass, so the choice is purely
/// a performance matter.
pub fn conv1d_forward(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    let (b, cin, l, cout, k) = check_conv_shapes(x, w)?;
    let mut y = pool::take_zeroed(b * cout * l);
    conv1d_forward_dispatch(&mut y, x.data(), w.data(), b, cin, l, cout, k);
    Tensor::from_vec(y, &[b, cout, l])
}

/// Forward "same" 1-D convolution into a caller-provided output buffer.
///
/// `x` holds a `[batch, cin, l]` activation batch (`l` is derived from the
/// buffer length, which must divide evenly) and `y` must hold exactly
/// `batch · cout · l` elements; `y` is overwritten. This is the
/// allocation-free entry point the inference engine uses to reuse one
/// scratch buffer across requests; numerics are identical to
/// [`conv1d_forward`] (same dispatch, same kernels).
pub fn conv1d_forward_into(y: &mut [f32], x: &[f32], batch: usize, w: &Tensor) -> Result<()> {
    if w.rank() != 3 {
        return Err(TensorError::RankMismatch { found: w.rank(), expected: 3, op: "conv1d(w)" });
    }
    let (cout, cin, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    if batch == 0 || cin == 0 || k == 0 {
        return Err(TensorError::Empty { op: "conv1d_forward_into" });
    }
    if x.len() < batch * cin || x.len() % (batch * cin) != 0 {
        return Err(TensorError::LengthMismatch { len: x.len(), expected: batch * cin });
    }
    let l = x.len() / (batch * cin);
    if y.len() != batch * cout * l {
        return Err(TensorError::LengthMismatch { len: y.len(), expected: batch * cout * l });
    }
    conv1d_forward_dispatch(y, x, w.data(), batch, cin, l, cout, k);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn conv1d_forward_dispatch(
    y: &mut [f32],
    xd: &[f32],
    wd: &[f32],
    b: usize,
    cin: usize,
    l: usize,
    cout: usize,
    k: usize,
) {
    if use_lowered(cin, l, cout, k) {
        conv1d_forward_lowered_kernel(y, xd, wd, b, cin, l, cout, k);
    } else {
        conv1d_forward_direct_kernel(y, xd, wd, b, cin, l, cout, k);
    }
}

/// Forward convolution forced through the direct nested-loop oracle.
pub fn conv1d_forward_direct(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    let (b, cin, l, cout, k) = check_conv_shapes(x, w)?;
    let mut y = pool::take_zeroed(b * cout * l);
    conv1d_forward_direct_kernel(&mut y, x.data(), w.data(), b, cin, l, cout, k);
    Tensor::from_vec(y, &[b, cout, l])
}

/// Forward convolution forced through the im2col/GEMM lowering.
pub fn conv1d_forward_lowered(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    let (b, cin, l, cout, k) = check_conv_shapes(x, w)?;
    let mut y = pool::take_zeroed(b * cout * l);
    conv1d_forward_lowered_kernel(&mut y, x.data(), w.data(), b, cin, l, cout, k);
    Tensor::from_vec(y, &[b, cout, l])
}

/// The direct "same"-padded forward kernel (test oracle). Rows of `y` (the
/// `(batch, out_channel)` grid) are filled independently; each row is zeroed
/// before accumulation so the buffer may be reused across calls.
#[allow(clippy::too_many_arguments)]
fn conv1d_forward_direct_kernel(
    y: &mut [f32],
    xd: &[f32],
    wd: &[f32],
    b: usize,
    cin: usize,
    l: usize,
    cout: usize,
    k: usize,
) {
    let _ = b;
    let _prof = lightts_obs::prof::scope("conv.direct_fwd");
    let (pl, _pr) = same_padding(k);
    par::par_for_rows(y, l, cin * k * l, |row, y_row| {
        let (bi, co) = (row / cout, row % cout);
        y_row.fill(0.0);
        for ci in 0..cin {
            let x_off = (bi * cin + ci) * l;
            let w_off = (co * cin + ci) * k;
            for j in 0..k {
                let wv = wd[w_off + j];
                if wv == 0.0 {
                    continue;
                }
                // t + j - pl in [0, l) ⇒ t in [pl - j, l + pl - j)
                let t_lo = pl.saturating_sub(j);
                let t_hi = (l + pl).saturating_sub(j).min(l);
                if t_lo >= t_hi {
                    continue;
                }
                // Shifted axpy through simd::axpy_madd: the same
                // mul_add_fast per element as the lowered GEMM panel, so
                // direct and lowered forward stay bitwise equal under
                // every backend (fused on AVX2, plain mul+add otherwise).
                let src = x_off + t_lo + j - pl;
                simd::axpy_madd(&mut y_row[t_lo..t_hi], &xd[src..src + (t_hi - t_lo)], wv);
            }
        }
    });
}

/// The lowered forward kernel: per sample, `y_b = W[cout, cin·k] @ X_col`.
///
/// The flattened weight tensor already is the `[cout, cin·k]` GEMM panel
/// (row-major `[cout, cin, k]` has exactly that memory layout), so it is
/// reused untouched across the whole batch; only the `X_col` unfold (one
/// pooled slab, rebuilt per sample) moves data. Accumulation per output
/// element runs `p = ci·k + j` ascending — the identical order and zero-skip
/// as the direct kernel — which makes this path bitwise equal to the oracle.
#[allow(clippy::too_many_arguments)]
fn conv1d_forward_lowered_kernel(
    y: &mut [f32],
    xd: &[f32],
    wd: &[f32],
    b: usize,
    cin: usize,
    l: usize,
    cout: usize,
    k: usize,
) {
    let _prof = lightts_obs::prof::scope("conv.lowered_fwd");
    let (pl, _pr) = same_padding(k);
    let ck = cin * k;
    let mut xcol = pool::take_zeroed(ck * l);
    for bi in 0..b {
        im2col(&mut xcol, &xd[bi * cin * l..(bi + 1) * cin * l], cin, l, k, pl);
        let y_b = &mut y[bi * cout * l..(bi + 1) * cout * l];
        let xcol_ref = &xcol;
        // Panel blocking: the register-blocked GEMM streams each X_col row
        // once per GEMM_PANEL_ROWS output channels instead of once per
        // channel, which is where the lowering's speedup over the (already
        // contiguous) direct kernel comes from. `gemm_panel_into` keeps the
        // per-element accumulation order of `gemm_row_into`, so the bitwise
        // contract holds.
        par::par_for_chunks(y_b, GEMM_PANEL_ROWS * l, ck, |chunk_idx, chunk| {
            let row0 = chunk_idx * GEMM_PANEL_ROWS;
            let rows = chunk.len() / l;
            chunk.fill(0.0);
            gemm_panel_into(chunk, &wd[row0 * ck..(row0 + rows) * ck], xcol_ref, rows, ck, l);
        });
    }
    pool::recycle(xcol);
}

// ---------------------------------------------------------------------------
// Backward w.r.t. input
// ---------------------------------------------------------------------------

fn check_backward_input(
    dy: &Tensor,
    w: &Tensor,
    input_dims: &[usize],
) -> Result<(usize, usize, usize, usize, usize)> {
    if dy.rank() != 3 || input_dims.len() != 3 {
        return Err(TensorError::RankMismatch {
            found: dy.rank(),
            expected: 3,
            op: "conv1d_backward_input",
        });
    }
    let (b, cin, l) = (input_dims[0], input_dims[1], input_dims[2]);
    let (cout, _cin, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    Ok((b, cin, l, cout, k))
}

/// Gradient of the convolution output w.r.t. the input:
/// `dx[b,ci,s] = Σ_co Σ_j dy[b,co,s-j+pl] · w[co,ci,j]`.
///
/// Dispatches between the direct and lowered kernels per [`conv_impl`].
/// Each kernel has a fixed reduction order independent of thread count and
/// batch fusion; the two orders differ in association, so gradients from
/// the two paths agree to rounding (not bitwise) — the dispatch heuristic
/// is shape-deterministic, so any given layer always takes the same path.
pub fn conv1d_backward_input(dy: &Tensor, w: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    let (b, cin, l, cout, k) = check_backward_input(dy, w, input_dims)?;
    if use_lowered(cin, l, cout, k) {
        conv1d_backward_input_lowered_kernel(dy, w, b, cin, l, cout, k)
    } else {
        conv1d_backward_input_direct_kernel(dy, w, b, cin, l, cout, k)
    }
}

/// Input gradient forced through the direct nested-loop oracle.
pub fn conv1d_backward_input_direct(
    dy: &Tensor,
    w: &Tensor,
    input_dims: &[usize],
) -> Result<Tensor> {
    let (b, cin, l, cout, k) = check_backward_input(dy, w, input_dims)?;
    conv1d_backward_input_direct_kernel(dy, w, b, cin, l, cout, k)
}

/// Input gradient forced through the kn2row/GEMM lowering.
pub fn conv1d_backward_input_lowered(
    dy: &Tensor,
    w: &Tensor,
    input_dims: &[usize],
) -> Result<Tensor> {
    let (b, cin, l, cout, k) = check_backward_input(dy, w, input_dims)?;
    conv1d_backward_input_lowered_kernel(dy, w, b, cin, l, cout, k)
}

fn conv1d_backward_input_direct_kernel(
    dy: &Tensor,
    w: &Tensor,
    b: usize,
    cin: usize,
    l: usize,
    cout: usize,
    k: usize,
) -> Result<Tensor> {
    let (pl, _pr) = same_padding(k);
    let dyd = dy.data();
    let wd = w.data();
    let mut dx = pool::take_zeroed(b * cin * l);
    // Parallel over the (batch, in_channel) grid: each dx row accumulates
    // contributions in the same co → j → t order as the serial bi → co → ci
    // nest visited it, so results are bitwise identical.
    par::par_for_rows(&mut dx, l, cout * k * l, |row, dx_row| {
        let (bi, ci) = (row / cin, row % cin);
        for co in 0..cout {
            let dy_off = (bi * cout + co) * l;
            let w_off = (co * cin + ci) * k;
            for j in 0..k {
                let wv = wd[w_off + j];
                if wv == 0.0 {
                    continue;
                }
                // s = t + j - pl with t in [0,l) ⇒ s in [j-pl, l+j-pl)
                let t_lo = pl.saturating_sub(j);
                let t_hi = (l + pl).saturating_sub(j).min(l);
                if t_lo >= t_hi {
                    continue;
                }
                // Same vectorized shifted axpy as the forward kernel;
                // per-element co → j order is unchanged.
                let dst = t_lo + j - pl;
                simd::axpy_madd(
                    &mut dx_row[dst..dst + (t_hi - t_lo)],
                    &dyd[dy_off + t_lo..dy_off + t_hi],
                    wv,
                );
            }
        }
    });
    Tensor::from_vec(dx, &[b, cin, l])
}

/// The lowered input-gradient kernel: pack `Wᵀ: [cin·k, cout]` once, then
/// per sample compute `G = Wᵀ @ dy_b` (a `[cin·k, l]` GEMM through the
/// shared row kernel) and fold `G` back onto `dx_b` with a col2im scatter
/// (per `(ci)` row, `j`-ascending shifted adds). Reduction order per `dx`
/// element is fixed — `co` summed inside the GEMM, then `j` ascending — and
/// independent of thread count and batch size.
fn conv1d_backward_input_lowered_kernel(
    dy: &Tensor,
    w: &Tensor,
    b: usize,
    cin: usize,
    l: usize,
    cout: usize,
    k: usize,
) -> Result<Tensor> {
    let _prof = lightts_obs::prof::scope("conv.lowered_bwd_input");
    let (pl, _pr) = same_padding(k);
    let dyd = dy.data();
    let wd = w.data();
    let ck = cin * k;
    // The packed weight panel: wt[p·cout + co] = w[co, p], built once and
    // reused across the batch.
    let mut wt = pool::take_zeroed(ck * cout);
    for co in 0..cout {
        for (p, &wv) in wd[co * ck..(co + 1) * ck].iter().enumerate() {
            wt[p * cout + co] = wv;
        }
    }
    let mut g = pool::take_zeroed(ck * l);
    let mut dx = pool::take_zeroed(b * cin * l);
    for bi in 0..b {
        let dy_b = &dyd[bi * cout * l..(bi + 1) * cout * l];
        let wt_ref = &wt;
        // Panel blocking over the [cin·k, l] gradient image: each dy_b row is
        // streamed once per GEMM_PANEL_ROWS G rows (same blocking as the
        // forward pass); per-element accumulation order is unchanged.
        par::par_for_chunks(&mut g, GEMM_PANEL_ROWS * l, cout, |chunk_idx, chunk| {
            let row0 = chunk_idx * GEMM_PANEL_ROWS;
            let rows = chunk.len() / l;
            chunk.fill(0.0);
            gemm_panel_into(chunk, &wt_ref[row0 * cout..(row0 + rows) * cout], dy_b, rows, cout, l);
        });
        let dx_b = &mut dx[bi * cin * l..(bi + 1) * cin * l];
        let g_ref = &g;
        par::par_for_rows(dx_b, l, k * l, |ci, dx_row| {
            for j in 0..k {
                let g_row = &g_ref[(ci * k + j) * l..(ci * k + j + 1) * l];
                let t_lo = pl.saturating_sub(j).min(l);
                let t_hi = (l + pl).saturating_sub(j).min(l);
                if t_lo >= t_hi {
                    continue;
                }
                // Pure additions (exact single-rounding op): vectorized,
                // bitwise invariant across backends.
                simd::add_assign(&mut dx_row[t_lo + j - pl..t_hi + j - pl], &g_row[t_lo..t_hi]);
            }
        });
    }
    pool::recycle(g);
    pool::recycle(wt);
    Tensor::from_vec(dx, &[b, cin, l])
}

// ---------------------------------------------------------------------------
// Backward w.r.t. weights
// ---------------------------------------------------------------------------

fn check_backward_weight(
    x: &Tensor,
    weight_dims: &[usize],
) -> Result<(usize, usize, usize, usize, usize)> {
    if weight_dims.len() != 3 {
        return Err(TensorError::RankMismatch {
            found: weight_dims.len(),
            expected: 3,
            op: "conv1d_backward_weight",
        });
    }
    let (cout, cin, k) = (weight_dims[0], weight_dims[1], weight_dims[2]);
    let (b, _cin, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    Ok((b, cin, l, cout, k))
}

/// Gradient of the convolution output w.r.t. the weights:
/// `dw[co,ci,j] = Σ_b Σ_t dy[b,co,t] · x[b,ci,t+j-pl]`.
///
/// Dispatches between the direct and lowered kernels per [`conv_impl`];
/// see [`conv1d_backward_input`] for the determinism discussion.
pub fn conv1d_backward_weight(dy: &Tensor, x: &Tensor, weight_dims: &[usize]) -> Result<Tensor> {
    let (b, cin, l, cout, k) = check_backward_weight(x, weight_dims)?;
    if use_lowered(cin, l, cout, k) {
        conv1d_backward_weight_lowered_kernel(dy, x, b, cin, l, cout, k)
    } else {
        conv1d_backward_weight_direct_kernel(dy, x, b, cin, l, cout, k)
    }
}

/// Weight gradient forced through the direct nested-loop oracle.
pub fn conv1d_backward_weight_direct(
    dy: &Tensor,
    x: &Tensor,
    weight_dims: &[usize],
) -> Result<Tensor> {
    let (b, cin, l, cout, k) = check_backward_weight(x, weight_dims)?;
    conv1d_backward_weight_direct_kernel(dy, x, b, cin, l, cout, k)
}

/// Weight gradient forced through the im2row/GEMM lowering.
pub fn conv1d_backward_weight_lowered(
    dy: &Tensor,
    x: &Tensor,
    weight_dims: &[usize],
) -> Result<Tensor> {
    let (b, cin, l, cout, k) = check_backward_weight(x, weight_dims)?;
    conv1d_backward_weight_lowered_kernel(dy, x, b, cin, l, cout, k)
}

fn conv1d_backward_weight_direct_kernel(
    dy: &Tensor,
    x: &Tensor,
    b: usize,
    cin: usize,
    l: usize,
    cout: usize,
    k: usize,
) -> Result<Tensor> {
    let (pl, _pr) = same_padding(k);
    let dyd = dy.data();
    let xd = x.data();
    let mut dw = pool::take_zeroed(cout * cin * k);
    // Parallel over (out_channel, in_channel) filter rows. Each dw[co,ci,j]
    // accumulates one per-batch t-sum per bi, in ascending bi order — the
    // same per-element sequence as the serial bi-outermost nest, so results
    // are bitwise identical.
    par::par_for_rows(&mut dw, k, b * k * l, |row, dw_row| {
        let (co, ci) = (row / cin, row % cin);
        for bi in 0..b {
            let dy_off = (bi * cout + co) * l;
            let x_off = (bi * cin + ci) * l;
            for (j, dwj) in dw_row.iter_mut().enumerate() {
                let t_lo = pl.saturating_sub(j);
                let t_hi = (l + pl).saturating_sub(j).min(l);
                let mut acc = 0.0f32;
                for t in t_lo..t_hi {
                    acc += dyd[dy_off + t] * xd[x_off + t + j - pl];
                }
                *dwj += acc;
            }
        }
    });
    Tensor::from_vec(dw, &[cout, cin, k])
}

/// The lowered weight-gradient kernel: per sample, unfold `x_b` as
/// `X_row: [l, cin·k]` and accumulate `dw[co, :] += dy[b, co, :] @ X_row`
/// through the shared GEMM row kernel. Per `dw` element the reduction runs
/// `bi` ascending then `t` ascending — fixed, thread-count- and
/// fusion-independent.
fn conv1d_backward_weight_lowered_kernel(
    dy: &Tensor,
    x: &Tensor,
    b: usize,
    cin: usize,
    l: usize,
    cout: usize,
    k: usize,
) -> Result<Tensor> {
    let _prof = lightts_obs::prof::scope("conv.lowered_bwd_weight");
    let (pl, _pr) = same_padding(k);
    let dyd = dy.data();
    let xd = x.data();
    let ck = cin * k;
    let mut xrow = pool::take_zeroed(l * ck);
    let mut dw = pool::take_zeroed(cout * ck);
    for bi in 0..b {
        im2row(&mut xrow, &xd[bi * cin * l..(bi + 1) * cin * l], cin, l, k, pl);
        let xrow_ref = &xrow;
        par::par_for_rows(&mut dw, ck, l * ck, |co, dw_row| {
            gemm_row_into(
                dw_row,
                &dyd[(bi * cout + co) * l..(bi * cout + co + 1) * l],
                xrow_ref,
                l,
                ck,
            );
        });
    }
    pool::recycle(xrow);
    Tensor::from_vec(dw, &[cout, cin, k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Brute-force reference convolution for validation.
    fn conv_ref(x: &Tensor, w: &Tensor) -> Tensor {
        let (b, cin, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let (cout, _, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
        let (pl, _) = same_padding(k);
        let mut y = Tensor::zeros(&[b, cout, l]);
        for bi in 0..b {
            for co in 0..cout {
                for t in 0..l {
                    let mut acc = 0.0;
                    for ci in 0..cin {
                        for j in 0..k {
                            let s = t as isize + j as isize - pl as isize;
                            if s >= 0 && (s as usize) < l {
                                acc += x.get(&[bi, ci, s as usize]).unwrap()
                                    * w.get(&[co, ci, j]).unwrap();
                            }
                        }
                    }
                    y.set(&[bi, co, t], acc).unwrap();
                }
            }
        }
        y
    }

    #[test]
    fn same_padding_splits() {
        assert_eq!(same_padding(1), (0, 0));
        assert_eq!(same_padding(3), (1, 1));
        assert_eq!(same_padding(4), (1, 2));
        assert_eq!(same_padding(5), (2, 2));
        assert_eq!(same_padding(40), (19, 20));
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // k=1, single channel, weight 1.0 ⇒ conv is the identity.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]).unwrap();
        let w = Tensor::from_vec(vec![1.0], &[1, 1, 1]).unwrap();
        let y = conv1d_forward(&x, &w).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn forward_matches_reference_various_kernels() {
        let mut rng = StdRng::seed_from_u64(3);
        for &k in &[1usize, 2, 3, 5, 8] {
            let x = Tensor::randn(&mut rng, &[2, 3, 11], 1.0);
            let w = Tensor::randn(&mut rng, &[4, 3, k], 1.0);
            let fast = conv1d_forward(&x, &w).unwrap();
            let slow = conv_ref(&x, &w);
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                assert!((a - b).abs() < 1e-4, "k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn lowered_forward_is_bitwise_equal_to_direct() {
        let mut rng = StdRng::seed_from_u64(17);
        for &(b, cin, l, cout, k) in
            &[(2usize, 3usize, 11usize, 4usize, 5usize), (1, 1, 3, 2, 7), (3, 2, 16, 5, 4)]
        {
            let x = Tensor::randn(&mut rng, &[b, cin, l], 1.0);
            let w = Tensor::randn(&mut rng, &[cout, cin, k], 1.0);
            let direct = conv1d_forward_direct(&x, &w).unwrap();
            let lowered = conv1d_forward_lowered(&x, &w).unwrap();
            for (a, b) in direct.data().iter().zip(lowered.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "direct {a} vs lowered {b}");
            }
        }
    }

    #[test]
    fn lowered_backwards_match_direct_to_rounding() {
        let mut rng = StdRng::seed_from_u64(19);
        let x = Tensor::randn(&mut rng, &[2, 3, 13], 1.0);
        let w = Tensor::randn(&mut rng, &[4, 3, 5], 1.0);
        let dy = Tensor::randn(&mut rng, &[2, 4, 13], 1.0);
        let dx_d = conv1d_backward_input_direct(&dy, &w, x.dims()).unwrap();
        let dx_l = conv1d_backward_input_lowered(&dy, &w, x.dims()).unwrap();
        for (a, b) in dx_d.data().iter().zip(dx_l.data().iter()) {
            assert!((a - b).abs() < 1e-4, "dx: {a} vs {b}");
        }
        let dw_d = conv1d_backward_weight_direct(&dy, &x, w.dims()).unwrap();
        let dw_l = conv1d_backward_weight_lowered(&dy, &x, w.dims()).unwrap();
        for (a, b) in dw_d.data().iter().zip(dw_l.data().iter()) {
            assert!((a - b).abs() < 1e-3, "dw: {a} vs {b}");
        }
    }

    #[test]
    fn kernel_larger_than_input_is_ok() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(&mut rng, &[1, 1, 3], 1.0);
        let w = Tensor::randn(&mut rng, &[2, 1, 7], 1.0);
        let fast = conv1d_forward(&x, &w).unwrap();
        let slow = conv_ref(&x, &w);
        for (a, b) in fast.data().iter().zip(slow.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        // The lowering must handle k > l (fully clipped copies) too.
        let lowered = conv1d_forward_lowered(&x, &w).unwrap();
        for (a, b) in lowered.data().iter().zip(slow.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(&mut rng, &[1, 2, 6], 1.0);
        let w = Tensor::randn(&mut rng, &[3, 2, 3], 1.0);
        // loss = sum(conv(x, w)); dloss/dy = ones
        let dy = Tensor::ones(&[1, 3, 6]);
        let dx = conv1d_backward_input(&dy, &w, x.dims()).unwrap();
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (conv1d_forward(&xp, &w).unwrap().sum()
                - conv1d_forward(&xm, &w).unwrap().sum())
                / (2.0 * eps);
            assert!((dx.data()[i] - fd).abs() < 1e-2, "i={i}: {} vs {fd}", dx.data()[i]);
        }
    }

    #[test]
    fn backward_weight_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(13);
        let x = Tensor::randn(&mut rng, &[2, 2, 5], 1.0);
        let w = Tensor::randn(&mut rng, &[2, 2, 4], 1.0);
        let dy = Tensor::ones(&[2, 2, 5]);
        let dw = conv1d_backward_weight(&dy, &x, w.dims()).unwrap();
        let eps = 1e-3f32;
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = (conv1d_forward(&x, &wp).unwrap().sum()
                - conv1d_forward(&x, &wm).unwrap().sum())
                / (2.0 * eps);
            assert!((dw.data()[i] - fd).abs() < 1e-2, "i={i}: {} vs {fd}", dw.data()[i]);
        }
    }

    #[test]
    fn rejects_channel_mismatch() {
        let x = Tensor::zeros(&[1, 2, 4]);
        let w = Tensor::zeros(&[1, 3, 3]);
        assert!(conv1d_forward(&x, &w).is_err());
    }

    #[test]
    fn conv_impl_selector_roundtrips() {
        assert_eq!(conv_impl(), ConvImpl::Auto);
        set_conv_impl(ConvImpl::Direct);
        assert_eq!(conv_impl(), ConvImpl::Direct);
        set_conv_impl(ConvImpl::Lowered);
        assert_eq!(conv_impl(), ConvImpl::Lowered);
        set_conv_impl(ConvImpl::Auto);
        assert_eq!(conv_impl(), ConvImpl::Auto);
    }
}
