//! 1-D convolution kernels shared by the forward pass and the autodiff tape.
//!
//! The InceptionTime classifier (paper Section 2.2) is built from 1-D
//! convolutions with "same" zero padding: the output sequence has the same
//! length as the input, matching the paper's `T^(i) = ∥_k T^(i-1) * F_k`
//! formulation where per-layer outputs are concatenated channel-wise.
//!
//! Layout conventions:
//! * input `x`: `[batch, in_channels, length]`
//! * weight `w`: `[out_channels, in_channels, kernel]`
//! * output `y`: `[batch, out_channels, length]`

use crate::{par, Result, Tensor, TensorError};

/// Padding for "same"-length convolution with a kernel of size `k`:
/// `(pad_left, pad_right)`.
///
/// For odd kernels both sides get `k/2`; for even kernels the left side gets
/// one less, matching common deep-learning framework behaviour.
#[inline]
pub fn same_padding(k: usize) -> (usize, usize) {
    ((k - 1) / 2, k / 2)
}

fn check_conv_shapes(x: &Tensor, w: &Tensor) -> Result<(usize, usize, usize, usize, usize)> {
    if x.rank() != 3 {
        return Err(TensorError::RankMismatch { found: x.rank(), expected: 3, op: "conv1d(x)" });
    }
    if w.rank() != 3 {
        return Err(TensorError::RankMismatch { found: w.rank(), expected: 3, op: "conv1d(w)" });
    }
    let (b, cin, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let (cout, cin_w, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    if cin != cin_w {
        return Err(TensorError::ShapeMismatch {
            left: x.dims().to_vec(),
            right: w.dims().to_vec(),
            op: "conv1d",
        });
    }
    if k == 0 || l == 0 {
        return Err(TensorError::Empty { op: "conv1d" });
    }
    Ok((b, cin, l, cout, k))
}

/// Forward "same" 1-D convolution (actually cross-correlation, the deep
/// learning convention): `y[b,co,t] = Σ_ci Σ_j x[b,ci,t+j-pl] · w[co,ci,j]`.
///
/// Parallelised over the `(batch, out_channel)` grid: each output row
/// `y[b,co,:]` is computed independently with an unchanged inner loop, so
/// the result is bitwise identical to the serial kernel.
pub fn conv1d_forward(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    let (b, cin, l, cout, k) = check_conv_shapes(x, w)?;
    let mut y = vec![0.0f32; b * cout * l];
    conv1d_kernel(&mut y, x.data(), w.data(), b, cin, l, cout, k);
    Tensor::from_vec(y, &[b, cout, l])
}

/// Forward "same" 1-D convolution into a caller-provided output buffer.
///
/// `x` holds a `[batch, cin, l]` activation batch (only the first
/// `batch · cin · l` elements are read, so an oversized scratch buffer may
/// be passed) and `y` must hold exactly `batch · cout · l` elements; `y` is
/// overwritten. This is the allocation-free entry point the inference
/// engine uses to reuse one scratch buffer across requests; numerics are
/// identical to [`conv1d_forward`] (same kernel).
pub fn conv1d_forward_into(y: &mut [f32], x: &[f32], batch: usize, w: &Tensor) -> Result<()> {
    if w.rank() != 3 {
        return Err(TensorError::RankMismatch { found: w.rank(), expected: 3, op: "conv1d(w)" });
    }
    let (cout, cin, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    if batch == 0 || cin == 0 || k == 0 {
        return Err(TensorError::Empty { op: "conv1d_forward_into" });
    }
    if x.len() < batch * cin || x.len() % (batch * cin) != 0 {
        return Err(TensorError::LengthMismatch { len: x.len(), expected: batch * cin });
    }
    let l = x.len() / (batch * cin);
    if y.len() != batch * cout * l {
        return Err(TensorError::LengthMismatch { len: y.len(), expected: batch * cout * l });
    }
    conv1d_kernel(y, x, w.data(), batch, cin, l, cout, k);
    Ok(())
}

/// The shared "same"-padded forward kernel. Rows of `y` (the `(batch,
/// out_channel)` grid) are filled independently; each row is zeroed before
/// accumulation so the buffer may be reused across calls.
#[allow(clippy::too_many_arguments)]
fn conv1d_kernel(
    y: &mut [f32],
    xd: &[f32],
    wd: &[f32],
    b: usize,
    cin: usize,
    l: usize,
    cout: usize,
    k: usize,
) {
    let _ = b;
    let (pl, _pr) = same_padding(k);
    par::par_for_rows(y, l, cin * k * l, |row, y_row| {
        let (bi, co) = (row / cout, row % cout);
        y_row.fill(0.0);
        for ci in 0..cin {
            let x_off = (bi * cin + ci) * l;
            let w_off = (co * cin + ci) * k;
            for j in 0..k {
                let wv = wd[w_off + j];
                if wv == 0.0 {
                    continue;
                }
                // t + j - pl in [0, l) ⇒ t in [pl - j, l + pl - j)
                let t_lo = pl.saturating_sub(j);
                let t_hi = (l + pl).saturating_sub(j).min(l);
                for t in t_lo..t_hi {
                    y_row[t] += xd[x_off + t + j - pl] * wv;
                }
            }
        }
    });
}

/// Gradient of the convolution output w.r.t. the input:
/// `dx[b,ci,s] = Σ_co Σ_j dy[b,co,s-j+pl] · w[co,ci,j]`.
pub fn conv1d_backward_input(dy: &Tensor, w: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    if dy.rank() != 3 || input_dims.len() != 3 {
        return Err(TensorError::RankMismatch {
            found: dy.rank(),
            expected: 3,
            op: "conv1d_backward_input",
        });
    }
    let (b, cin, l) = (input_dims[0], input_dims[1], input_dims[2]);
    let (cout, _cin, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    let (pl, _pr) = same_padding(k);
    let dyd = dy.data();
    let wd = w.data();
    let mut dx = vec![0.0f32; b * cin * l];
    // Parallel over the (batch, in_channel) grid: each dx row accumulates
    // contributions in the same co → j → t order as the serial bi → co → ci
    // nest visited it, so results are bitwise identical.
    par::par_for_rows(&mut dx, l, cout * k * l, |row, dx_row| {
        let (bi, ci) = (row / cin, row % cin);
        for co in 0..cout {
            let dy_off = (bi * cout + co) * l;
            let w_off = (co * cin + ci) * k;
            for j in 0..k {
                let wv = wd[w_off + j];
                if wv == 0.0 {
                    continue;
                }
                // s = t + j - pl with t in [0,l) ⇒ s in [j-pl, l+j-pl)
                let t_lo = pl.saturating_sub(j);
                let t_hi = (l + pl).saturating_sub(j).min(l);
                for t in t_lo..t_hi {
                    dx_row[t + j - pl] += dyd[dy_off + t] * wv;
                }
            }
        }
    });
    Tensor::from_vec(dx, &[b, cin, l])
}

/// Gradient of the convolution output w.r.t. the weights:
/// `dw[co,ci,j] = Σ_b Σ_t dy[b,co,t] · x[b,ci,t+j-pl]`.
pub fn conv1d_backward_weight(dy: &Tensor, x: &Tensor, weight_dims: &[usize]) -> Result<Tensor> {
    if weight_dims.len() != 3 {
        return Err(TensorError::RankMismatch {
            found: weight_dims.len(),
            expected: 3,
            op: "conv1d_backward_weight",
        });
    }
    let (cout, cin, k) = (weight_dims[0], weight_dims[1], weight_dims[2]);
    let (b, _cin, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let (pl, _pr) = same_padding(k);
    let dyd = dy.data();
    let xd = x.data();
    let mut dw = vec![0.0f32; cout * cin * k];
    // Parallel over (out_channel, in_channel) filter rows. Each dw[co,ci,j]
    // accumulates one per-batch t-sum per bi, in ascending bi order — the
    // same per-element sequence as the serial bi-outermost nest, so results
    // are bitwise identical.
    par::par_for_rows(&mut dw, k, b * k * l, |row, dw_row| {
        let (co, ci) = (row / cin, row % cin);
        for bi in 0..b {
            let dy_off = (bi * cout + co) * l;
            let x_off = (bi * cin + ci) * l;
            for (j, dwj) in dw_row.iter_mut().enumerate() {
                let t_lo = pl.saturating_sub(j);
                let t_hi = (l + pl).saturating_sub(j).min(l);
                let mut acc = 0.0f32;
                for t in t_lo..t_hi {
                    acc += dyd[dy_off + t] * xd[x_off + t + j - pl];
                }
                *dwj += acc;
            }
        }
    });
    Tensor::from_vec(dw, &[cout, cin, k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Brute-force reference convolution for validation.
    fn conv_ref(x: &Tensor, w: &Tensor) -> Tensor {
        let (b, cin, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let (cout, _, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
        let (pl, _) = same_padding(k);
        let mut y = Tensor::zeros(&[b, cout, l]);
        for bi in 0..b {
            for co in 0..cout {
                for t in 0..l {
                    let mut acc = 0.0;
                    for ci in 0..cin {
                        for j in 0..k {
                            let s = t as isize + j as isize - pl as isize;
                            if s >= 0 && (s as usize) < l {
                                acc += x.get(&[bi, ci, s as usize]).unwrap()
                                    * w.get(&[co, ci, j]).unwrap();
                            }
                        }
                    }
                    y.set(&[bi, co, t], acc).unwrap();
                }
            }
        }
        y
    }

    #[test]
    fn same_padding_splits() {
        assert_eq!(same_padding(1), (0, 0));
        assert_eq!(same_padding(3), (1, 1));
        assert_eq!(same_padding(4), (1, 2));
        assert_eq!(same_padding(5), (2, 2));
        assert_eq!(same_padding(40), (19, 20));
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // k=1, single channel, weight 1.0 ⇒ conv is the identity.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]).unwrap();
        let w = Tensor::from_vec(vec![1.0], &[1, 1, 1]).unwrap();
        let y = conv1d_forward(&x, &w).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn forward_matches_reference_various_kernels() {
        let mut rng = StdRng::seed_from_u64(3);
        for &k in &[1usize, 2, 3, 5, 8] {
            let x = Tensor::randn(&mut rng, &[2, 3, 11], 1.0);
            let w = Tensor::randn(&mut rng, &[4, 3, k], 1.0);
            let fast = conv1d_forward(&x, &w).unwrap();
            let slow = conv_ref(&x, &w);
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                assert!((a - b).abs() < 1e-4, "k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn kernel_larger_than_input_is_ok() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(&mut rng, &[1, 1, 3], 1.0);
        let w = Tensor::randn(&mut rng, &[2, 1, 7], 1.0);
        let fast = conv1d_forward(&x, &w).unwrap();
        let slow = conv_ref(&x, &w);
        for (a, b) in fast.data().iter().zip(slow.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(&mut rng, &[1, 2, 6], 1.0);
        let w = Tensor::randn(&mut rng, &[3, 2, 3], 1.0);
        // loss = sum(conv(x, w)); dloss/dy = ones
        let dy = Tensor::ones(&[1, 3, 6]);
        let dx = conv1d_backward_input(&dy, &w, x.dims()).unwrap();
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (conv1d_forward(&xp, &w).unwrap().sum()
                - conv1d_forward(&xm, &w).unwrap().sum())
                / (2.0 * eps);
            assert!((dx.data()[i] - fd).abs() < 1e-2, "i={i}: {} vs {fd}", dx.data()[i]);
        }
    }

    #[test]
    fn backward_weight_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(13);
        let x = Tensor::randn(&mut rng, &[2, 2, 5], 1.0);
        let w = Tensor::randn(&mut rng, &[2, 2, 4], 1.0);
        let dy = Tensor::ones(&[2, 2, 5]);
        let dw = conv1d_backward_weight(&dy, &x, w.dims()).unwrap();
        let eps = 1e-3f32;
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = (conv1d_forward(&x, &wp).unwrap().sum()
                - conv1d_forward(&x, &wm).unwrap().sum())
                / (2.0 * eps);
            assert!((dw.data()[i] - fd).abs() < 1e-2, "i={i}: {} vs {fd}", dw.data()[i]);
        }
    }

    #[test]
    fn rejects_channel_mismatch() {
        let x = Tensor::zeros(&[1, 2, 4]);
        let w = Tensor::zeros(&[1, 3, 3]);
        assert!(conv1d_forward(&x, &w).is_err());
    }
}
