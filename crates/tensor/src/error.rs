//! Error type shared by all tensor operations.

use std::fmt;

/// Errors produced by tensor construction, shape algebra, autodiff, and
/// linear algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// The number of data elements does not match the requested shape.
    LengthMismatch {
        /// Number of elements supplied.
        len: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// An operation required a tensor of a specific rank.
    RankMismatch {
        /// The rank that was found.
        found: usize,
        /// The rank that was expected.
        expected: usize,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A tape [`Var`](crate::tape::Var) referred to a node that does not
    /// exist on the tape (e.g. a variable from another tape).
    InvalidVar {
        /// The offending node id.
        id: usize,
        /// The number of nodes on the tape.
        len: usize,
    },
    /// The matrix passed to Cholesky factorization was not positive definite.
    NotPositiveDefinite {
        /// The pivot index at which factorization failed.
        pivot: usize,
    },
    /// A numeric argument was outside its legal domain.
    InvalidArgument {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// An empty input was given to an operation that needs data.
    Empty {
        /// The operation that was attempted.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in {op}: {left:?} vs {right:?}")
            }
            Self::LengthMismatch { len, expected } => {
                write!(f, "data length {len} does not match shape volume {expected}")
            }
            Self::RankMismatch { found, expected, op } => {
                write!(f, "rank mismatch in {op}: found rank {found}, expected {expected}")
            }
            Self::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            Self::InvalidVar { id, len } => {
                write!(f, "tape variable {id} is invalid for tape of length {len}")
            }
            Self::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (failed at pivot {pivot})")
            }
            Self::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
            Self::Empty { op } => write!(f, "empty input to {op}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch { left: vec![2, 3], right: vec![3, 2], op: "add" };
        let s = e.to_string();
        assert!(s.contains("add"));
        assert!(s.contains("[2, 3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
