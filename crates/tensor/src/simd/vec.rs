//! The lane abstraction shared by every SIMD backend.
//!
//! [`SimdF32`] is a minimal portable-vector trait: just enough single-
//! rounding IEEE-754 operations, bit manipulation, and lane plumbing to
//! express the kernels in [`super::kernels`] once, generically, and have
//! each backend (scalar / SSE2 / AVX2+FMA) instantiate them with its own
//! register type. [`ScalarVec`] is the 1-lane instantiation: it mirrors the
//! x86 instruction semantics (`minps`/`maxps` operand ordering on NaN,
//! full-width compare masks, bitwise selects) exactly, so a generic kernel
//! run with `ScalarVec` is the *oracle* — bit-for-bit the reference the
//! vector backends are tested against.
//!
//! Every method is `unsafe fn`: the x86 implementations lower to
//! `core::arch` intrinsics that are only defined when the matching CPU
//! feature is present. The safety contract is uniform — *the caller must
//! only instantiate a backend's vector type when
//! [`super::cpu_supports`](super::cpu_supports) reports the backend
//! available* — and is discharged once, in the dispatchers of
//! [`super::kernels`], which select a vector type strictly according to the
//! resolved [`super::SimdBackend`].

/// A vector of `LANES` packed `f32` values.
///
/// Semantic fine print (all mirrored exactly by [`ScalarVec`]):
///
/// * [`min`](SimdF32::min) / [`max`](SimdF32::max) follow `minps`/`maxps`:
///   `a.min(b)` is `if a < b { a } else { b }` per lane, so a NaN in `a`
///   yields `b` (and a NaN in `b` yields `b`). This asymmetry is what the
///   transcendental kernels rely on for NaN handling.
/// * [`lt`](SimdF32::lt) and [`is_nan`](SimdF32::is_nan) produce full-width
///   masks (all-ones or all-zeros per lane) suitable for
///   [`select`](SimdF32::select), which is a pure bitwise blend.
/// * [`mul_add_fast`](SimdF32::mul_add_fast) is the *only* operation whose
///   rounding differs between backends: fused (single rounding) when
///   [`FUSED`](SimdF32::FUSED) is `true` (AVX2+FMA), an ordinary
///   multiply-then-add otherwise. Kernels that promise cross-backend
///   bitwise identity must not use it.
pub(super) trait SimdF32: Copy {
    /// Number of `f32` lanes.
    const LANES: usize;
    /// Whether [`mul_add_fast`](SimdF32::mul_add_fast) fuses (single
    /// rounding). Scalar tails of fused kernels consult this to match the
    /// vector body bit-for-bit via [`scalar_madd`].
    const FUSED: bool;

    /// Broadcasts `v` to every lane.
    unsafe fn splat(v: f32) -> Self;
    /// Loads `LANES` consecutive values from the front of `src`
    /// (unaligned). `src.len() >= LANES` required.
    unsafe fn load(src: &[f32]) -> Self;
    /// Stores `LANES` consecutive values to the front of `dst`
    /// (unaligned). `dst.len() >= LANES` required.
    unsafe fn store(self, dst: &mut [f32]);
    /// All lanes `+0.0`.
    unsafe fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Lane-wise `self + o` (single rounding).
    unsafe fn add(self, o: Self) -> Self;
    /// Lane-wise `self - o` (single rounding).
    unsafe fn sub(self, o: Self) -> Self;
    /// Lane-wise `self * o` (single rounding).
    unsafe fn mul(self, o: Self) -> Self;
    /// Lane-wise `self / o` (single rounding).
    unsafe fn div(self, o: Self) -> Self;
    /// Lane-wise `minps` semantics: `if self < o { self } else { o }`.
    unsafe fn min(self, o: Self) -> Self;
    /// Lane-wise `maxps` semantics: `if self > o { self } else { o }`.
    unsafe fn max(self, o: Self) -> Self;
    /// Lane-wise `self * b + acc`; fused iff [`FUSED`](SimdF32::FUSED).
    unsafe fn mul_add_fast(self, b: Self, acc: Self) -> Self;

    /// Lane-wise bitwise AND.
    unsafe fn and_bits(self, o: Self) -> Self;
    /// Lane-wise bitwise OR.
    unsafe fn or_bits(self, o: Self) -> Self;
    /// Lane-wise bitwise XOR.
    unsafe fn xor_bits(self, o: Self) -> Self;
    /// Lane-wise `(!self) & o` (`andnps` semantics).
    unsafe fn andnot_bits(self, o: Self) -> Self;
    /// Full-width mask of `self < o` (ordered compare: NaN lanes give 0).
    unsafe fn lt(self, o: Self) -> Self;
    /// Full-width mask of lanes that are NaN (`cmpunord(self, self)`).
    unsafe fn is_nan(self) -> Self;
    /// Bitwise blend: lanes of `a` where `mask` is all-ones, else `b`.
    /// Masks must be full-width (from [`lt`](SimdF32::lt) /
    /// [`is_nan`](SimdF32::is_nan)).
    unsafe fn select(mask: Self, a: Self, b: Self) -> Self {
        mask.and_bits(a).or_bits(mask.andnot_bits(b))
    }

    /// Given `t = 2²³·1.5 + n` (the round-to-nearest-even magic form, `n`
    /// an integer in `[-126, 127]`), returns `2ⁿ` per lane by integer bit
    /// manipulation of the exponent field. The core scaling step of
    /// [`super::kernels::exp_v`].
    unsafe fn exp2_scale(self) -> Self;

    /// Horizontal sum with the *canonical pairing tree* of the striped
    /// reductions (see [`super::kernels`]): for 4 lanes `[q0..q3]` the
    /// result is `(q0+q2) + (q1+q3)`; for 8 lanes the 128-bit halves are
    /// added first (`s_i = q_i + q_{i+4}`) and the 4-lane rule applied to
    /// `s`. Single-lane vectors return their value. Every backend reduces
    /// 8 stripes through the identical tree, which is what makes
    /// [`super::reduce_sum`] bitwise backend-invariant.
    unsafe fn hsum(self) -> f32;
}

/// The 1-lane oracle backend: plain `f32` arithmetic with the exact x86
/// vector-instruction semantics (see [`SimdF32`]).
#[derive(Copy, Clone, Debug)]
pub(super) struct ScalarVec(pub f32);

/// All-ones / all-zeros scalar masks, as bit patterns.
const MASK_TRUE: u32 = u32::MAX;

impl SimdF32 for ScalarVec {
    const LANES: usize = 1;
    const FUSED: bool = false;

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        ScalarVec(v)
    }
    #[inline(always)]
    unsafe fn load(src: &[f32]) -> Self {
        debug_assert!(!src.is_empty());
        ScalarVec(src[0])
    }
    #[inline(always)]
    unsafe fn store(self, dst: &mut [f32]) {
        debug_assert!(!dst.is_empty());
        dst[0] = self.0;
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        ScalarVec(self.0 + o.0)
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        ScalarVec(self.0 - o.0)
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        ScalarVec(self.0 * o.0)
    }
    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        ScalarVec(self.0 / o.0)
    }
    #[inline(always)]
    unsafe fn min(self, o: Self) -> Self {
        // `minps` semantics, NOT `f32::min`: NaN in either operand → o.
        if self.0 < o.0 {
            self
        } else {
            o
        }
    }
    #[inline(always)]
    unsafe fn max(self, o: Self) -> Self {
        if self.0 > o.0 {
            self
        } else {
            o
        }
    }
    #[inline(always)]
    unsafe fn mul_add_fast(self, b: Self, acc: Self) -> Self {
        ScalarVec(self.0 * b.0 + acc.0)
    }
    #[inline(always)]
    unsafe fn and_bits(self, o: Self) -> Self {
        ScalarVec(f32::from_bits(self.0.to_bits() & o.0.to_bits()))
    }
    #[inline(always)]
    unsafe fn or_bits(self, o: Self) -> Self {
        ScalarVec(f32::from_bits(self.0.to_bits() | o.0.to_bits()))
    }
    #[inline(always)]
    unsafe fn xor_bits(self, o: Self) -> Self {
        ScalarVec(f32::from_bits(self.0.to_bits() ^ o.0.to_bits()))
    }
    #[inline(always)]
    unsafe fn andnot_bits(self, o: Self) -> Self {
        ScalarVec(f32::from_bits(!self.0.to_bits() & o.0.to_bits()))
    }
    #[inline(always)]
    unsafe fn lt(self, o: Self) -> Self {
        ScalarVec(f32::from_bits(if self.0 < o.0 { MASK_TRUE } else { 0 }))
    }
    #[inline(always)]
    unsafe fn is_nan(self) -> Self {
        ScalarVec(f32::from_bits(if self.0.is_nan() { MASK_TRUE } else { 0 }))
    }
    #[inline(always)]
    unsafe fn exp2_scale(self) -> Self {
        // t.bits = 0x4B40_0000 + n for t = 1.5·2²³ + n, |n| ≤ 2²². Shift
        // the biased exponent `n + 127` into place.
        let n = (self.0.to_bits() as i32).wrapping_sub(0x4B40_0000);
        ScalarVec(f32::from_bits(((n + 127) as u32) << 23))
    }
    #[inline(always)]
    unsafe fn hsum(self) -> f32 {
        self.0
    }
}

/// `a * b + acc` with the rounding of `V::mul_add_fast`: the scalar-tail
/// companion that keeps remainder lanes bit-identical to the vector body.
#[inline(always)]
pub(super) fn scalar_madd<V: SimdF32>(a: f32, b: f32, acc: f32) -> f32 {
    if V::FUSED {
        a.mul_add(b, acc)
    } else {
        a * b + acc
    }
}
