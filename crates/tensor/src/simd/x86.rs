//! x86-64 implementations of [`SimdF32`]: [`F32x4`] (SSE2) and [`F32x8`]
//! (AVX2 + FMA).
//!
//! Both are thin `#[repr(transparent)]` wrappers over the architectural
//! register types with `#[inline(always)]` methods, so when a generic
//! kernel from [`super::kernels`] is instantiated inside a
//! `#[target_feature]`-annotated dispatcher the whole call tree collapses
//! into straight-line vector code.
//!
//! # Safety
//!
//! Every method lowers to `core::arch::x86_64` intrinsics. SSE2 is part of
//! the x86-64 baseline, so [`F32x4`] is unconditionally sound on this
//! architecture; [`F32x8`] requires AVX2 and FMA and must only be
//! instantiated after [`super::cpu_supports`](super::cpu_supports) has
//! confirmed them (the dispatchers in [`super::kernels`] are the single
//! place that does this).

use core::arch::x86_64::*;

use super::vec::SimdF32;

/// Four `f32` lanes in an `xmm` register (SSE2 baseline; no FMA).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub(super) struct F32x4(__m128);

/// Eight `f32` lanes in a `ymm` register (AVX2 + FMA).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub(super) struct F32x8(__m256);

impl SimdF32 for F32x4 {
    const LANES: usize = 4;
    const FUSED: bool = false;

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        F32x4(_mm_set1_ps(v))
    }
    #[inline(always)]
    unsafe fn load(src: &[f32]) -> Self {
        debug_assert!(src.len() >= 4);
        F32x4(_mm_loadu_ps(src.as_ptr()))
    }
    #[inline(always)]
    unsafe fn store(self, dst: &mut [f32]) {
        debug_assert!(dst.len() >= 4);
        _mm_storeu_ps(dst.as_mut_ptr(), self.0)
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        F32x4(_mm_add_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        F32x4(_mm_sub_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        F32x4(_mm_mul_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        F32x4(_mm_div_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn min(self, o: Self) -> Self {
        F32x4(_mm_min_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn max(self, o: Self) -> Self {
        F32x4(_mm_max_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn mul_add_fast(self, b: Self, acc: Self) -> Self {
        // SSE2 has no FMA: two roundings, matching the scalar oracle.
        F32x4(_mm_add_ps(_mm_mul_ps(self.0, b.0), acc.0))
    }
    #[inline(always)]
    unsafe fn and_bits(self, o: Self) -> Self {
        F32x4(_mm_and_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn or_bits(self, o: Self) -> Self {
        F32x4(_mm_or_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn xor_bits(self, o: Self) -> Self {
        F32x4(_mm_xor_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn andnot_bits(self, o: Self) -> Self {
        F32x4(_mm_andnot_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn lt(self, o: Self) -> Self {
        F32x4(_mm_cmplt_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn is_nan(self) -> Self {
        F32x4(_mm_cmpunord_ps(self.0, self.0))
    }
    #[inline(always)]
    unsafe fn exp2_scale(self) -> Self {
        let n = _mm_sub_epi32(_mm_castps_si128(self.0), _mm_set1_epi32(0x4B40_0000));
        F32x4(_mm_castsi128_ps(_mm_slli_epi32::<23>(_mm_add_epi32(n, _mm_set1_epi32(127)))))
    }
    #[inline(always)]
    unsafe fn hsum(self) -> f32 {
        // Canonical tree: (q0+q2) + (q1+q3).
        let hi = _mm_movehl_ps(self.0, self.0); // [q2, q3, q2, q3]
        let t = _mm_add_ps(self.0, hi); // [q0+q2, q1+q3, ..]
        let t1 = _mm_shuffle_ps::<0b01>(t, t); // lane0 = q1+q3
        _mm_cvtss_f32(_mm_add_ss(t, t1))
    }
}

impl SimdF32 for F32x8 {
    const LANES: usize = 8;
    const FUSED: bool = true;

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        F32x8(_mm256_set1_ps(v))
    }
    #[inline(always)]
    unsafe fn load(src: &[f32]) -> Self {
        debug_assert!(src.len() >= 8);
        F32x8(_mm256_loadu_ps(src.as_ptr()))
    }
    #[inline(always)]
    unsafe fn store(self, dst: &mut [f32]) {
        debug_assert!(dst.len() >= 8);
        _mm256_storeu_ps(dst.as_mut_ptr(), self.0)
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        F32x8(_mm256_add_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        F32x8(_mm256_sub_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        F32x8(_mm256_mul_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        F32x8(_mm256_div_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn min(self, o: Self) -> Self {
        F32x8(_mm256_min_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn max(self, o: Self) -> Self {
        F32x8(_mm256_max_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn mul_add_fast(self, b: Self, acc: Self) -> Self {
        // Fused: a·b+acc in a single rounding. The one place the AVX2
        // backend's bits diverge from the SSE2/scalar oracle.
        F32x8(_mm256_fmadd_ps(self.0, b.0, acc.0))
    }
    #[inline(always)]
    unsafe fn and_bits(self, o: Self) -> Self {
        F32x8(_mm256_and_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn or_bits(self, o: Self) -> Self {
        F32x8(_mm256_or_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn xor_bits(self, o: Self) -> Self {
        F32x8(_mm256_xor_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn andnot_bits(self, o: Self) -> Self {
        F32x8(_mm256_andnot_ps(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn lt(self, o: Self) -> Self {
        F32x8(_mm256_cmp_ps::<_CMP_LT_OQ>(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn is_nan(self) -> Self {
        F32x8(_mm256_cmp_ps::<_CMP_UNORD_Q>(self.0, self.0))
    }
    #[inline(always)]
    unsafe fn exp2_scale(self) -> Self {
        let n = _mm256_sub_epi32(_mm256_castps_si256(self.0), _mm256_set1_epi32(0x4B40_0000));
        F32x8(_mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            n,
            _mm256_set1_epi32(127),
        ))))
    }
    #[inline(always)]
    unsafe fn hsum(self) -> f32 {
        // Halves first (s_i = q_i + q_{i+4}), then the 4-lane tree — the
        // same canonical pairing the scalar and SSE2 reductions use.
        let s = _mm_add_ps(_mm256_castps256_ps128(self.0), _mm256_extractf128_ps::<1>(self.0));
        F32x4(s).hsum()
    }
}
