//! Runtime-dispatched SIMD backends for the f32 kernels.
//!
//! This module is the single point where the crate's inner loops meet the
//! instruction set. It provides a small portable-vector abstraction over
//! `core::arch` x86-64 — AVX2+FMA primary, SSE2 fallback, and a scalar
//! oracle that is always available — plus one-time runtime feature
//! detection and an explicit override. Every hot kernel (the GEMM panel in
//! [`crate::linalg`], the convolution inner loops in [`crate::conv`], the
//! element-wise tensor ops, and the `vec_exp`/`vec_tanh`/`vec_sigmoid`
//! transcendentals behind the softmax/activation family) is written once,
//! generically, and lowered onto whichever backend is selected.
//!
//! # Backend selection
//!
//! The active backend resolves once, then is cached process-wide:
//!
//! 1. [`set_simd_backend`] — explicit programmatic override, wins over
//!    everything, takes effect for subsequent kernel calls;
//! 2. the `LIGHTTS_SIMD` environment variable (`avx2` | `sse2` |
//!    `scalar`, case-insensitive; unknown values are ignored);
//! 3. runtime CPU feature detection (AVX2+FMA → [`SimdBackend::Avx2`],
//!    otherwise SSE2 on x86-64, otherwise scalar).
//!
//! A request for an unsupported backend is clamped down to the best
//! supported one (AVX2 → SSE2 → scalar), so forcing `LIGHTTS_SIMD=avx2` on
//! an SSE2-only host is safe. On non-x86-64 targets every request resolves
//! to scalar. [`cpu_supports`] reports what the host can actually run.
//!
//! # Determinism
//!
//! `docs/NUMERICS.md` states the full contract; in brief, three classes:
//!
//! * **Backend-invariant, element-wise**: [`add_assign`], [`sub_assign`],
//!   [`mul_assign`], [`scale`], [`sub_scalar`], [`axpy`], [`relu`],
//!   [`vec_exp`], [`vec_tanh`], [`vec_sigmoid`], [`sum_exp`],
//!   [`log_softmax_row`] — single-rounding ops (or a fixed polynomial
//!   algorithm) applied per element, so scalar, SSE2, and AVX2 produce
//!   identical bits for every shape, including remainder lanes.
//! * **Backend-invariant, striped**: [`reduce_sum`], [`reduce_sum_sq`],
//!   [`dot`] — eight fixed stripes folded by one canonical pairing tree on
//!   every backend (degenerating to a plain serial sum for `n < 8`).
//! * **Backend-sensitive (FMA)**: [`gemm_row`], [`gemm_block4`],
//!   [`axpy_madd`] — scalar and SSE2 are bitwise identical (multiply then
//!   add, two roundings); AVX2 fuses each multiply-add into one rounding,
//!   producing different, but equally deterministic, bits: for a fixed
//!   backend the result is independent of thread count, batch fusion, and
//!   call context, exactly as before.
//! * **Integer-exact (quantized)**: [`qdot_i8`], [`qgemm_i8t`] — i8×i8
//!   products accumulated in i32. Two's-complement addition is
//!   associative, so all three backends are bitwise identical for every
//!   input and every shape, remainder lanes included — the strongest
//!   class (see "Quantized inference" in `docs/NUMERICS.md`).
//!
//! Each public kernel has a `*_with(backend, …)` twin that runs under an
//! explicit (clamped) backend without consulting or mutating process-wide
//! state — that is what the `simd_equivalence` suite uses to compare
//! backends concurrently from many test threads.
#![allow(unsafe_code)]
// SAFETY AUDIT: this module (with its `vec`/`x86`/`kernels` submodules) is
// one of two `unsafe` islands in the crate (the other is `par`). All
// `unsafe` here is `core::arch` intrinsic plumbing: the vector types in
// `x86.rs` wrap `__m128`/`__m256` intrinsics, and `kernels.rs` instantiates
// the generic loop bodies behind `#[target_feature]` wrappers. Soundness
// rests on one invariant, enforced in exactly one place: `effective()`
// below never returns a vector backend unless `cpu_supports` confirmed the
// CPU features during detection (requests are clamped down, never up).
// Slice accesses in the kernels are all bounds-checked or
// `debug_assert`-guarded against lengths the loops themselves maintain.

mod kernels;
mod qkernels;
mod vec;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use qkernels::{qdot_i8, qdot_i8_with, qgemm_i8t, qgemm_i8t_with, QDOT_MAX_K};

pub use kernels::{
    add_assign, add_assign_with, axpy, axpy_madd, axpy_madd_with, axpy_with, dot, dot_with,
    gemm_block4, gemm_block4_with, gemm_row, gemm_row_with, mul_assign, mul_assign_with,
    reduce_sum, reduce_sum_sq, reduce_sum_sq_with, reduce_sum_with, relu, relu_with, scale,
    scale_with, sub_assign, sub_assign_with, sub_scalar, sub_scalar_with, sum_exp, sum_exp_with,
    vec_exp, vec_exp_with, vec_sigmoid, vec_sigmoid_with, vec_tanh, vec_tanh_with,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// A SIMD instruction-set backend for the f32 kernels.
///
/// Ordering is by capability: `Scalar < Sse2 < Avx2`. Unsupported requests
/// clamp down this ladder (see [`set_simd_backend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdBackend {
    /// Plain `f32` arithmetic — the oracle every vector path is tested
    /// against. Always available.
    Scalar,
    /// SSE2 `xmm` vectors (4 × f32), no FMA — part of the x86-64 baseline.
    /// Bitwise identical to [`SimdBackend::Scalar`] for every kernel.
    Sse2,
    /// AVX2 `ymm` vectors (8 × f32) with FMA. The GEMM/conv family fuses
    /// multiply-adds, so its bits differ (deterministically) from the
    /// scalar/SSE2 oracle; everything else stays bitwise identical.
    Avx2,
}

impl SimdBackend {
    /// Stable lower-case name (`"scalar"` / `"sse2"` / `"avx2"`), as
    /// accepted by `LIGHTTS_SIMD` and recorded in bench output.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Sse2 => "sse2",
            SimdBackend::Avx2 => "avx2",
        }
    }

    fn from_u8(v: u8) -> SimdBackend {
        match v {
            3 => SimdBackend::Avx2,
            2 => SimdBackend::Sse2,
            _ => SimdBackend::Scalar,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            SimdBackend::Avx2 => 3,
            SimdBackend::Sse2 => 2,
            SimdBackend::Scalar => 1,
        }
    }
}

/// Resolved backend, encoded via `as_u8` (0 = not yet resolved).
static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Whether the running CPU can execute `bk`.
///
/// [`SimdBackend::Scalar`] is always supported; on x86-64 so is
/// [`SimdBackend::Sse2`]; [`SimdBackend::Avx2`] additionally requires the
/// AVX2 *and* FMA feature flags.
pub fn cpu_supports(bk: SimdBackend) -> bool {
    match bk {
        SimdBackend::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Sse2 => true,
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// Clamps a requested backend down to the best supported one.
pub(crate) fn effective(bk: SimdBackend) -> SimdBackend {
    if cpu_supports(bk) {
        bk
    } else if bk == SimdBackend::Avx2 && cpu_supports(SimdBackend::Sse2) {
        SimdBackend::Sse2
    } else {
        SimdBackend::Scalar
    }
}

fn detect() -> SimdBackend {
    if let Ok(v) = std::env::var("LIGHTTS_SIMD") {
        match v.to_ascii_lowercase().as_str() {
            "scalar" => return SimdBackend::Scalar,
            "sse2" => return effective(SimdBackend::Sse2),
            "avx2" => return effective(SimdBackend::Avx2),
            // Unknown values fall through to native detection.
            _ => {}
        }
    }
    effective(SimdBackend::Avx2)
}

/// The process-wide SIMD backend all dispatched kernels currently use.
///
/// Resolved lazily on first use from [`set_simd_backend`] /
/// `LIGHTTS_SIMD` / CPU detection, in that priority order, then cached.
pub fn backend() -> SimdBackend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => {
            let bk = detect();
            // A concurrent `set_simd_backend` may win the race; re-read so
            // every caller observes one consistent resolution.
            let _ = BACKEND.compare_exchange(0, bk.as_u8(), Ordering::Relaxed, Ordering::Relaxed);
            SimdBackend::from_u8(BACKEND.load(Ordering::Relaxed))
        }
        v => SimdBackend::from_u8(v),
    }
}

/// Overrides the process-wide SIMD backend for all subsequent kernel
/// calls, clamping to what the CPU supports (AVX2 → SSE2 → scalar).
/// Returns the backend actually installed.
///
/// This is a process-wide toggle intended for startup configuration and
/// benchmarks; concurrent kernels pick up the change at their next
/// dispatch. Code that needs a specific backend without touching global
/// state (e.g. equivalence tests running on many threads) should call the
/// `*_with` kernel variants instead.
pub fn set_simd_backend(bk: SimdBackend) -> SimdBackend {
    let e = effective(bk);
    BACKEND.store(e.as_u8(), Ordering::Relaxed);
    e
}

/// In-place log-softmax of one row: `row ← row − max(row) − ln Σ exp(row −
/// max(row))`, with the exponentials from the [`vec_exp`] kernel and both
/// folds (max, sum) running strictly left-to-right in scalar order.
///
/// Bitwise backend-invariant, and the *single* softmax algorithm of the
/// workspace: `Tensor::log_softmax_rows`, `Tensor::softmax_rows`, and the
/// serving path's `predict_proba_into` all reduce to this row routine (plus
/// [`vec_exp`] for the probability variants), which is what keeps batched
/// serving, per-sample serving, and training losses bitwise consistent
/// with each other.
pub fn log_softmax_row(row: &mut [f32]) {
    log_softmax_row_with(backend(), row);
}

/// [`log_softmax_row`] under an explicit backend (clamped to CPU support).
pub fn log_softmax_row_with(bk: SimdBackend, row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    sub_scalar_with(bk, row, mx);
    let lse = sum_exp_with(bk, row).ln();
    sub_scalar_with(bk, row, lse);
}
