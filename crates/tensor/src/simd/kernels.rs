//! Generic kernel bodies and the per-backend dispatchers.
//!
//! Every kernel is written once, generically over [`SimdF32`], then
//! instantiated three times by the `dispatch_kernel!` macro:
//!
//! * **scalar** — [`ScalarVec`], plain `f32` arithmetic, no `unsafe`
//!   preconditions. This instantiation *is* the oracle: the historical
//!   scalar loops of `linalg.rs`/`conv.rs` in trait clothing, bit-for-bit.
//! * **sse2** — [`F32x4`], part of the x86-64 baseline.
//! * **avx2** — [`F32x8`], guarded by runtime detection, wrapped in
//!   `#[target_feature(enable = "avx2,fma")]` so the `#[inline(always)]`
//!   generic body compiles with the vector ISA enabled.
//!
//! Determinism contract (see `docs/NUMERICS.md` for the full statement):
//!
//! * Element-wise kernels ([`add_assign`], [`sub_assign`], [`mul_assign`],
//!   [`scale`], [`sub_scalar`], [`axpy`], [`relu`]) and the transcendentals
//!   ([`vec_exp`], [`vec_tanh`], [`vec_sigmoid`], [`sum_exp`]) perform the
//!   identical single-rounding operation sequence per element on every
//!   backend ⇒ **bitwise backend-invariant**.
//! * The striped reductions ([`reduce_sum`], [`reduce_sum_sq`], [`dot`])
//!   accumulate into 8 fixed stripes combined by one canonical pairing
//!   tree ⇒ **bitwise backend-invariant**, though *not* equal to a plain
//!   left-to-right sum (for `n < 8` the stripe tree degenerates to exactly
//!   left-to-right).
//! * The GEMM family ([`gemm_row`], [`gemm_block4`], [`axpy_madd`]) uses
//!   [`SimdF32::mul_add_fast`]: scalar ≡ SSE2 bitwise; AVX2 fuses
//!   multiply-add (one rounding instead of two) and therefore produces
//!   different — but equally deterministic — bits.

use super::vec::{scalar_madd, ScalarVec, SimdF32};
#[cfg(target_arch = "x86_64")]
use super::x86::{F32x4, F32x8};
use super::SimdBackend;

/// Number of consecutive `k`-indices per cache block in [`gemm_row`].
/// Keeps the touched rows of `b` resident in L1/L2 while a block is live.
/// Blocking only reorders loop *traversal*, never the per-element
/// accumulation sequence, so results are independent of this value.
pub(crate) const K_BLOCK: usize = 256;

/// Stripe count of the canonical striped reductions. Eight stripes is one
/// AVX2 register, two SSE2 registers, or eight scalar accumulators — every
/// backend walks the same stripes and folds them with the same pairing
/// tree ([`SimdF32::hsum`]), so the reduced value is backend-invariant.
pub(crate) const REDUCE_STRIPES: usize = 8;

// ---------------------------------------------------------------------------
// Element-wise kernels (exact single-rounding ops ⇒ backend-invariant bits)
// ---------------------------------------------------------------------------

macro_rules! elementwise_binary {
    ($name:ident, |$x:ident, $y:ident| $vec:expr, |$a:ident, $b:ident| $scl:expr) => {
        #[inline(always)]
        unsafe fn $name<V: SimdF32>(out: &mut [f32], rhs: &[f32]) {
            debug_assert_eq!(out.len(), rhs.len());
            let n = out.len();
            let mut i = 0;
            while i + V::LANES <= n {
                let $x = V::load(&out[i..]);
                let $y = V::load(&rhs[i..]);
                ($vec).store(&mut out[i..]);
                i += V::LANES;
            }
            while i < n {
                let $a = out[i];
                let $b = rhs[i];
                out[i] = $scl;
                i += 1;
            }
        }
    };
}

elementwise_binary!(add_assign_g, |x, y| x.add(y), |a, b| a + b);
elementwise_binary!(sub_assign_g, |x, y| x.sub(y), |a, b| a - b);
elementwise_binary!(mul_assign_g, |x, y| x.mul(y), |a, b| a * b);

#[inline(always)]
unsafe fn scale_g<V: SimdF32>(out: &mut [f32], s: f32) {
    let n = out.len();
    let vs = V::splat(s);
    let mut i = 0;
    while i + V::LANES <= n {
        V::load(&out[i..]).mul(vs).store(&mut out[i..]);
        i += V::LANES;
    }
    while i < n {
        out[i] *= s;
        i += 1;
    }
}

#[inline(always)]
unsafe fn sub_scalar_g<V: SimdF32>(out: &mut [f32], s: f32) {
    let n = out.len();
    let vs = V::splat(s);
    let mut i = 0;
    while i + V::LANES <= n {
        V::load(&out[i..]).sub(vs).store(&mut out[i..]);
        i += V::LANES;
    }
    while i < n {
        out[i] -= s;
        i += 1;
    }
}

/// `out += rhs · s`, **unfused** on every backend (multiply then add, two
/// roundings) — the optimizer/accumulator axpy, backend-invariant bits.
#[inline(always)]
unsafe fn axpy_g<V: SimdF32>(out: &mut [f32], rhs: &[f32], s: f32) {
    debug_assert_eq!(out.len(), rhs.len());
    let n = out.len();
    let vs = V::splat(s);
    let mut i = 0;
    while i + V::LANES <= n {
        V::load(&out[i..]).add(V::load(&rhs[i..]).mul(vs)).store(&mut out[i..]);
        i += V::LANES;
    }
    while i < n {
        out[i] += rhs[i] * s;
        i += 1;
    }
}

/// `out += rhs · s` with [`SimdF32::mul_add_fast`] — the convolution /
/// GEMM-family axpy (fused on AVX2, hence backend-sensitive bits).
#[inline(always)]
unsafe fn axpy_madd_g<V: SimdF32>(out: &mut [f32], rhs: &[f32], s: f32) {
    debug_assert_eq!(out.len(), rhs.len());
    let n = out.len();
    let vs = V::splat(s);
    let mut i = 0;
    while i + V::LANES <= n {
        vs.mul_add_fast(V::load(&rhs[i..]), V::load(&out[i..])).store(&mut out[i..]);
        i += V::LANES;
    }
    while i < n {
        out[i] = scalar_madd::<V>(rhs[i], s, out[i]);
        i += 1;
    }
}

/// `max(x, +0.0)` with `maxps` operand order: NaN and `-0.0` both map to
/// `+0.0`, matching the historical `f32::max(x, 0.0)` bit-for-bit.
#[inline(always)]
unsafe fn relu_g<V: SimdF32>(out: &mut [f32]) {
    let n = out.len();
    let z = V::zero();
    let mut i = 0;
    while i + V::LANES <= n {
        V::load(&out[i..]).max(z).store(&mut out[i..]);
        i += V::LANES;
    }
    while i < n {
        let x = out[i];
        out[i] = if x > 0.0 { x } else { 0.0 };
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Transcendentals (fixed polynomial algorithm ⇒ backend-invariant bits)
// ---------------------------------------------------------------------------

/// Input clamp range of [`exp_v`]. The lower bound keeps `2ⁿ` normal
/// (`n ≥ -126`); the upper bound keeps `n ≤ 127`, so the kernel *saturates*
/// at `exp(88.02) ≈ 1.68e38` instead of overflowing to `+inf` (softmax and
/// sigmoid only ever feed it non-positive or moderate inputs).
const EXP_LO: f32 = -87.336_54;
/// See [`EXP_LO`].
const EXP_HI: f32 = 88.02;
/// `1.5 · 2²³`: adding it rounds `x·log2(e)` to the nearest integer
/// (ties-to-even) in the low mantissa bits.
const EXP_MAGIC: f32 = 12_582_912.0;
/// High part of `ln 2` (exact in `f32`).
const LN2_HI: f32 = 0.693_359_375;
/// Low part: `LN2_HI + LN2_LO = ln 2` to extended precision.
const LN2_LO: f32 = -2.121_944_4e-4;
/// Degree-5 minimax polynomial for `exp(r) - 1 - r` on `|r| ≤ ln2/2`
/// (Cephes `expf` coefficients), applied Horner-style, highest first.
const EXP_P: [f32; 6] =
    [1.987_569_2e-4, 1.398_199_9e-3, 8.333_452e-3, 4.166_579_6e-2, 1.666_666_5e-1, 5.000_000_3e-1];

/// One vector of `exp(x)`: range reduction `x = n·ln2 + r`, polynomial on
/// `r`, exponent scaling by integer bit manipulation. Every step is a
/// single-rounding op (no FMA), so all backends produce identical bits.
/// NaN lanes pass through unchanged; out-of-range lanes saturate (see
/// [`EXP_LO`]).
#[inline(always)]
unsafe fn exp_v<V: SimdF32>(x: V) -> V {
    let nan = x.is_nan();
    // maxps(x, LO): NaN lanes become LO here and are blended back at the end.
    let xc = x.max(V::splat(EXP_LO)).min(V::splat(EXP_HI));
    // n = round_to_nearest_even(x / ln2) via the magic-number trick; `t`
    // keeps the integer in its low mantissa bits for `exp2_scale`.
    let t = xc.mul(V::splat(std::f32::consts::LOG2_E)).add(V::splat(EXP_MAGIC));
    let n = t.sub(V::splat(EXP_MAGIC));
    let pow2n = t.exp2_scale();
    // r = x - n·ln2 in two pieces, keeping r exact to ~f64 precision.
    let r = xc.sub(n.mul(V::splat(LN2_HI))).sub(n.mul(V::splat(LN2_LO)));
    let mut y = V::splat(EXP_P[0]);
    y = y.mul(r).add(V::splat(EXP_P[1]));
    y = y.mul(r).add(V::splat(EXP_P[2]));
    y = y.mul(r).add(V::splat(EXP_P[3]));
    y = y.mul(r).add(V::splat(EXP_P[4]));
    y = y.mul(r).add(V::splat(EXP_P[5]));
    let z = r.mul(r);
    let e = y.mul(z).add(r).add(V::splat(1.0));
    V::select(nan, x, e.mul(pow2n))
}

/// `|x|` threshold between the small-`x` polynomial and the `exp`-based
/// branch of [`tanh_v`] (Cephes `tanhf` crossover).
const TANH_CUTOFF: f32 = 0.625;
/// Odd minimax polynomial for `tanh(x)/x - 1` in `z = x²`, `|x| < 0.625`.
const TANH_P: [f32; 5] =
    [-5.704_988_7e-3, 2.063_908_9e-2, -5.373_971_6e-2, 1.333_144_2e-1, -3.333_328_2e-1];
/// Sign-bit mask (`-0.0`).
const SIGN_BIT: f32 = -0.0;
/// All-but-sign mask for `|x|`.
const ABS_MASK: f32 = f32::from_bits(0x7FFF_FFFF);

/// One vector of `tanh(x)`: branch-free blend of the small-`x` polynomial
/// (`x + x·z·P(z)`, avoiding cancellation near 0) and
/// `sign(x)·(1 − 2/(e^{2|x|} + 1))`. Single-rounding ops only ⇒
/// backend-invariant bits. NaN propagates; `±inf → ±1.0` exactly.
#[inline(always)]
unsafe fn tanh_v<V: SimdF32>(x: V) -> V {
    let ax = x.and_bits(V::splat(ABS_MASK));
    // Small branch.
    let z = x.mul(x);
    let mut p = V::splat(TANH_P[0]);
    p = p.mul(z).add(V::splat(TANH_P[1]));
    p = p.mul(z).add(V::splat(TANH_P[2]));
    p = p.mul(z).add(V::splat(TANH_P[3]));
    p = p.mul(z).add(V::splat(TANH_P[4]));
    let small = x.add(x.mul(z).mul(p));
    // Large branch (also covers NaN: exp_v passes it through).
    let e = exp_v(ax.add(ax));
    let big_abs = V::splat(1.0).sub(V::splat(2.0).div(e.add(V::splat(1.0))));
    let big = big_abs.or_bits(x.and_bits(V::splat(SIGN_BIT)));
    // NaN lanes compare false ⇒ take the big branch ⇒ NaN propagates.
    V::select(ax.lt(V::splat(TANH_CUTOFF)), small, big)
}

/// One vector of `σ(x) = 1/(1 + exp(−x))`. Single-rounding ops only ⇒
/// backend-invariant bits; the clamped [`exp_v`] makes the tails saturate
/// to exactly `0.0`/`1.0` without special cases.
#[inline(always)]
unsafe fn sigmoid_v<V: SimdF32>(x: V) -> V {
    let e = exp_v(x.xor_bits(V::splat(SIGN_BIT)));
    let one = V::splat(1.0);
    one.div(one.add(e))
}

macro_rules! map_inplace {
    ($name:ident, $lane:ident) => {
        #[inline(always)]
        unsafe fn $name<V: SimdF32>(out: &mut [f32]) {
            let n = out.len();
            let mut i = 0;
            while i + V::LANES <= n {
                $lane(V::load(&out[i..])).store(&mut out[i..]);
                i += V::LANES;
            }
            // Remainder lanes run the identical algorithm at width 1.
            while i < n {
                out[i] = $lane(ScalarVec(out[i])).0;
                i += 1;
            }
        }
    };
}

map_inplace!(exp_g, exp_v);
map_inplace!(tanh_g, tanh_v);
map_inplace!(sigmoid_g, sigmoid_v);

/// `Σ exp(xᵢ)` accumulated strictly left-to-right (the exponentials come
/// from [`exp_v`], the sum is scalar in index order) — the log-sum-exp
/// inner loop of the softmax family, backend-invariant bits.
#[inline(always)]
unsafe fn sum_exp_g<V: SimdF32>(row: &[f32]) -> f32 {
    let n = row.len();
    let mut s = 0.0f32;
    let mut buf = [0.0f32; 8];
    debug_assert!(V::LANES <= buf.len());
    let mut i = 0;
    while i + V::LANES <= n {
        exp_v(V::load(&row[i..])).store(&mut buf[..V::LANES]);
        for &e in &buf[..V::LANES] {
            s += e;
        }
        i += V::LANES;
    }
    while i < n {
        s += exp_v(ScalarVec(row[i])).0;
        i += 1;
    }
    s
}

// ---------------------------------------------------------------------------
// GEMM micro-kernels (mul_add_fast ⇒ scalar ≡ SSE2; AVX2 fuses)
// ---------------------------------------------------------------------------

/// One output row of the blocked GEMM: `c += a_row · b` for `a_row: [k]`,
/// `b: [k, n]`, `c: [n]`. `k`-blocked traversal with a zero-skip on
/// `a_row`; per output element the accumulation runs `k`-ascending, one
/// [`SimdF32::mul_add_fast`] per term.
#[inline(always)]
unsafe fn gemm_row_g<V: SimdF32>(c: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
    debug_assert_eq!(a.len(), k);
    debug_assert_eq!(c.len(), n);
    debug_assert_eq!(b.len(), k * n);
    let mut p0 = 0;
    while p0 < k {
        let p1 = (p0 + K_BLOCK).min(k);
        for (p, &av) in a[p0..p1].iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[(p0 + p) * n..(p0 + p + 1) * n];
            let vs = V::splat(av);
            let mut j = 0;
            while j + V::LANES <= n {
                vs.mul_add_fast(V::load(&b_row[j..]), V::load(&c[j..])).store(&mut c[j..]);
                j += V::LANES;
            }
            while j < n {
                c[j] = scalar_madd::<V>(av, b_row[j], c[j]);
                j += 1;
            }
        }
        p0 = p1;
    }
}

/// Four output rows of the register-tiled GEMM panel: `c_i += a_i · b` for
/// `a_i: [k]`, `b: [k, n]`, `c_i: [n]`.
///
/// Walks column tiles of `NV` vectors (`NV·LANES` columns), keeping the
/// 4-row accumulator block in registers for the entire `k` reduction. The
/// tile width is backend-specific (16 columns scalar/AVX2, 8 on SSE2 to
/// fit the `xmm` file) — legal because per output element the accumulation
/// is `k`-ascending regardless of tiling. When all four `a` values are
/// zero the `p` step is skipped; when only some are, the fused update adds
/// `±0.0·b` terms, which change no bits for finite inputs (an accumulator
/// can never hold `-0.0`; fused and unfused alike, `acc + ±0.0 = acc` and
/// an exact-zero result rounds to `+0.0`).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn gemm_block4_g<V: SimdF32, const NV: usize>(
    c0: &mut [f32],
    c1: &mut [f32],
    c2: &mut [f32],
    c3: &mut [f32],
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
) {
    debug_assert!([c0.len(), c1.len(), c2.len(), c3.len()].iter().all(|&l| l == n));
    debug_assert!([a0.len(), a1.len(), a2.len(), a3.len()].iter().all(|&l| l == k));
    debug_assert_eq!(b.len(), k * n);
    let tile = NV * V::LANES;
    let mut j0 = 0;
    while j0 + tile <= n {
        let mut acc = [[V::zero(); NV]; 4];
        for (row, cr) in [&*c0, &*c1, &*c2, &*c3].iter().enumerate() {
            for v in 0..NV {
                acc[row][v] = V::load(&cr[j0 + v * V::LANES..]);
            }
        }
        for p in 0..k {
            let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
            if v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0 {
                continue;
            }
            let (s0, s1, s2, s3) = (V::splat(v0), V::splat(v1), V::splat(v2), V::splat(v3));
            for v in 0..NV {
                let bv = V::load(&b[p * n + j0 + v * V::LANES..]);
                acc[0][v] = s0.mul_add_fast(bv, acc[0][v]);
                acc[1][v] = s1.mul_add_fast(bv, acc[1][v]);
                acc[2][v] = s2.mul_add_fast(bv, acc[2][v]);
                acc[3][v] = s3.mul_add_fast(bv, acc[3][v]);
            }
        }
        for (row, cr) in [&mut *c0, &mut *c1, &mut *c2, &mut *c3].iter_mut().enumerate() {
            for v in 0..NV {
                acc[row][v].store(&mut cr[j0 + v * V::LANES..]);
            }
        }
        j0 += tile;
    }
    // Column remainder (< tile): same fused 4-row update at width 1, with
    // the accumulators living in the (L1-hot) tails of the c rows.
    if j0 < n {
        for p in 0..k {
            let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
            if v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0 {
                continue;
            }
            let b_tail = &b[p * n + j0..(p + 1) * n];
            for (i, &bv) in b_tail.iter().enumerate() {
                c0[j0 + i] = scalar_madd::<V>(v0, bv, c0[j0 + i]);
                c1[j0 + i] = scalar_madd::<V>(v1, bv, c1[j0 + i]);
                c2[j0 + i] = scalar_madd::<V>(v2, bv, c2[j0 + i]);
                c3[j0 + i] = scalar_madd::<V>(v3, bv, c3[j0 + i]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Striped reductions (fixed 8-stripe canonical tree ⇒ backend-invariant)
// ---------------------------------------------------------------------------

macro_rules! striped_reduce {
    ($name:ident, ($($arg:ident),+), |$vx:ident, $vy:ident| $vacc:expr, |$sx:ident, $sy:ident| $sacc:expr) => {
        #[inline(always)]
        unsafe fn $name<V: SimdF32, const NV: usize>($($arg: &[f32]),+) -> f32 {
            let n = [$($arg.len()),+][0];
            debug_assert!([$($arg.len()),+].iter().all(|&l| l == n));
            debug_assert_eq!(NV * V::LANES, REDUCE_STRIPES);
            let mut acc = [V::zero(); NV];
            let mut i = 0;
            while i + REDUCE_STRIPES <= n {
                for v in 0..NV {
                    striped_reduce!(@load ($($arg),+), i + v * V::LANES, $vx, $vy);
                    acc[v] = ($vacc).add(acc[v]);
                }
                i += REDUCE_STRIPES;
            }
            // Fold stripe vectors pairwise (s_i = p_i + p_{i+NV/2}·LANES …)
            // down to one vector, then the canonical in-register tree.
            let mut w = NV;
            while w > 1 {
                w /= 2;
                for v in 0..w {
                    acc[v] = acc[v].add(acc[v + w]);
                }
            }
            let mut r = acc[0].hsum();
            // Tail (< 8 elements) appended strictly left-to-right, so for
            // n < 8 the whole reduction degenerates to a plain serial sum
            // (at exactly n = 8 the pairing tree runs).
            while i < n {
                striped_reduce!(@tail ($($arg),+), i, $sx, $sy);
                r += $sacc;
                i += 1;
            }
            r
        }
    };
    (@load ($a:ident), $idx:expr, $vx:ident, $vy:ident) => {
        let $vx = V::load(&$a[$idx..]);
        let $vy = $vx;
    };
    (@load ($a:ident, $b:ident), $idx:expr, $vx:ident, $vy:ident) => {
        let $vx = V::load(&$a[$idx..]);
        let $vy = V::load(&$b[$idx..]);
    };
    (@tail ($a:ident), $idx:expr, $sx:ident, $sy:ident) => {
        let $sx = $a[$idx];
        let $sy = $sx;
    };
    (@tail ($a:ident, $b:ident), $idx:expr, $sx:ident, $sy:ident) => {
        let $sx = $a[$idx];
        let $sy = $b[$idx];
    };
}

striped_reduce!(reduce_sum_g, (x), |vx, _vy| vx, |sx, _sy| sx);
striped_reduce!(reduce_sum_sq_g, (x), |vx, vy| vx.mul(vy), |sx, sy| sx * sy);
striped_reduce!(dot_g, (x, y), |vx, vy| vx.mul(vy), |sx, sy| sx * sy);

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

macro_rules! dispatch_kernel {
    ($(#[$doc:meta])* $name:ident / $with:ident ( $($arg:ident : $ty:ty),* $(,)? ) $(-> $ret:ty)?,
     avx2: $ga:expr, sse2: $gs:expr, scalar: $gc:expr) => {
        $(#[$doc])*
        ///
        /// The `_with` variant runs under an explicit backend (clamped to
        /// what the CPU supports) — the concurrency-safe entry point the
        /// equivalence tests use; the plain variant consults the resolved
        /// process-wide [`SimdBackend`].
        pub fn $with(bk: SimdBackend, $($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2", enable = "fma")]
            unsafe fn w_avx2($($arg: $ty),*) $(-> $ret)? {
                ($ga)($($arg),*)
            }
            #[cfg(target_arch = "x86_64")]
            unsafe fn w_sse2($($arg: $ty),*) $(-> $ret)? {
                ($gs)($($arg),*)
            }
            fn w_scalar($($arg: $ty),*) $(-> $ret)? {
                // SAFETY: ScalarVec has no hardware preconditions.
                unsafe { ($gc)($($arg),*) }
            }
            match super::effective(bk) {
                // SAFETY: `effective` only yields a vector backend after
                // `cpu_supports` confirmed the features at detection time.
                #[cfg(target_arch = "x86_64")]
                SimdBackend::Avx2 => unsafe { w_avx2($($arg),*) },
                #[cfg(target_arch = "x86_64")]
                SimdBackend::Sse2 => unsafe { w_sse2($($arg),*) },
                _ => w_scalar($($arg),*),
            }
        }

        $(#[$doc])*
        ///
        /// Runs under the process-wide backend (see
        /// [`backend`](super::backend)).
        pub fn $name($($arg: $ty),*) $(-> $ret)? {
            $with(super::backend(), $($arg),*)
        }
    };
}

// Shared with the sibling `qkernels` module, which stamps out the i8
// integer kernels through the same three-backend dispatcher.
pub(crate) use dispatch_kernel;

#[cfg(not(target_arch = "x86_64"))]
type F32x4 = ScalarVec;
#[cfg(not(target_arch = "x86_64"))]
type F32x8 = ScalarVec;

dispatch_kernel!(
    /// Element-wise `out += rhs`. Bitwise backend-invariant.
    add_assign / add_assign_with(out: &mut [f32], rhs: &[f32]),
    avx2: add_assign_g::<F32x8>, sse2: add_assign_g::<F32x4>, scalar: add_assign_g::<ScalarVec>
);
dispatch_kernel!(
    /// Element-wise `out -= rhs`. Bitwise backend-invariant.
    sub_assign / sub_assign_with(out: &mut [f32], rhs: &[f32]),
    avx2: sub_assign_g::<F32x8>, sse2: sub_assign_g::<F32x4>, scalar: sub_assign_g::<ScalarVec>
);
dispatch_kernel!(
    /// Element-wise `out *= rhs` (Hadamard). Bitwise backend-invariant.
    mul_assign / mul_assign_with(out: &mut [f32], rhs: &[f32]),
    avx2: mul_assign_g::<F32x8>, sse2: mul_assign_g::<F32x4>, scalar: mul_assign_g::<ScalarVec>
);
dispatch_kernel!(
    /// `out *= s`. Bitwise backend-invariant.
    scale / scale_with(out: &mut [f32], s: f32),
    avx2: scale_g::<F32x8>, sse2: scale_g::<F32x4>, scalar: scale_g::<ScalarVec>
);
dispatch_kernel!(
    /// `out -= s` element-wise. Bitwise backend-invariant.
    sub_scalar / sub_scalar_with(out: &mut [f32], s: f32),
    avx2: sub_scalar_g::<F32x8>, sse2: sub_scalar_g::<F32x4>, scalar: sub_scalar_g::<ScalarVec>
);
dispatch_kernel!(
    /// `out += rhs · s`, unfused on every backend (two roundings per
    /// element, like the historical optimizer loops). Bitwise
    /// backend-invariant.
    axpy / axpy_with(out: &mut [f32], rhs: &[f32], s: f32),
    avx2: axpy_g::<F32x8>, sse2: axpy_g::<F32x4>, scalar: axpy_g::<ScalarVec>
);
dispatch_kernel!(
    /// `out += rhs · s` through `mul_add_fast` — the convolution inner
    /// loop. Scalar ≡ SSE2 bitwise; AVX2 fuses.
    axpy_madd / axpy_madd_with(out: &mut [f32], rhs: &[f32], s: f32),
    avx2: axpy_madd_g::<F32x8>, sse2: axpy_madd_g::<F32x4>, scalar: axpy_madd_g::<ScalarVec>
);
dispatch_kernel!(
    /// In-place `max(x, 0.0)`. Bitwise backend-invariant (NaN → `0.0`,
    /// `-0.0` → `+0.0`, exactly like `f32::max(x, 0.0)`).
    relu / relu_with(out: &mut [f32]),
    avx2: relu_g::<F32x8>, sse2: relu_g::<F32x4>, scalar: relu_g::<ScalarVec>
);
dispatch_kernel!(
    /// In-place vectorized `exp(x)` (polynomial kernel, ≤ 2 ulp). Bitwise
    /// backend-invariant; NaN passes through; saturates instead of
    /// producing `±inf`/denormals at the range edges.
    vec_exp / vec_exp_with(out: &mut [f32]),
    avx2: exp_g::<F32x8>, sse2: exp_g::<F32x4>, scalar: exp_g::<ScalarVec>
);
dispatch_kernel!(
    /// In-place vectorized `tanh(x)` (polynomial + exp kernel, ≤ 2 ulp).
    /// Bitwise backend-invariant; NaN propagates, `±inf → ±1.0`.
    vec_tanh / vec_tanh_with(out: &mut [f32]),
    avx2: tanh_g::<F32x8>, sse2: tanh_g::<F32x4>, scalar: tanh_g::<ScalarVec>
);
dispatch_kernel!(
    /// In-place vectorized logistic sigmoid `1/(1+exp(−x))` (≤ 3 ulp).
    /// Bitwise backend-invariant; NaN propagates; the positive tail
    /// saturates to exactly `1.0`, the negative tail to a subnormal
    /// `≈ 5.9e-39` (because [`vec_exp`] saturates rather than overflow).
    vec_sigmoid / vec_sigmoid_with(out: &mut [f32]),
    avx2: sigmoid_g::<F32x8>, sse2: sigmoid_g::<F32x4>, scalar: sigmoid_g::<ScalarVec>
);
dispatch_kernel!(
    /// `Σ exp(xᵢ)`, exponentials from the [`vec_exp`] kernel, summed
    /// strictly left-to-right. Bitwise backend-invariant.
    sum_exp / sum_exp_with(row: &[f32]) -> f32,
    avx2: sum_exp_g::<F32x8>, sse2: sum_exp_g::<F32x4>, scalar: sum_exp_g::<ScalarVec>
);
dispatch_kernel!(
    /// One GEMM output row: `c += a_row · b` (`a_row: [k]`, `b: [k,n]`),
    /// `k`-ascending per element with a zero-skip on `a_row`. Scalar ≡
    /// SSE2 bitwise; AVX2 fuses each multiply-add.
    gemm_row / gemm_row_with(c: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize),
    avx2: gemm_row_g::<F32x8>, sse2: gemm_row_g::<F32x4>, scalar: gemm_row_g::<ScalarVec>
);
dispatch_kernel!(
    /// Four GEMM output rows with a register-resident accumulator tile
    /// (see [`crate::linalg::gemm_panel_into`]). Scalar ≡ SSE2 bitwise;
    /// AVX2 fuses each multiply-add.
    gemm_block4 / gemm_block4_with(
        c0: &mut [f32], c1: &mut [f32], c2: &mut [f32], c3: &mut [f32],
        a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32],
        b: &[f32], k: usize, n: usize,
    ),
    avx2: gemm_block4_g::<F32x8, 2>, sse2: gemm_block4_g::<F32x4, 2>,
    scalar: gemm_block4_g::<ScalarVec, 16>
);
dispatch_kernel!(
    /// `Σ xᵢ` over 8 fixed stripes + canonical pairing tree; tail (< 8)
    /// appended left-to-right. Bitwise backend-invariant (and exactly the
    /// plain serial sum for `n < 8`).
    reduce_sum / reduce_sum_with(x: &[f32]) -> f32,
    avx2: reduce_sum_g::<F32x8, 1>, sse2: reduce_sum_g::<F32x4, 2>,
    scalar: reduce_sum_g::<ScalarVec, 8>
);
dispatch_kernel!(
    /// `Σ xᵢ²` with the same striped scheme as [`reduce_sum`]. Bitwise
    /// backend-invariant.
    reduce_sum_sq / reduce_sum_sq_with(x: &[f32]) -> f32,
    avx2: reduce_sum_sq_g::<F32x8, 1>, sse2: reduce_sum_sq_g::<F32x4, 2>,
    scalar: reduce_sum_sq_g::<ScalarVec, 8>
);
dispatch_kernel!(
    /// `Σ xᵢ·yᵢ` (unfused multiply) with the same striped scheme as
    /// [`reduce_sum`]. Bitwise backend-invariant.
    dot / dot_with(x: &[f32], y: &[f32]) -> f32,
    avx2: dot_g::<F32x8, 1>, sse2: dot_g::<F32x4, 2>,
    scalar: dot_g::<ScalarVec, 8>
);
