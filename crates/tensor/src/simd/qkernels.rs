//! Quantized integer kernels: i8×i8→i32 dot products and the transposed
//! GEMM they compose into.
//!
//! These are the arithmetic core of the int8 inference path. Unlike the
//! f32 kernels, every instantiation here accumulates in **exact integer
//! arithmetic** — two's-complement i32 addition is associative, so the
//! lane width, the load order, and the horizontal-sum tree cannot change
//! the result. All three backends are therefore **bitwise identical for
//! every input and every shape**, remainder lanes included: a fourth,
//! strongest determinism class (see `docs/NUMERICS.md`, "Quantized
//! inference").
//!
//! Instruction selection:
//!
//! * **scalar** — plain `i32` multiply-accumulate, the oracle.
//! * **sse2** — 16 lanes of i8 per step: sign-extend each half to i16
//!   with the `unpack`+`srai` idiom (SSE2 has no `cvtepi8_epi16`; that is
//!   SSE4.1), then `pmaddwd` pairs into 4×i32 accumulators.
//! * **avx2** — 32 lanes of i8 per step: two `vpmovsxbw` widenings feed
//!   two `vpmaddwd`, accumulating into one 8×i32 register.
//!
//! The widening-multiply shape (`madd` on sign-extended i16) is chosen
//! over `maddubs` deliberately: `maddubs` is u8×i8 and saturates its i16
//! pair-sum, which would make the kernel value-dependent; sign-extended
//! `madd` products are ≤ 2·127·128 and can never saturate.
//!
//! Overflow contract: the caller keeps `k ≤ 2^16` (≈ 65k accumulation
//! terms), which bounds `|Σ aᵢ·bᵢ| ≤ k · 127·128 < 2^31`. Every shape the
//! workspace produces (`k = cin·kernel` or `k = fc_in`) is orders of
//! magnitude below that; the bound is `debug_assert`ed.

use super::kernels::dispatch_kernel;
use super::SimdBackend;
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Largest supported reduction length (see the overflow contract above).
pub const QDOT_MAX_K: usize = 1 << 16;

#[inline(always)]
fn qdot_scalar(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() <= QDOT_MAX_K);
    let mut s = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        s = s.wrapping_add(i32::from(x) * i32::from(y));
    }
    s
}

/// Sign-extends the low 8 bytes of `v` to 8×i16 (SSE2-only idiom:
/// interleave the register with itself so each i16 lane holds `x·257`
/// bit-patterns, then arithmetic-shift the high copy down).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn sx_lo_epi8(v: __m128i) -> __m128i {
    _mm_srai_epi16(_mm_unpacklo_epi8(v, v), 8)
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn sx_hi_epi8(v: __m128i) -> __m128i {
    _mm_srai_epi16(_mm_unpackhi_epi8(v, v), 8)
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn qdot_sse2(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() <= QDOT_MAX_K);
    let n = a.len();
    let mut acc = _mm_setzero_si128();
    let mut i = 0;
    while i + 16 <= n {
        let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
        let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
        acc = _mm_add_epi32(acc, _mm_madd_epi16(sx_lo_epi8(va), sx_lo_epi8(vb)));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(sx_hi_epi8(va), sx_hi_epi8(vb)));
        i += 16;
    }
    let mut lanes = [0i32; 4];
    _mm_storeu_si128(lanes.as_mut_ptr().cast(), acc);
    let mut s = lanes[0].wrapping_add(lanes[1]).wrapping_add(lanes[2]).wrapping_add(lanes[3]);
    while i < n {
        s = s.wrapping_add(i32::from(a[i]) * i32::from(b[i]));
        i += 1;
    }
    s
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn qdot_avx2(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() <= QDOT_MAX_K);
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    // 32 bytes per step: two 16-byte sign-extending loads, two pmaddwd.
    while i + 32 <= n {
        let a0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i).cast()));
        let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i).cast()));
        let a1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i + 16).cast()));
        let b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i + 16).cast()));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a0, b0));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a1, b1));
        i += 32;
    }
    if i + 16 <= n {
        let a0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i).cast()));
        let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i).cast()));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a0, b0));
        i += 16;
    }
    let mut s = hsum_epi32_256(acc);
    while i < n {
        s = s.wrapping_add(i32::from(a[i]) * i32::from(b[i]));
        i += 1;
    }
    s
}

macro_rules! qgemm_body {
    ($name:ident, $dot:ident) => {
        #[inline(always)]
        unsafe fn $name(out: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
            debug_assert_eq!(out.len(), m * n);
            debug_assert_eq!(a.len(), m * k);
            debug_assert_eq!(b.len(), n * k);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = $dot(a_row, &b[j * k..(j + 1) * k]);
                }
            }
        }
    };
}

qgemm_body!(qgemm_scalar, qdot_scalar);
#[cfg(target_arch = "x86_64")]
qgemm_body!(qgemm_sse2, qdot_sse2);

/// In-register reduction of 8×i32 to one i32 (wrapping). The tree shape
/// differs from a left-to-right scalar sum, but i32 addition is
/// associative so the value cannot.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn hsum_epi32_256(v: __m256i) -> i32 {
    let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
    let s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b10_11_00_01));
    _mm_cvtsi128_si32(s)
}

/// Reduction lengths up to this bound take the pre-widened fast path in
/// [`qgemm_avx2`] (4 rows × 2 bytes × 512 = 4 KiB of stack panel). Every
/// shape the inference plan produces (`k = cin·kernel`, `k = fc_in`) fits;
/// larger `k` falls back to widen-in-loop.
#[cfg(target_arch = "x86_64")]
const QGEMM_WIDEN_MAX_K: usize = 512;

/// AVX2 GEMM with 4-row blocking: each 16-byte panel of the (transposed)
/// right-hand side is sign-extended **once** and fed to four independent
/// `pmaddwd` accumulator chains — one per output row — which both
/// amortizes the B loads and gives the multiply-add units a dependency-free
/// stream. For `k ≤ QGEMM_WIDEN_MAX_K` the 4-row A block is additionally
/// pre-widened to i16 once per block (reused across all `n` columns), so
/// the inner loop issues exactly one `cvtepi8_epi16` per 16 bytes of B.
/// Integer addition is associative, so none of this is observable: results
/// stay bitwise identical to the dot-at-a-time backends.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn qgemm_avx2(out: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    let widen = k <= QGEMM_WIDEN_MAX_K;
    let mut wide = [0i16; 4 * QGEMM_WIDEN_MAX_K];
    let mut i = 0;
    while i + 4 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        if widen {
            for (r, row) in [a0, a1, a2, a3].into_iter().enumerate() {
                for (p, &v) in row.iter().enumerate() {
                    wide[r * k + p] = i16::from(v);
                }
            }
        }
        for j in 0..n {
            let bj = &b[j * k..(j + 1) * k];
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let mut p = 0;
            if widen {
                let w = wide.as_ptr();
                while p + 16 <= k {
                    let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(bj.as_ptr().add(p).cast()));
                    let v0 = _mm256_loadu_si256(w.add(p).cast());
                    let v1 = _mm256_loadu_si256(w.add(k + p).cast());
                    let v2 = _mm256_loadu_si256(w.add(2 * k + p).cast());
                    let v3 = _mm256_loadu_si256(w.add(3 * k + p).cast());
                    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(v0, vb));
                    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(v1, vb));
                    acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(v2, vb));
                    acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(v3, vb));
                    p += 16;
                }
            } else {
                while p + 16 <= k {
                    let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(bj.as_ptr().add(p).cast()));
                    let v0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a0.as_ptr().add(p).cast()));
                    let v1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a1.as_ptr().add(p).cast()));
                    let v2 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a2.as_ptr().add(p).cast()));
                    let v3 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a3.as_ptr().add(p).cast()));
                    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(v0, vb));
                    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(v1, vb));
                    acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(v2, vb));
                    acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(v3, vb));
                    p += 16;
                }
            }
            let mut s0 = hsum_epi32_256(acc0);
            let mut s1 = hsum_epi32_256(acc1);
            let mut s2 = hsum_epi32_256(acc2);
            let mut s3 = hsum_epi32_256(acc3);
            while p < k {
                let y = i32::from(bj[p]);
                s0 = s0.wrapping_add(i32::from(a0[p]) * y);
                s1 = s1.wrapping_add(i32::from(a1[p]) * y);
                s2 = s2.wrapping_add(i32::from(a2[p]) * y);
                s3 = s3.wrapping_add(i32::from(a3[p]) * y);
                p += 1;
            }
            out[i * n + j] = s0;
            out[(i + 1) * n + j] = s1;
            out[(i + 2) * n + j] = s2;
            out[(i + 3) * n + j] = s3;
        }
        i += 4;
    }
    while i < m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            out[i * n + j] = qdot_avx2(a_row, &b[j * k..(j + 1) * k]);
        }
        i += 1;
    }
}

// Scalar wrapper matching the unsafe-fn calling convention the dispatcher
// expects (the scalar instantiation has no hardware preconditions).
unsafe fn qdot_scalar_w(a: &[i8], b: &[i8]) -> i32 {
    qdot_scalar(a, b)
}

dispatch_kernel!(
    /// `Σ aᵢ·bᵢ` over two i8 slices, i32 accumulation. **Bitwise identical
    /// on every backend** (integer addition is associative); requires
    /// `a.len() ≤ 2^16` so the sum cannot wrap (see [`QDOT_MAX_K`]).
    qdot_i8 / qdot_i8_with(a: &[i8], b: &[i8]) -> i32,
    avx2: qdot_avx2, sse2: qdot_sse2, scalar: qdot_scalar_w
);
dispatch_kernel!(
    /// Quantized GEMM against a **transposed** right-hand side:
    /// `out[i·n + j] = Σ_p a[i·k + p] · b[j·k + p]` for `a: [m, k]` and
    /// `b: [n, k]`, both row-major i8, accumulating in i32. Keeping both
    /// operands' reduction axes contiguous is what lets every backend use
    /// its widening multiply-add directly. **Bitwise identical on every
    /// backend**; requires `k ≤ 2^16` (see [`QDOT_MAX_K`]).
    qgemm_i8t / qgemm_i8t_with(out: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize),
    avx2: qgemm_avx2, sse2: qgemm_sse2, scalar: qgemm_scalar
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qdot_matches_reference_on_all_backends() {
        let a: Vec<i8> = (0..100).map(|i| ((i * 37 + 11) % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..100).map(|i| ((i * 53 + 5) % 255 - 127) as i8).collect();
        for len in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 100] {
            let want: i32 =
                a[..len].iter().zip(&b[..len]).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum();
            for bk in [SimdBackend::Scalar, SimdBackend::Sse2, SimdBackend::Avx2] {
                assert_eq!(qdot_i8_with(bk, &a[..len], &b[..len]), want, "len={len} bk={bk:?}");
            }
        }
    }

    #[test]
    fn qdot_handles_extreme_codes() {
        // -128 · -128 per term: the case `maddubs` would mishandle and
        // saturating i16 sums would corrupt.
        let a = vec![-128i8; 33];
        let b = vec![-128i8; 33];
        let want = 33 * 128 * 128;
        for bk in [SimdBackend::Scalar, SimdBackend::Sse2, SimdBackend::Avx2] {
            assert_eq!(qdot_i8_with(bk, &a, &b), want, "bk={bk:?}");
        }
    }

    #[test]
    fn qgemm_small_shape_all_backends() {
        let (m, k, n) = (3usize, 19usize, 5usize);
        let a: Vec<i8> = (0..(m * k) as i32).map(|i| ((i * 41 + 3) % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..(n * k) as i32).map(|i| ((i * 29 + 17) % 255 - 127) as i8).collect();
        let mut want = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                want[i * n + j] =
                    (0..k).map(|p| i32::from(a[i * k + p]) * i32::from(b[j * k + p])).sum();
            }
        }
        for bk in [SimdBackend::Scalar, SimdBackend::Sse2, SimdBackend::Avx2] {
            let mut out = vec![0i32; m * n];
            qgemm_i8t_with(bk, &mut out, &a, &b, m, k, n);
            assert_eq!(out, want, "bk={bk:?}");
        }
    }
}
