//! The dense, owned, row-major `f32` tensor.

use crate::{Result, Shape, TensorError};
use rand::Rng;

/// An owned, contiguous, row-major `f32` n-dimensional array.
///
/// `Tensor` is deliberately simple: no views, no reference counting, no
/// laziness. The LightTS workloads (small convolutional students, Gaussian
/// processes over a few dozen points) are well served by eager contiguous
/// buffers, and the simplicity keeps every backward rule easy to audit.
///
/// Every tensor's buffer comes from (and returns to) the thread-local
/// [`crate::pool`]: `Clone` copies into a pooled slab and `Drop` recycles the
/// slab instead of freeing it, so op-heavy loops reuse memory instead of
/// hitting the allocator.
#[derive(Debug, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor { shape: self.shape.clone(), data: crate::pool::take_copy(&self.data) }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        crate::pool::recycle(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from raw data and a shape.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch { len: data.len(), expected: shape.volume() });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let v = shape.volume();
        Tensor { shape, data: crate::pool::take_zeroed(v) }
    }

    /// A tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let v = shape.volume();
        Tensor { shape, data: crate::pool::take_filled(v, value) }
    }

    /// A scalar (rank-1, length-1) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::new(&[1]), data: crate::pool::take_filled(1, value) }
    }

    /// A tensor with elements drawn i.i.d. from `N(0, std^2)`.
    ///
    /// Uses the Box–Muller transform so only `rand`'s uniform sampling is
    /// required.
    pub fn randn<R: Rng>(rng: &mut R, dims: &[usize], std: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.volume();
        let mut data = crate::pool::take_empty(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape, data }
    }

    /// A tensor with elements drawn i.i.d. from `U(lo, hi)`.
    pub fn rand_uniform<R: Rng>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.volume();
        let mut data = crate::pool::take_empty(n);
        data.extend((0..n).map(|_| rng.gen_range(lo..hi)));
        Tensor { shape, data }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape's dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The shape object.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    ///
    /// The buffer leaves the pool's custody: dropping the returned vector
    /// frees it normally. Use only outside steady-state loops.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Element at a multi-index.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// The single element of a scalar-like tensor.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() != 1 {
            return Err(TensorError::RankMismatch { found: self.rank(), expected: 1, op: "item" });
        }
        Ok(self.data[0])
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns the same data under a new shape of equal volume.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                len: self.data.len(),
                expected: shape.volume(),
            });
        }
        Ok(Tensor { shape, data: crate::pool::take_copy(&self.data) })
    }

    /// Transposes a rank-2 tensor.
    pub fn transpose2(&self) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                found: self.rank(),
                expected: 2,
                op: "transpose2",
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = crate::pool::take_zeroed(m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    pub fn row(&self, i: usize) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { found: self.rank(), expected: 2, op: "row" });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        if i >= m {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.dims().to_vec(),
            });
        }
        Tensor::from_vec(crate::pool::take_copy(&self.data[i * n..(i + 1) * n]), &[n])
    }

    /// Gathers rows of a rank-2 tensor into a new rank-2 tensor, in the
    /// order given by `indices` (rows may repeat).
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                found: self.rank(),
                expected: 2,
                op: "gather_rows",
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut data = crate::pool::take_empty(indices.len() * n);
        for &i in indices {
            if i >= m {
                return Err(TensorError::IndexOutOfBounds {
                    index: vec![i],
                    shape: self.dims().to_vec(),
                });
            }
            data.extend_from_slice(&self.data[i * n..(i + 1) * n]);
        }
        Tensor::from_vec(data, &[indices.len(), n])
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor (rows).
    pub fn stack_rows(rows: &[Tensor]) -> Result<Self> {
        let first = rows.first().ok_or(TensorError::Empty { op: "stack_rows" })?;
        let n = first.len();
        let mut data = crate::pool::take_empty(rows.len() * n);
        for r in rows {
            if r.len() != n {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: r.dims().to_vec(),
                    op: "stack_rows",
                });
            }
            data.extend_from_slice(r.data());
        }
        Tensor::from_vec(data, &[rows.len(), n])
    }

    // ------------------------------------------------------------------
    // Element-wise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        let mut data = crate::pool::take_empty(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor { shape: self.shape.clone(), data }
    }

    /// Applies `f` pairwise to elements of `self` and `other`.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.dims() != other.dims() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
                op: "zip_map",
            });
        }
        let mut data = crate::pool::take_empty(self.data.len());
        data.extend(self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)));
        Ok(Tensor { shape: self.shape.clone(), data })
    }

    /// Element-wise binary op threaded through the parallel layer, with
    /// the per-chunk work done by a [`crate::simd`] slice kernel.
    ///
    /// Chunking never changes results: the SIMD element-wise kernels apply
    /// one position-independent, single-rounding operation per element, so
    /// neither chunk boundaries, thread count, nor lane width affect bits;
    /// this is the parallel analogue of [`Tensor::zip_map`].
    fn par_zip(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(&mut [f32], &[f32]) + Sync,
    ) -> Result<Self> {
        if self.dims() != other.dims() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
                op,
            });
        }
        let mut out = crate::pool::take_copy(&self.data);
        let rhs = other.data();
        crate::par::par_for_chunks(&mut out, crate::par::REDUCE_CHUNK, 1, |c, chunk| {
            let off = c * crate::par::REDUCE_CHUNK;
            let n = chunk.len();
            f(chunk, &rhs[off..off + n]);
        });
        Ok(Tensor { shape: self.shape.clone(), data: out })
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.par_zip(other, "add", crate::simd::add_assign)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.par_zip(other, "sub", crate::simd::sub_assign)
    }

    /// Element-wise product (Hadamard).
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.par_zip(other, "mul", crate::simd::mul_assign)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        let mut out = crate::pool::take_copy(&self.data);
        crate::par::par_for_chunks(&mut out, crate::par::REDUCE_CHUNK, 1, |_, chunk| {
            crate::simd::scale(chunk, s);
        });
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// In-place `self += other * s` (axpy).
    pub fn axpy(&mut self, other: &Tensor, s: f32) -> Result<()> {
        if self.dims() != other.dims() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
                op: "axpy",
            });
        }
        let rhs = other.data();
        crate::par::par_for_chunks(&mut self.data, crate::par::REDUCE_CHUNK, 2, |c, chunk| {
            let off = c * crate::par::REDUCE_CHUNK;
            let n = chunk.len();
            // Unfused multiply-then-add per element (simd::axpy), exactly
            // the historical optimizer update — bitwise backend-invariant.
            crate::simd::axpy(chunk, &rhs[off..off + n], s);
        });
        Ok(())
    }

    /// Element-wise rectified linear unit `max(x, 0)`.
    ///
    /// Vectorized via [`crate::simd::relu`]; `NaN` and `-0.0` both map to
    /// `+0.0`, matching `f32::max(x, 0.0)` bit-for-bit on every backend.
    pub fn relu(&self) -> Self {
        let mut out = crate::pool::take_copy(&self.data);
        crate::par::par_for_chunks(&mut out, crate::par::REDUCE_CHUNK, 1, |_, chunk| {
            crate::simd::relu(chunk);
        });
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Element-wise exponential through the vectorized polynomial kernel
    /// [`crate::simd::vec_exp`] (~2 ulp, bitwise identical across SIMD
    /// backends; `NaN` passes through, range edges saturate instead of
    /// overflowing).
    pub fn exp(&self) -> Self {
        let mut out = crate::pool::take_copy(&self.data);
        crate::par::par_for_chunks(&mut out, crate::par::REDUCE_CHUNK, 4, |_, chunk| {
            crate::simd::vec_exp(chunk);
        });
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Element-wise logistic sigmoid `1/(1+exp(−x))` through
    /// [`crate::simd::vec_sigmoid`] (~3 ulp, bitwise identical across SIMD
    /// backends; tails saturate to exactly `0.0`/`1.0`).
    pub fn sigmoid(&self) -> Self {
        let mut out = crate::pool::take_copy(&self.data);
        crate::par::par_for_chunks(&mut out, crate::par::REDUCE_CHUNK, 4, |_, chunk| {
            crate::simd::vec_sigmoid(chunk);
        });
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Element-wise hyperbolic tangent through [`crate::simd::vec_tanh`]
    /// (~3 ulp, bitwise identical across SIMD backends; `±inf → ±1.0`).
    pub fn tanh(&self) -> Self {
        let mut out = crate::pool::take_copy(&self.data);
        crate::par::par_for_chunks(&mut out, crate::par::REDUCE_CHUNK, 4, |_, chunk| {
            crate::simd::vec_tanh(chunk);
        });
        Tensor { shape: self.shape.clone(), data: out }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    ///
    /// Reduced in fixed-size chunks combined in order (see
    /// [`crate::par::chunked_sum`]), so the value is identical across
    /// thread counts and feature configurations; tensors smaller than one
    /// chunk sum exactly left-to-right.
    pub fn sum(&self) -> f32 {
        crate::par::chunked_sum(&self.data)
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`-inf` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`+inf` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element of a rank-1 tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.data.is_empty() {
            return Err(TensorError::Empty { op: "argmax" });
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Squared L2 norm of all elements.
    ///
    /// Computed by the striped [`crate::simd::reduce_sum_sq`] kernel:
    /// bitwise identical across SIMD backends (8 fixed stripes, canonical
    /// combine tree), and exactly the plain left-to-right sum for tensors
    /// of at most 8 elements.
    pub fn norm_sq(&self) -> f32 {
        crate::simd::reduce_sum_sq(&self.data)
    }

    // ------------------------------------------------------------------
    // Row-wise softmax family (rank-2 [batch, classes])
    // ------------------------------------------------------------------

    /// Row-wise softmax of a rank-2 tensor.
    ///
    /// Exactly [`Tensor::log_softmax_rows`] followed by the element-wise
    /// [`crate::simd::vec_exp`] kernel — the same two steps (and therefore
    /// the same bits) as the serving path's `predict_proba_into`.
    pub fn softmax_rows(&self) -> Result<Self> {
        let mut lsm = self.log_softmax_rows()?;
        crate::par::par_for_chunks(&mut lsm.data, crate::par::REDUCE_CHUNK, 4, |_, chunk| {
            crate::simd::vec_exp(chunk);
        });
        Ok(lsm)
    }

    /// Row-wise log-softmax of a rank-2 tensor (numerically stabilized).
    ///
    /// Each row runs [`crate::simd::log_softmax_row`]: subtract the row
    /// max, exponentiate through the vectorized `vec_exp` kernel, sum the
    /// exponentials strictly left-to-right, subtract the log-sum. The
    /// result is bitwise identical across thread counts and SIMD backends
    /// (see `docs/NUMERICS.md`).
    pub fn log_softmax_rows(&self) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                found: self.rank(),
                expected: 2,
                op: "log_softmax_rows",
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        if n == 0 {
            return Tensor::from_vec(Vec::new(), &[m, n]);
        }
        let mut out = crate::pool::take_zeroed(m * n);
        crate::par::par_for_rows(&mut out, n, 4 * n, |i, out_row| {
            out_row.copy_from_slice(&self.data[i * n..(i + 1) * n]);
            crate::simd::log_softmax_row(out_row);
        });
        Tensor::from_vec(out, &[m, n])
    }

    // ------------------------------------------------------------------
    // Matrix multiplication (rank-2)
    // ------------------------------------------------------------------

    /// Rank-2 matrix product `self[m,k] @ other[k,n] -> [m,n]`.
    ///
    /// Delegates to [`crate::linalg::matmul_into`]: a cache-blocked,
    /// row-parallel ikj kernel whose results are bitwise identical to the
    /// serial triple loop.
    pub fn matmul(&self, other: &Tensor) -> Result<Self> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                found: if self.rank() != 2 { self.rank() } else { other.rank() },
                expected: 2,
                op: "matmul",
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
                op: "matmul",
            });
        }
        let mut out = crate::pool::take_zeroed(m * n);
        crate::linalg::matmul_into(&mut out, &self.data, &other.data, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-3.0, -3.0, -3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Tensor::zeros(&[3]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[2, 4]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[3, 4]);
        assert_eq!(&c.data()[0..4], &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(&c.data()[8..12], &[8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn matmul_shape_check() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let t = a.transpose2().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]).unwrap(), a.get(&[1, 2]).unwrap());
        assert_eq!(t.transpose2().unwrap(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = a.softmax_rows().unwrap();
        for i in 0..2 {
            let row_sum: f32 = s.row(i).unwrap().data().iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_is_stable_for_large_logits() {
        let a = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let s = a.log_softmax_rows().unwrap();
        assert!(s.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.argmax().unwrap(), 2);
        assert!((a.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.norm_sq(), 14.0);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&mut rng, &[10_000], 1.0);
        assert!(t.mean().abs() < 0.05);
        let var = t.map(|x| x * x).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.1, "variance was {var}");
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let r0 = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let r1 = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let m = Tensor::stack_rows(&[r0, r1]).unwrap();
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        let g = t.gather_rows(&[2, 0, 2]).unwrap();
        assert_eq!(g.dims(), &[3, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        assert!(t.gather_rows(&[3]).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap();
        a.axpy(&b, 0.5).unwrap();
        assert_eq!(a.data(), &[2.0, 2.5]);
    }
}
