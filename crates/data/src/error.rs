//! Error type for dataset construction and manipulation.

use lightts_tensor::TensorError;
use std::fmt;

/// Errors produced by dataset construction, splitting, and batching.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Labels and series counts disagree, or a label exceeds the class count.
    Inconsistent {
        /// Description of the inconsistency.
        what: String,
    },
    /// A requested index was out of range.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// The collection length.
        len: usize,
    },
    /// A dataset or batch was unexpectedly empty.
    Empty {
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A data file's *content* is malformed — an unparsable field, a
    /// NaN/Inf observation, or a series of the wrong length. Carries the
    /// dataset name and 1-based line so a bad archive row is locatable
    /// directly from the error.
    Malformed {
        /// The dataset (file stem) being parsed.
        name: String,
        /// 1-based line number of the offending row.
        line: usize,
        /// Description of the defect.
        what: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::Inconsistent { what } => write!(f, "inconsistent dataset: {what}"),
            Self::OutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            Self::Empty { op } => write!(f, "empty input to {op}"),
            Self::Malformed { name, line, what } => {
                write!(f, "malformed data in {name} line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = DataError::OutOfRange { index: 5, len: 3 };
        assert!(e.to_string().contains('5'));
    }
}
