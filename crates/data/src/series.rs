//! The multivariate time-series type (paper Section 2.1.1).

use crate::{DataError, Result};
use lightts_tensor::Tensor;

/// A time series `T = ⟨t₁ … t_C⟩` with `t_j ∈ ℝ^M`, stored as a
/// `[dims, length]` tensor (dimension-major, matching the `[channels,
/// length]` layout the convolutional classifiers consume).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    values: Tensor,
}

impl TimeSeries {
    /// Wraps a `[dims, length]` tensor as a time series.
    pub fn new(values: Tensor) -> Result<Self> {
        if values.rank() != 2 {
            return Err(DataError::Inconsistent {
                what: format!("time series must be [dims, length], got {:?}", values.dims()),
            });
        }
        if values.is_empty() {
            return Err(DataError::Empty { op: "TimeSeries::new" });
        }
        Ok(TimeSeries { values })
    }

    /// Builds a univariate series from raw observations.
    pub fn univariate(values: Vec<f32>) -> Result<Self> {
        let len = values.len();
        Ok(TimeSeries { values: Tensor::from_vec(values, &[1, len])? })
    }

    /// Number of observation dimensions `M`.
    pub fn dims(&self) -> usize {
        self.values.dims()[0]
    }

    /// Number of observations `C`.
    pub fn len(&self) -> usize {
        self.values.dims()[1]
    }

    /// Whether the series has no observations (never true for a constructed
    /// series; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying `[dims, length]` tensor.
    pub fn values(&self) -> &Tensor {
        &self.values
    }

    /// Observation `j` of dimension `m`.
    pub fn get(&self, m: usize, j: usize) -> Result<f32> {
        Ok(self.values.get(&[m, j])?)
    }

    /// Per-dimension z-normalization: each dimension is shifted to zero mean
    /// and scaled to unit variance (constant dimensions are left at zero).
    ///
    /// Z-normalization is the standard preprocessing for UCR-style
    /// classification and is applied by the archive generator.
    pub fn z_normalized(&self) -> Self {
        let (m, l) = (self.dims(), self.len());
        let mut out = self.values.clone();
        for mi in 0..m {
            let row = &self.values.data()[mi * l..(mi + 1) * l];
            let mean = row.iter().sum::<f32>() / l as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / l as f32;
            let inv = if var > 1e-12 { 1.0 / var.sqrt() } else { 0.0 };
            for (o, &v) in out.data_mut()[mi * l..(mi + 1) * l].iter_mut().zip(row.iter()) {
                *o = (v - mean) * inv;
            }
        }
        TimeSeries { values: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn univariate_shape() {
        let ts = TimeSeries::univariate(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(ts.dims(), 1);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.get(0, 1).unwrap(), 2.0);
    }

    #[test]
    fn multivariate_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let ts = TimeSeries::new(t).unwrap();
        assert_eq!(ts.dims(), 2);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.get(1, 0).unwrap(), 4.0);
    }

    #[test]
    fn rejects_wrong_rank() {
        assert!(TimeSeries::new(Tensor::zeros(&[3])).is_err());
        assert!(TimeSeries::new(Tensor::zeros(&[2, 3, 4])).is_err());
    }

    #[test]
    fn z_normalization_standardizes_each_dim() {
        let t =
            Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0, 1.0, 1.0, 1.0, 1.0], &[2, 4]).unwrap();
        let z = TimeSeries::new(t).unwrap().z_normalized();
        let row0: Vec<f32> = z.values().data()[0..4].to_vec();
        let mean: f32 = row0.iter().sum::<f32>() / 4.0;
        let var: f32 = row0.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-4);
        // constant dimension maps to zeros, not NaN
        assert!(z.values().data()[4..8].iter().all(|&v| v == 0.0));
    }
}
