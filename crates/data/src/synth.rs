//! Synthetic time-series generator: the stand-in for the UCR archive.
//!
//! Each class is defined by a *prototype* per dimension — a sum of localized
//! waveforms (Gaussian bumps, sine bursts, sawtooth and square segments) with
//! random positions, widths, frequencies, and amplitudes drawn from a
//! class-specific seeded generator. Individual samples render the prototype
//! under a random time warp, amplitude jitter, and additive Gaussian noise.
//!
//! A single `difficulty ∈ [0, 1]` knob controls the noise level, warp
//! strength, and how much signal energy is shared between classes; it is
//! calibrated per named dataset in [`crate::archive`] so that accuracy
//! spreads resemble the paper's Table 2 (easy sets like `UWave` near the
//! top, hard ones like `Phoneme` near the bottom).

use crate::{LabeledDataset, Result, Splits, TimeSeries};
use lightts_tensor::rng::{derive_seed, seeded};
use lightts_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// The kinds of localized waveforms a prototype is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveformKind {
    /// `a · exp(−(t−c)²/2w²)`.
    GaussianBump,
    /// A windowed sinusoid: `a · sin(2πf(t−c)) · window`.
    SineBurst,
    /// A rising ramp inside the window.
    Sawtooth,
    /// A flat pulse inside the window.
    Square,
}

/// One localized waveform of a class prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    /// Shape family.
    pub kind: WaveformKind,
    /// Center position in normalized time `[0, 1]`.
    pub center: f32,
    /// Half-width in normalized time.
    pub width: f32,
    /// Peak amplitude.
    pub amplitude: f32,
    /// Oscillation frequency (cycles over the whole series) for
    /// [`WaveformKind::SineBurst`].
    pub freq: f32,
}

impl Waveform {
    /// Samples a random waveform.
    pub fn random<R: Rng>(rng: &mut R) -> Self {
        let kind = match rng.gen_range(0..4u8) {
            0 => WaveformKind::GaussianBump,
            1 => WaveformKind::SineBurst,
            2 => WaveformKind::Sawtooth,
            _ => WaveformKind::Square,
        };
        Waveform {
            kind,
            center: rng.gen_range(0.1..0.9),
            width: rng.gen_range(0.04..0.25),
            amplitude: rng.gen_range(0.5..1.5) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
            freq: rng.gen_range(2.0..12.0),
        }
    }

    /// Evaluates the waveform at normalized time `t ∈ [0, 1]`.
    pub fn eval(&self, t: f32) -> f32 {
        let d = t - self.center;
        match self.kind {
            WaveformKind::GaussianBump => {
                self.amplitude * (-d * d / (2.0 * self.width * self.width)).exp()
            }
            WaveformKind::SineBurst => {
                let window = (-d * d / (2.0 * self.width * self.width)).exp();
                self.amplitude * (2.0 * std::f32::consts::PI * self.freq * d).sin() * window
            }
            WaveformKind::Sawtooth => {
                if d.abs() <= self.width {
                    self.amplitude * (d / self.width)
                } else {
                    0.0
                }
            }
            WaveformKind::Square => {
                if d.abs() <= self.width {
                    self.amplitude
                } else {
                    0.0
                }
            }
        }
    }
}

/// A class prototype: a set of waveforms per observation dimension.
#[derive(Debug, Clone)]
pub struct ClassPrototype {
    per_dim: Vec<Vec<Waveform>>,
}

impl ClassPrototype {
    /// Samples a random prototype with `waveforms` components per dimension.
    pub fn random<R: Rng>(rng: &mut R, dims: usize, waveforms: usize) -> Self {
        let per_dim =
            (0..dims).map(|_| (0..waveforms).map(|_| Waveform::random(rng)).collect()).collect();
        ClassPrototype { per_dim }
    }

    /// Evaluates dimension `m` at normalized time `t`.
    pub fn eval(&self, m: usize, t: f32) -> f32 {
        self.per_dim[m].iter().map(|w| w.eval(t)).sum()
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.per_dim.len()
    }
}

/// Generation parameters for one synthetic dataset.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of classes `|L|`.
    pub classes: usize,
    /// Observation dimensionality `M`.
    pub dims: usize,
    /// Series length `C`.
    pub length: usize,
    /// Hardness in `[0, 1]`: drives noise, warping, and class overlap.
    pub difficulty: f32,
    /// Waveforms per class prototype (structural richness).
    pub waveforms: usize,
}

impl SynthConfig {
    fn noise_std(&self) -> f32 {
        0.15 + 1.2 * self.difficulty
    }

    fn warp(&self) -> f32 {
        0.02 + 0.12 * self.difficulty
    }

    fn shared_energy(&self) -> f32 {
        0.8 * self.difficulty
    }
}

/// The full generative model: per-class prototypes plus a shared confuser
/// component whose weight grows with difficulty.
#[derive(Debug, Clone)]
pub struct Generator {
    config: SynthConfig,
    prototypes: Vec<ClassPrototype>,
    shared: ClassPrototype,
}

impl Generator {
    /// Builds the class prototypes deterministically from `seed`.
    pub fn new(config: SynthConfig, seed: u64) -> Self {
        let prototypes = (0..config.classes)
            .map(|c| {
                let mut rng = seeded(derive_seed(seed, c as u64 + 1));
                ClassPrototype::random(&mut rng, config.dims, config.waveforms)
            })
            .collect();
        let mut shared_rng = seeded(derive_seed(seed, 0));
        let shared = ClassPrototype::random(&mut shared_rng, config.dims, config.waveforms);
        Generator { config, prototypes, shared }
    }

    /// The generation parameters.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Renders one sample of class `label` using `rng` for perturbations.
    pub fn sample(&self, label: usize, rng: &mut StdRng) -> Result<TimeSeries> {
        let cfg = &self.config;
        let proto = &self.prototypes[label];
        let (m, l) = (cfg.dims, cfg.length);
        // per-sample warp: time scale + shift
        let scale = 1.0 + rng.gen_range(-cfg.warp()..cfg.warp());
        let shift = rng.gen_range(-cfg.warp()..cfg.warp());
        let amp = 1.0 + rng.gen_range(-0.15f32..0.15) * (1.0 + cfg.difficulty);
        let noise = cfg.noise_std();
        let shared_w = cfg.shared_energy();

        let mut data = Vec::with_capacity(m * l);
        for mi in 0..m {
            for j in 0..l {
                let t = (j as f32 / (l.max(2) - 1) as f32 - 0.5) * scale + 0.5 + shift;
                let clean = proto.eval(mi, t) * amp + self.shared.eval(mi, t) * shared_w;
                let n: f32 = {
                    // Box–Muller using two uniforms
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                };
                data.push(clean + n * noise);
            }
        }
        TimeSeries::new(Tensor::from_vec(data, &[m, l])?).map(|s| s.z_normalized())
    }

    /// Generates a labeled split of `size` samples with balanced classes.
    pub fn split(&self, name: &str, size: usize, seed: u64) -> Result<LabeledDataset> {
        let mut rng = seeded(seed);
        let k = self.config.classes;
        let mut series = Vec::with_capacity(size);
        let mut labels = Vec::with_capacity(size);
        for i in 0..size {
            let label = i % k;
            series.push(self.sample(label, &mut rng)?);
            labels.push(label);
        }
        // interleave deterministically so batches are class-mixed
        let mut order: Vec<usize> = (0..size).collect();
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);
        let series = order.iter().map(|&i| series[i].clone()).collect();
        let labels = order.iter().map(|&i| labels[i]).collect();
        LabeledDataset::new(name, series, labels, k)
    }

    /// Generates the three standard splits with decorrelated seeds.
    pub fn splits(
        &self,
        name: &str,
        train: usize,
        validation: usize,
        test: usize,
        seed: u64,
    ) -> Result<Splits> {
        Ok(Splits {
            train: self.split(name, train, derive_seed(seed, 101))?,
            validation: self.split(name, validation, derive_seed(seed, 202))?,
            test: self.split(name, test, derive_seed(seed, 303))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(classes: usize, difficulty: f32) -> SynthConfig {
        SynthConfig { classes, dims: 1, length: 32, difficulty, waveforms: 3 }
    }

    #[test]
    fn generation_is_deterministic() {
        let g1 = Generator::new(cfg(3, 0.3), 42);
        let g2 = Generator::new(cfg(3, 0.3), 42);
        let a = g1.split("x", 12, 7).unwrap();
        let b = g2.split("x", 12, 7).unwrap();
        for i in 0..12 {
            assert_eq!(a.series(i).unwrap(), b.series(i).unwrap());
            assert_eq!(a.label(i).unwrap(), b.label(i).unwrap());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = Generator::new(cfg(3, 0.3), 42);
        let g2 = Generator::new(cfg(3, 0.3), 43);
        let a = g1.split("x", 4, 7).unwrap();
        let b = g2.split("x", 4, 7).unwrap();
        assert_ne!(a.series(0).unwrap(), b.series(0).unwrap());
    }

    #[test]
    fn classes_are_balanced() {
        let g = Generator::new(cfg(5, 0.2), 1);
        let ds = g.split("x", 50, 9).unwrap();
        for c in ds.class_counts() {
            assert_eq!(c, 10);
        }
    }

    #[test]
    fn samples_are_z_normalized() {
        let g = Generator::new(cfg(2, 0.5), 5);
        let ds = g.split("x", 6, 3).unwrap();
        let s = ds.series(0).unwrap();
        let mean = s.values().mean();
        assert!(mean.abs() < 1e-4, "mean was {mean}");
    }

    #[test]
    fn same_class_more_similar_than_cross_class_at_low_difficulty() {
        // With low difficulty, intra-class distance should typically be
        // smaller than inter-class distance — i.e. the labels carry signal.
        let g = Generator::new(
            SynthConfig { classes: 4, dims: 1, length: 48, difficulty: 0.1, waveforms: 3 },
            11,
        );
        let ds = g.split("x", 80, 13).unwrap();
        let dist = |a: usize, b: usize| {
            let sa = ds.series(a).unwrap().values();
            let sb = ds.series(b).unwrap().values();
            sa.sub(sb).unwrap().norm_sq()
        };
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..20 {
            for j in (i + 1)..20 {
                let d = dist(i, j);
                if ds.label(i).unwrap() == ds.label(j).unwrap() {
                    intra.push(d);
                } else {
                    inter.push(d);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&intra) < mean(&inter), "intra {} !< inter {}", mean(&intra), mean(&inter));
    }

    #[test]
    fn multivariate_generation() {
        let g = Generator::new(
            SynthConfig { classes: 2, dims: 3, length: 20, difficulty: 0.3, waveforms: 2 },
            3,
        );
        let s = g.splits("m", 8, 4, 8, 1).unwrap();
        assert_eq!(s.train.dims(), 3);
        assert_eq!(s.validation.len(), 4);
        assert_eq!(s.test.series_len(), 20);
    }

    #[test]
    fn waveforms_are_localized() {
        let w = Waveform {
            kind: WaveformKind::GaussianBump,
            center: 0.5,
            width: 0.05,
            amplitude: 1.0,
            freq: 0.0,
        };
        assert!(w.eval(0.5).abs() > 0.99);
        assert!(w.eval(0.0).abs() < 1e-5);
        let sq = Waveform { kind: WaveformKind::Square, ..w.clone() };
        assert_eq!(sq.eval(0.52), 1.0);
        assert_eq!(sq.eval(0.6), 0.0);
    }
}
