//! Forecasting datasets: sliding windows over long series.
//!
//! The paper notes (Section 3.2.1) that AED "can be applied to forecasting
//! by replacing the cross entropy term in Equation 2 by a forecasting error
//! term, e.g., mean square error". This module provides the data substrate
//! for that extension: a long (possibly multivariate) series is cut into
//! `(history window, horizon)` pairs, split chronologically into
//! train/validation/test so no future leaks into the past.

use crate::{DataError, Result};
use lightts_tensor::rng::{derive_seed, seeded};
use lightts_tensor::Tensor;
use rand::Rng;

/// A supervised forecasting dataset: inputs `[n, dims, history]` paired
/// with targets `[n, dims × horizon]` (horizon values per dimension,
/// flattened row-major).
#[derive(Debug, Clone)]
pub struct ForecastDataset {
    name: String,
    inputs: Tensor,
    targets: Tensor,
    dims: usize,
    history: usize,
    horizon: usize,
}

impl ForecastDataset {
    /// Number of `(window, horizon)` pairs.
    pub fn len(&self) -> usize {
        self.inputs.dims()[0]
    }

    /// Whether the dataset is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Input dimensionality `M`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// History window length.
    pub fn history(&self) -> usize {
        self.history
    }

    /// Forecast horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All input windows `[n, dims, history]`.
    pub fn inputs(&self) -> &Tensor {
        &self.inputs
    }

    /// All targets `[n, dims × horizon]`.
    pub fn targets(&self) -> &Tensor {
        &self.targets
    }

    /// The rows at `indices` as a `(inputs, targets)` batch.
    pub fn batch(&self, indices: &[usize]) -> Result<(Tensor, Tensor)> {
        if indices.is_empty() {
            return Err(DataError::Empty { op: "forecast batch" });
        }
        let (m, h) = (self.dims, self.history);
        let t_len = self.targets.dims()[1];
        let mut xin = Vec::with_capacity(indices.len() * m * h);
        let mut tout = Vec::with_capacity(indices.len() * t_len);
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::OutOfRange { index: i, len: self.len() });
            }
            xin.extend_from_slice(&self.inputs.data()[i * m * h..(i + 1) * m * h]);
            tout.extend_from_slice(&self.targets.data()[i * t_len..(i + 1) * t_len]);
        }
        Ok((
            Tensor::from_vec(xin, &[indices.len(), m, h])?,
            Tensor::from_vec(tout, &[indices.len(), t_len])?,
        ))
    }
}

/// Chronological train/validation/test split of a forecasting task.
#[derive(Debug, Clone)]
pub struct ForecastSplits {
    /// Earliest windows.
    pub train: ForecastDataset,
    /// Middle windows.
    pub validation: ForecastDataset,
    /// Latest windows.
    pub test: ForecastDataset,
}

/// Cuts a `[dims, length]` series into overlapping windows and splits them
/// chronologically with the given fractions.
pub fn windows_from_series(
    name: &str,
    series: &Tensor,
    history: usize,
    horizon: usize,
    stride: usize,
    val_frac: f64,
    test_frac: f64,
) -> Result<ForecastSplits> {
    if series.rank() != 2 {
        return Err(DataError::Inconsistent {
            what: "forecasting source must be [dims, length]".into(),
        });
    }
    if history == 0 || horizon == 0 || stride == 0 {
        return Err(DataError::Inconsistent {
            what: "history, horizon, stride must be positive".into(),
        });
    }
    let (m, l) = (series.dims()[0], series.dims()[1]);
    if l < history + horizon {
        return Err(DataError::Inconsistent {
            what: format!("series length {l} < history {history} + horizon {horizon}"),
        });
    }
    let starts: Vec<usize> = (0..=(l - history - horizon)).step_by(stride).collect();
    let n = starts.len();
    if n < 3 {
        return Err(DataError::Inconsistent { what: "too few windows for three splits".into() });
    }
    let mut xin = Vec::with_capacity(n * m * history);
    let mut tout = Vec::with_capacity(n * m * horizon);
    for &s in &starts {
        for mi in 0..m {
            let row = &series.data()[mi * l..(mi + 1) * l];
            xin.extend_from_slice(&row[s..s + history]);
        }
        for mi in 0..m {
            let row = &series.data()[mi * l..(mi + 1) * l];
            tout.extend_from_slice(&row[s + history..s + history + horizon]);
        }
    }
    let make = |name: &str, lo: usize, hi: usize| -> Result<ForecastDataset> {
        let rows = hi - lo;
        Ok(ForecastDataset {
            name: name.to_string(),
            inputs: Tensor::from_vec(
                xin[lo * m * history..hi * m * history].to_vec(),
                &[rows, m, history],
            )?,
            targets: Tensor::from_vec(
                tout[lo * m * horizon..hi * m * horizon].to_vec(),
                &[rows, m * horizon],
            )?,
            dims: m,
            history,
            horizon,
        })
    };
    let n_test = ((n as f64 * test_frac) as usize).max(1);
    let n_val = ((n as f64 * val_frac) as usize).max(1);
    let n_train = n.checked_sub(n_test + n_val).filter(|&t| t > 0).ok_or_else(|| {
        DataError::Inconsistent { what: "split fractions leave no training windows".into() }
    })?;
    Ok(ForecastSplits {
        train: make(name, 0, n_train)?,
        validation: make(&format!("{name}-val"), n_train, n_train + n_val)?,
        test: make(&format!("{name}-test"), n_train + n_val, n)?,
    })
}

/// Generates a synthetic long series with trend, multiple seasonalities,
/// and noise — a standard forecasting benchmark shape.
pub fn synthetic_series(dims: usize, length: usize, noise: f32, seed: u64) -> Tensor {
    let mut data = Vec::with_capacity(dims * length);
    for mi in 0..dims {
        let mut rng = seeded(derive_seed(seed, mi as u64));
        let trend: f32 = rng.gen_range(-0.5..0.5) / length as f32;
        let p1: f32 = rng.gen_range(8.0..24.0);
        let p2: f32 = rng.gen_range(30.0..90.0);
        let a1: f32 = rng.gen_range(0.5..1.5);
        let a2: f32 = rng.gen_range(0.2..0.8);
        let phase1: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let phase2: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        for t in 0..length {
            let tf = t as f32;
            let clean = trend * tf
                + a1 * (std::f32::consts::TAU * tf / p1 + phase1).sin()
                + a2 * (std::f32::consts::TAU * tf / p2 + phase2).sin();
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            data.push(clean + g * noise);
        }
    }
    Tensor::from_vec(data, &[dims, length]).expect("consistent construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_chronological_and_aligned() {
        // series 0..29: window (history 4, horizon 2) starting at s has
        // input [s..s+4] and target [s+4..s+6]
        let series = Tensor::from_vec((0..30).map(|x| x as f32).collect(), &[1, 30]).unwrap();
        let s = windows_from_series("lin", &series, 4, 2, 1, 0.2, 0.2).unwrap();
        let (x, y) = s.train.batch(&[0]).unwrap();
        assert_eq!(x.data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(y.data(), &[4.0, 5.0]);
        // the test split holds the latest windows
        let (xt, _) = s.test.batch(&[s.test.len() - 1]).unwrap();
        assert_eq!(xt.data()[0], (30 - 4 - 2) as f32);
        assert_eq!(s.train.len() + s.validation.len() + s.test.len(), 25);
    }

    #[test]
    fn multivariate_windows_keep_dims_separate() {
        let series = Tensor::from_vec(
            (0..20).map(|x| x as f32).chain((100..120).map(|x| x as f32)).collect(),
            &[2, 20],
        )
        .unwrap();
        let s = windows_from_series("mv", &series, 3, 1, 2, 0.2, 0.2).unwrap();
        let (x, y) = s.train.batch(&[0]).unwrap();
        assert_eq!(x.dims(), &[1, 2, 3]);
        assert_eq!(x.data(), &[0.0, 1.0, 2.0, 100.0, 101.0, 102.0]);
        assert_eq!(y.data(), &[3.0, 103.0]);
    }

    #[test]
    fn rejects_bad_parameters() {
        let series = Tensor::zeros(&[1, 10]);
        assert!(windows_from_series("x", &series, 0, 1, 1, 0.2, 0.2).is_err());
        assert!(windows_from_series("x", &series, 8, 4, 1, 0.2, 0.2).is_err());
        assert!(windows_from_series("x", &Tensor::zeros(&[10]), 2, 1, 1, 0.2, 0.2).is_err());
        // fractions that eat everything
        let long = Tensor::zeros(&[1, 30]);
        assert!(windows_from_series("x", &long, 4, 2, 1, 0.9, 0.9).is_err());
    }

    #[test]
    fn synthetic_series_is_deterministic_and_structured() {
        let a = synthetic_series(2, 200, 0.1, 5);
        let b = synthetic_series(2, 200, 0.1, 5);
        assert_eq!(a, b);
        let c = synthetic_series(2, 200, 0.1, 6);
        assert_ne!(a, c);
        // seasonal: autocorrelation should be visible (sanity: non-constant)
        assert!(a.max() - a.min() > 0.5);
    }

    #[test]
    fn batch_checks_bounds() {
        let series = synthetic_series(1, 60, 0.05, 1);
        let s = windows_from_series("x", &series, 8, 2, 2, 0.2, 0.2).unwrap();
        assert!(s.train.batch(&[s.train.len()]).is_err());
        assert!(s.train.batch(&[]).is_err());
    }
}
