//! # lightts-data
//!
//! Time-series dataset infrastructure for the LightTS reproduction: the
//! labeled-dataset model of paper Section 2.1, train/validation/test
//! splits, batching into `[batch, dims, length]` tensors, z-normalization,
//! and — because the UCR archive is not redistributable here — a
//! deterministic synthetic archive that regenerates every dataset of the
//! paper's Table 1 (classes, split sizes, lengths, dimensionality) plus a
//! 128-dataset analogue of the full UCR archive for the ranking experiments
//! (paper Figures 13–17).
//!
//! The synthesis model builds per-class prototypes from localized waveforms
//! (bumps, sine bursts, sawtooth and square segments) and perturbs them with
//! time warping, amplitude jitter, and additive noise controlled by a
//! per-dataset difficulty knob. What the LightTS experiments need from data
//! is (i) many classes, (ii) controllable hardness, (iii) fixed splits shared
//! by every compared method — all of which this generator provides.
//!
//! ```
//! use lightts_data::{archive, Scale};
//!
//! let spec = archive::table1_specs().into_iter().find(|s| s.name == "Adiac").unwrap();
//! let splits = spec.generate(Scale::quick());
//! assert_eq!(splits.train.num_classes(), 37);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod dataset;
mod error;
mod series;

pub mod archive;
pub mod forecast;
pub mod synth;
pub mod ucr;

pub use dataset::{Batch, LabeledDataset, Splits};
pub use error::DataError;
pub use series::TimeSeries;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DataError>;

/// Controls the scale of generated datasets so experiments run on a laptop
/// while preserving the paper's relative comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Fraction of the paper's split sizes to generate (`1.0` = paper scale).
    pub size_frac: f64,
    /// Hard cap on per-split sizes (after `size_frac`).
    pub max_per_split: usize,
    /// Minimum series per split (so tiny datasets stay usable).
    pub min_per_split: usize,
    /// Cap on series length (paper lengths up to 2000 are truncated to this).
    pub max_length: usize,
}

impl Scale {
    /// Laptop-scale: small splits, short series. The default for tests and
    /// `--scale quick` experiment runs.
    pub fn quick() -> Self {
        Scale { size_frac: 0.05, max_per_split: 160, min_per_split: 48, max_length: 64 }
    }

    /// Medium scale for `--scale full` experiment runs (still CPU-feasible).
    pub fn full() -> Self {
        Scale { size_frac: 0.25, max_per_split: 640, min_per_split: 64, max_length: 128 }
    }

    /// Applies the scale to a paper split size.
    pub fn split_size(&self, paper_size: usize) -> usize {
        ((paper_size as f64 * self.size_frac) as usize)
            .clamp(self.min_per_split, self.max_per_split)
    }

    /// Applies the scale to a paper series length.
    pub fn length(&self, paper_length: usize) -> usize {
        paper_length.min(self.max_length).max(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_clamps() {
        let s = Scale::quick();
        assert_eq!(s.split_size(16_800), 160);
        assert_eq!(s.split_size(10), 48);
        assert_eq!(s.length(2000), 64);
        assert_eq!(s.length(8), 16);
    }

    #[test]
    fn full_scale_is_larger_than_quick() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(f.split_size(5000) >= q.split_size(5000));
        assert!(f.length(1024) >= q.length(1024));
    }
}
