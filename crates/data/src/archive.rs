//! The synthetic archive: named analogues of the paper's Table 1 datasets
//! and a 128-dataset analogue of the full UCR archive.
//!
//! Every spec regenerates deterministically from a fixed per-name seed, so
//! every distillation method in every experiment sees byte-identical data —
//! the property the paper's comparisons rely on.

use crate::synth::{Generator, SynthConfig};
use crate::{Result, Scale, Splits};
use lightts_tensor::rng::{derive_seed, seeded};
use rand::Rng;

/// Application domain of a dataset (Table 1's "Domain" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Image-outline derived series.
    Images,
    /// Electrocardiograms.
    Ecg,
    /// Audio-derived series.
    Sound,
    /// Hemodynamics.
    BloodFlow,
    /// Motion capture / accelerometry.
    Motion,
    /// Generic sensor data (used by the full-archive analogue).
    Sensor,
}

impl Domain {
    /// Human-readable name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Domain::Images => "Images",
            Domain::Ecg => "ECG",
            Domain::Sound => "Sound",
            Domain::BloodFlow => "Blood flow",
            Domain::Motion => "Motion",
            Domain::Sensor => "Sensor",
        }
    }
}

/// A dataset specification: the paper-reported metadata plus the synthesis
/// difficulty calibrated to reproduce the dataset's observed hardness.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (Table 1).
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Paper train/validation/test sizes.
    pub paper_sizes: (usize, usize, usize),
    /// Observation dimensionality (`UWave` is 3-D; the rest univariate).
    pub dims: usize,
    /// Paper average series length.
    pub paper_length: usize,
    /// Application domain.
    pub domain: Domain,
    /// Synthesis hardness in `[0, 1]`.
    pub difficulty: f32,
    /// Deterministic generation seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the dataset's splits at the given scale.
    ///
    /// Split sizes are floored at twice the class count (train) and the
    /// class count (validation/test) so that every class is represented even
    /// under aggressive down-scaling.
    pub fn generate(&self, scale: Scale) -> Splits {
        self.try_generate(scale).expect("synthetic generation cannot fail for a valid spec")
    }

    /// Fallible variant of [`DatasetSpec::generate`].
    pub fn try_generate(&self, scale: Scale) -> Result<Splits> {
        let cfg = SynthConfig {
            classes: self.classes,
            dims: self.dims,
            length: scale.length(self.paper_length),
            difficulty: self.difficulty,
            waveforms: 4,
        };
        let gen = Generator::new(cfg, self.seed);
        let (tr, va, te) = self.paper_sizes;
        let train = scale.split_size(tr).max(2 * self.classes);
        let val = scale.split_size(va).max(self.classes);
        let test = scale.split_size(te).max(self.classes);
        gen.splits(&self.name, train, val, test, derive_seed(self.seed, 9))
    }
}

/// The nine named datasets of the paper's Table 1, with difficulty
/// calibrated to their observed hardness (Phoneme hardest, PigArt/UWave
/// easiest).
pub fn table1_specs() -> Vec<DatasetSpec> {
    let spec = |name: &str,
                classes: usize,
                sizes: (usize, usize, usize),
                dims: usize,
                len: usize,
                domain: Domain,
                difficulty: f32,
                seed: u64| DatasetSpec {
        name: name.to_string(),
        classes,
        paper_sizes: sizes,
        dims,
        paper_length: len,
        domain,
        difficulty,
        seed,
    };
    vec![
        spec("Adiac", 37, (312, 78, 391), 1, 176, Domain::Images, 0.50, 0xA01),
        spec("Crop", 27, (5720, 1440, 16800), 1, 46, Domain::Images, 0.45, 0xA02),
        spec("FaceAll", 14, (448, 112, 1690), 1, 131, Domain::Images, 0.42, 0xA03),
        spec("NonInvECG1", 42, (1440, 360, 1965), 1, 750, Domain::Ecg, 0.25, 0xA04),
        spec("NonInvECG2", 42, (1440, 360, 1965), 1, 750, Domain::Ecg, 0.27, 0xA05),
        spec("Phoneme", 39, (171, 43, 1896), 1, 1024, Domain::Sound, 0.92, 0xA06),
        spec("PigAirway", 52, (83, 19, 208), 1, 2000, Domain::BloodFlow, 0.68, 0xA07),
        spec("PigArt", 52, (83, 19, 208), 1, 2000, Domain::BloodFlow, 0.15, 0xA08),
        spec("UWave", 8, (1680, 560, 2241), 3, 315, Domain::Motion, 0.20, 0xA09),
    ]
}

/// Finds a Table 1 spec by name.
pub fn table1(name: &str) -> Option<DatasetSpec> {
    table1_specs().into_iter().find(|s| s.name == name)
}

/// A deterministic analogue of the full 128-dataset UCR archive: class
/// counts, lengths, and difficulties drawn from ranges matching the
/// archive's composition — 46% of datasets have 2–3 classes, as the paper
/// notes for Figure 17.
pub fn full_archive_specs(n: usize) -> Vec<DatasetSpec> {
    let mut rng = seeded(0xCAFE);
    let domains = [Domain::Images, Domain::Ecg, Domain::Sound, Domain::Motion, Domain::Sensor];
    (0..n)
        .map(|i| {
            let few_class = rng.gen_bool(0.46);
            let classes = if few_class { rng.gen_range(2..=3) } else { rng.gen_range(4..=52) };
            let length = rng.gen_range(40..=1200usize);
            let train = rng.gen_range(60..=2000usize);
            DatasetSpec {
                name: format!("Synth{i:03}"),
                classes,
                paper_sizes: (train, train / 4, train),
                dims: 1,
                paper_length: length,
                domain: domains[rng.gen_range(0..domains.len())],
                difficulty: rng.gen_range(0.1..0.9),
                seed: derive_seed(0xBEEF, i as u64),
            }
        })
        .collect()
}

/// The subset of an archive with 2 or 3 classes (paper Figure 17).
pub fn few_class_subset(specs: &[DatasetSpec]) -> Vec<DatasetSpec> {
    specs.iter().filter(|s| s.classes <= 3).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_metadata() {
        let specs = table1_specs();
        assert_eq!(specs.len(), 9);
        let adiac = table1("Adiac").unwrap();
        assert_eq!(adiac.classes, 37);
        assert_eq!(adiac.paper_sizes, (312, 78, 391));
        let uwave = table1("UWave").unwrap();
        assert_eq!(uwave.dims, 3, "UWave is multivariate in the paper");
        let pig = table1("PigAirway").unwrap();
        assert_eq!(pig.classes, 52);
    }

    #[test]
    fn generation_covers_all_classes() {
        let spec = table1("PigAirway").unwrap(); // 52 classes, tiny paper splits
        let splits = spec.generate(Scale::quick());
        assert_eq!(splits.num_classes(), 52);
        assert!(splits.train.class_counts().iter().all(|&c| c >= 1));
        assert!(splits.test.class_counts().iter().all(|&c| c >= 1));
    }

    #[test]
    fn generation_is_reproducible() {
        let spec = table1("Adiac").unwrap();
        let a = spec.generate(Scale::quick());
        let b = spec.generate(Scale::quick());
        assert_eq!(a.train.series(0).unwrap(), b.train.series(0).unwrap());
        assert_eq!(a.test.labels(), b.test.labels());
    }

    #[test]
    fn splits_are_disjoint_in_content() {
        // different split seeds ⇒ different perturbations; the first train
        // and test series of the same class must not be identical
        let spec = table1("FaceAll").unwrap();
        let s = spec.generate(Scale::quick());
        assert_ne!(s.train.series(0).unwrap(), s.test.series(0).unwrap());
    }

    #[test]
    fn full_archive_composition() {
        let specs = full_archive_specs(128);
        assert_eq!(specs.len(), 128);
        let few = few_class_subset(&specs);
        // paper: 46% of UCR datasets have 2–3 classes
        let frac = few.len() as f64 / 128.0;
        assert!((0.3..0.6).contains(&frac), "few-class fraction {frac}");
        // deterministic
        let again = full_archive_specs(128);
        assert_eq!(again[7].classes, specs[7].classes);
        assert_eq!(again[7].seed, specs[7].seed);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = full_archive_specs(50).into_iter().map(|s| s.name).collect();
        names.extend(table1_specs().into_iter().map(|s| s.name));
        let len = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), len);
    }
}
