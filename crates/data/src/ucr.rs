//! Loading real UCR-archive files.
//!
//! The reproduction ships a synthetic archive (the real one is not
//! redistributable), but the library is meant to be usable on the genuine
//! data: this module parses the UCR text format — one series per line,
//! `label` followed by the observations, separated by tabs, commas, or
//! whitespace — into [`LabeledDataset`]s, and carves the paper's validation
//! split (20% of train, Section 4.1.5) deterministically.
//!
//! ```no_run
//! use lightts_data::ucr;
//! let splits = ucr::load_ucr_pair(
//!     "UCRArchive_2018/Adiac/Adiac_TRAIN.tsv",
//!     "UCRArchive_2018/Adiac/Adiac_TEST.tsv",
//!     0.2,
//!     42,
//! ).unwrap();
//! ```

use crate::{DataError, LabeledDataset, Result, Splits, TimeSeries};
use rand::seq::SliceRandom;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::Path;

/// Parses UCR-format text from any reader into a dataset.
///
/// Labels are remapped to contiguous `0..K` in sorted order of their
/// original values (the UCR archive uses arbitrary integer labels, some
/// negative). Every series must have the same length; missing values are
/// rejected.
pub fn parse_ucr<R: BufRead>(reader: R, name: &str) -> Result<LabeledDataset> {
    let malformed =
        |line: usize, what: String| DataError::Malformed { name: name.to_string(), line, what };
    let mut raw_labels: Vec<i64> = Vec::new();
    let mut series: Vec<Vec<f32>> = Vec::new();
    let mut lines: Vec<usize> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| DataError::Inconsistent {
            what: format!("{name}:{}: read error: {e}", lineno + 1),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed
            .split(|c: char| c == '\t' || c == ',' || c.is_whitespace())
            .filter(|f| !f.is_empty())
            .collect();
        if fields.len() < 2 {
            return Err(malformed(lineno + 1, "need a label and observations".into()));
        }
        let label: i64 = parse_label(fields[0])
            .ok_or_else(|| malformed(lineno + 1, format!("bad label {:?}", fields[0])))?;
        let mut values = Vec::with_capacity(fields.len() - 1);
        for f in &fields[1..] {
            let v: f32 =
                f.parse().map_err(|_| malformed(lineno + 1, format!("bad value {f:?}")))?;
            if !v.is_finite() {
                return Err(malformed(
                    lineno + 1,
                    format!("non-finite value {f:?} (missing data are not supported)"),
                ));
            }
            values.push(v);
        }
        raw_labels.push(label);
        series.push(values);
        lines.push(lineno + 1);
    }
    if series.is_empty() {
        return Err(DataError::Empty { op: "parse_ucr" });
    }
    let len0 = series[0].len();
    if let Some(i) = series.iter().position(|s| s.len() != len0) {
        return Err(malformed(
            lines[i],
            format!(
                "series has {} observations but line {} has {len0} \
                 (variable-length series are not supported)",
                series[i].len(),
                lines[0]
            ),
        ));
    }
    // remap labels to 0..K in sorted order of the original values
    let mut uniq: Vec<i64> = raw_labels.clone();
    uniq.sort_unstable();
    uniq.dedup();
    let mapping: BTreeMap<i64, usize> = uniq.into_iter().enumerate().map(|(i, l)| (l, i)).collect();
    let labels: Vec<usize> = raw_labels.iter().map(|l| mapping[l]).collect();
    let ts: Vec<TimeSeries> =
        series.into_iter().map(TimeSeries::univariate).collect::<Result<_>>()?;
    LabeledDataset::new(name, ts, labels, mapping.len())
}

fn parse_label(field: &str) -> Option<i64> {
    // UCR labels are integers, but occasionally formatted as "1.0"
    field.parse::<i64>().ok().or_else(|| field.parse::<f64>().ok().map(|f| f.round() as i64))
}

/// Loads a UCR-format file from disk.
pub fn load_ucr_file(path: impl AsRef<Path>) -> Result<LabeledDataset> {
    let path = path.as_ref();
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("ucr").to_string();
    let file = std::fs::File::open(path)
        .map_err(|e| DataError::Inconsistent { what: format!("{}: {e}", path.display()) })?;
    parse_ucr(std::io::BufReader::new(file), &name)
}

/// Splits a training set into train/validation, stratified-free but
/// deterministic, holding out `val_frac` of the rows.
pub fn carve_validation(
    train: &LabeledDataset,
    val_frac: f64,
    seed: u64,
) -> Result<(LabeledDataset, LabeledDataset)> {
    if !(0.0..1.0).contains(&val_frac) {
        return Err(DataError::Inconsistent { what: "val_frac must be in [0, 1)".into() });
    }
    let n = train.len();
    let n_val = ((n as f64 * val_frac) as usize).clamp(1, n - 1);
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = lightts_tensor::rng::seeded(seed);
    idx.shuffle(&mut rng);
    let (val_idx, train_idx) = idx.split_at(n_val);
    let pick = |ids: &[usize], name: &str| -> Result<LabeledDataset> {
        let series = ids.iter().map(|&i| train.series(i).cloned()).collect::<Result<Vec<_>>>()?;
        let labels = ids.iter().map(|&i| train.label(i)).collect::<Result<Vec<_>>>()?;
        LabeledDataset::new(name, series, labels, train.num_classes())
    };
    Ok((pick(train_idx, train.name())?, pick(val_idx, &format!("{}-val", train.name()))?))
}

/// Loads a UCR `_TRAIN`/`_TEST` file pair, z-normalizes, and carves the
/// validation split — everything the LightTS pipeline needs.
pub fn load_ucr_pair(
    train_path: impl AsRef<Path>,
    test_path: impl AsRef<Path>,
    val_frac: f64,
    seed: u64,
) -> Result<Splits> {
    let train_full = load_ucr_file(train_path)?.z_normalized();
    let test = load_ucr_file(test_path)?.z_normalized();
    if test.num_classes() > train_full.num_classes() {
        return Err(DataError::Inconsistent {
            what: "test set has labels unseen in training".into(),
        });
    }
    let (train, validation) = carve_validation(&train_full, val_frac, seed)?;
    Ok(Splits { train, validation, test })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE_TSV: &str = "1\t0.1\t0.2\t0.3\n2\t1.0\t1.1\t1.2\n1\t0.0\t0.1\t0.2\n";

    #[test]
    fn parses_tab_separated() {
        let ds = parse_ucr(Cursor::new(SAMPLE_TSV), "sample").unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.series_len(), 3);
        assert_eq!(ds.labels(), &[0, 1, 0]);
        assert_eq!(ds.series(1).unwrap().get(0, 2).unwrap(), 1.2);
    }

    #[test]
    fn parses_comma_and_space_separated() {
        let csv = "3,0.5,0.6\n-1,0.7,0.8\n";
        let ds = parse_ucr(Cursor::new(csv), "csv").unwrap();
        assert_eq!(ds.num_classes(), 2);
        // labels sorted: -1 → 0, 3 → 1
        assert_eq!(ds.labels(), &[1, 0]);

        let ssv = "1.0 0.5 0.6\n2.0 0.7 0.8\n";
        let ds = parse_ucr(Cursor::new(ssv), "ssv").unwrap();
        assert_eq!(ds.labels(), &[0, 1]);
    }

    #[test]
    fn skips_blank_lines() {
        let txt = "1\t0.1\t0.2\n\n2\t0.3\t0.4\n\n";
        let ds = parse_ucr(Cursor::new(txt), "blank").unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_ucr(Cursor::new(""), "empty").is_err());
        assert!(parse_ucr(Cursor::new("1\n"), "no-values").is_err());
        assert!(parse_ucr(Cursor::new("x\t1.0\t2.0\n"), "bad-label").is_err());
        assert!(parse_ucr(Cursor::new("1\t1.0\tzzz\n"), "bad-value").is_err());
        assert!(parse_ucr(Cursor::new("1\t1.0\tNaN\n"), "nan").is_err());
        assert!(parse_ucr(Cursor::new("1\t1.0\t2.0\n2\t1.0\n"), "ragged").is_err());
    }

    #[test]
    fn malformed_content_carries_name_and_line() {
        // NaN / Inf observations: typed, with the 1-based offending line.
        let err = parse_ucr(Cursor::new("1\t0.1\t0.2\n2\tNaN\t0.4\n"), "nan").unwrap_err();
        match err {
            DataError::Malformed { ref name, line, ref what } => {
                assert_eq!(name, "nan");
                assert_eq!(line, 2);
                assert!(what.contains("non-finite"), "unexpected message: {what}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        let err = parse_ucr(Cursor::new("1\t0.1\t0.2\n2\t-inf\t0.4\n"), "inf").unwrap_err();
        assert!(matches!(err, DataError::Malformed { line: 2, .. }), "got {err:?}");

        // Ragged rows: the error names the line whose length disagrees,
        // even with blank lines shifting the physical line numbers.
        let err =
            parse_ucr(Cursor::new("1\t0.1\t0.2\t0.3\n\n2\t0.4\t0.5\n"), "ragged").unwrap_err();
        match err {
            DataError::Malformed { ref name, line, ref what } => {
                assert_eq!(name, "ragged");
                assert_eq!(line, 3);
                assert!(what.contains("variable-length"), "unexpected message: {what}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }

        // Unparsable fields and truncated rows are typed the same way.
        let err = parse_ucr(Cursor::new("1\t0.1\nx\t0.2\n"), "label").unwrap_err();
        assert!(matches!(err, DataError::Malformed { line: 2, .. }), "got {err:?}");
        let err = parse_ucr(Cursor::new("1\t0.1\n2\n"), "short").unwrap_err();
        assert!(matches!(err, DataError::Malformed { line: 2, .. }), "got {err:?}");
    }

    #[test]
    fn malformed_fixture_file_is_a_typed_locatable_error() {
        let dir = std::env::temp_dir().join("lightts-ucr-malformed-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("Broken_TRAIN.tsv");
        std::fs::write(&bad, "1\t0.1\t0.2\t0.3\n2\t0.4\tNaN\t0.6\n").unwrap();
        let err = load_ucr_file(&bad).unwrap_err();
        match err {
            DataError::Malformed { ref name, line, .. } => {
                assert_eq!(name, "Broken_TRAIN");
                assert_eq!(line, 2);
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // The rendered message is enough to locate the bad row by hand.
        assert!(err.to_string().contains("Broken_TRAIN line 2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn carve_validation_is_deterministic_and_disjoint() {
        let ds = parse_ucr(
            Cursor::new("1\t0.0\t1.0\n2\t2.0\t3.0\n1\t4.0\t5.0\n2\t6.0\t7.0\n1\t8.0\t9.0\n"),
            "carve",
        )
        .unwrap();
        let (t1, v1) = carve_validation(&ds, 0.2, 9).unwrap();
        let (t2, v2) = carve_validation(&ds, 0.2, 9).unwrap();
        assert_eq!(t1.len() + v1.len(), ds.len());
        assert_eq!(v1.len(), 1);
        assert_eq!(t1.labels(), t2.labels());
        assert_eq!(v1.labels(), v2.labels());
        assert!(carve_validation(&ds, 1.5, 0).is_err());
    }

    #[test]
    fn file_roundtrip_via_tempdir() {
        let dir = std::env::temp_dir().join("lightts-ucr-test");
        std::fs::create_dir_all(&dir).unwrap();
        let train_p = dir.join("Toy_TRAIN.tsv");
        let test_p = dir.join("Toy_TEST.tsv");
        std::fs::write(&train_p, "1\t0.1\t0.2\t0.9\n2\t5.0\t6.0\t7.0\n1\t0.0\t0.3\t0.8\n2\t5.5\t6.5\t7.5\n1\t0.2\t0.1\t1.0\n").unwrap();
        std::fs::write(&test_p, "1\t0.15\t0.25\t0.95\n2\t5.2\t6.2\t7.2\n").unwrap();
        let splits = load_ucr_pair(&train_p, &test_p, 0.2, 1).unwrap();
        assert_eq!(splits.num_classes(), 2);
        assert_eq!(splits.test.len(), 2);
        assert_eq!(splits.train.len() + splits.validation.len(), 5);
        // z-normalized: per-series mean ≈ 0
        assert!(splits.test.series(0).unwrap().values().mean().abs() < 1e-5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        assert!(load_ucr_file("/nonexistent/path/X_TRAIN.tsv").is_err());
    }
}
