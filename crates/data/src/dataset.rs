//! Labeled datasets, splits, and batching (paper Sections 2.1.2–2.1.3).

use crate::{DataError, Result, TimeSeries};
use lightts_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A batch of series ready for a classifier: a `[batch, dims, length]`
/// tensor plus the ground-truth label per row.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input tensor `[batch, dims, length]`.
    pub inputs: Tensor,
    /// Ground-truth class per row.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of series in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// A labeled time-series set `D = {(T_i, l_i)}` (paper Section 2.1.2).
///
/// All series in a dataset share the same dimensionality and length
/// (UCR-style), which lets batches be dense tensors.
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    name: String,
    series: Vec<TimeSeries>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl LabeledDataset {
    /// Creates a dataset, validating label range and shape uniformity.
    pub fn new(
        name: impl Into<String>,
        series: Vec<TimeSeries>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self> {
        if series.len() != labels.len() {
            return Err(DataError::Inconsistent {
                what: format!("{} series but {} labels", series.len(), labels.len()),
            });
        }
        if series.is_empty() {
            return Err(DataError::Empty { op: "LabeledDataset::new" });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::Inconsistent {
                what: format!("label {bad} out of {num_classes} classes"),
            });
        }
        let (d0, l0) = (series[0].dims(), series[0].len());
        if series.iter().any(|s| s.dims() != d0 || s.len() != l0) {
            return Err(DataError::Inconsistent {
                what: "all series must share dims and length".into(),
            });
        }
        Ok(LabeledDataset { name: name.into(), series, labels, num_classes })
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of `(series, label)` pairs.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the dataset is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Number of classes `|L|`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Observation dimensionality `M`.
    pub fn dims(&self) -> usize {
        self.series[0].dims()
    }

    /// Series length `C`.
    pub fn series_len(&self) -> usize {
        self.series[0].len()
    }

    /// The `i`-th series.
    pub fn series(&self, i: usize) -> Result<&TimeSeries> {
        self.series.get(i).ok_or(DataError::OutOfRange { index: i, len: self.series.len() })
    }

    /// The `i`-th label.
    pub fn label(&self, i: usize) -> Result<usize> {
        self.labels
            .get(i)
            .copied()
            .ok_or(DataError::OutOfRange { index: i, len: self.labels.len() })
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Assembles the rows at `indices` into a dense batch.
    pub fn batch(&self, indices: &[usize]) -> Result<Batch> {
        if indices.is_empty() {
            return Err(DataError::Empty { op: "batch" });
        }
        let (m, l) = (self.dims(), self.series_len());
        let mut data = Vec::with_capacity(indices.len() * m * l);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let s = self.series(i)?;
            data.extend_from_slice(s.values().data());
            labels.push(self.label(i)?);
        }
        Ok(Batch { inputs: Tensor::from_vec(data, &[indices.len(), m, l])?, labels })
    }

    /// The whole dataset as one batch.
    pub fn full_batch(&self) -> Result<Batch> {
        let idx: Vec<usize> = (0..self.len()).collect();
        self.batch(&idx)
    }

    /// Yields shuffled mini-batches covering the dataset once.
    pub fn minibatches<R: Rng>(&self, rng: &mut R, batch_size: usize) -> Result<Vec<Batch>> {
        if batch_size == 0 {
            return Err(DataError::Inconsistent { what: "batch_size must be > 0".into() });
        }
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.chunks(batch_size).map(|c| self.batch(c)).collect()
    }

    /// Returns a copy with every series z-normalized per dimension.
    pub fn z_normalized(&self) -> Self {
        LabeledDataset {
            name: self.name.clone(),
            series: self.series.iter().map(TimeSeries::z_normalized).collect(),
            labels: self.labels.clone(),
            num_classes: self.num_classes,
        }
    }

    /// Per-class counts (useful for stratification checks).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

/// The train/validation/test partition of a dataset (paper Table 1).
#[derive(Debug, Clone)]
pub struct Splits {
    /// Training split (inner-level AED optimization, Eq. 4).
    pub train: LabeledDataset,
    /// Validation split (outer-level λ optimization, Eq. 3).
    pub validation: LabeledDataset,
    /// Held-out test split (all reported accuracies).
    pub test: LabeledDataset,
}

impl Splits {
    /// The shared number of classes.
    pub fn num_classes(&self) -> usize {
        self.train.num_classes()
    }

    /// The shared dataset name.
    pub fn name(&self) -> &str {
        self.train.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::rng::seeded;

    fn toy(n: usize, classes: usize) -> LabeledDataset {
        let series = (0..n)
            .map(|i| TimeSeries::univariate(vec![i as f32, 1.0, 2.0, 3.0]).unwrap())
            .collect();
        let labels = (0..n).map(|i| i % classes).collect();
        LabeledDataset::new("toy", series, labels, classes).unwrap()
    }

    #[test]
    fn construction_validates() {
        let s = vec![TimeSeries::univariate(vec![1.0, 2.0]).unwrap()];
        assert!(LabeledDataset::new("x", s.clone(), vec![0, 1], 2).is_err()); // count mismatch
        assert!(LabeledDataset::new("x", s.clone(), vec![5], 2).is_err()); // label range
        assert!(LabeledDataset::new("x", s, vec![1], 2).is_ok());
    }

    #[test]
    fn mixed_lengths_rejected() {
        let s = vec![
            TimeSeries::univariate(vec![1.0, 2.0]).unwrap(),
            TimeSeries::univariate(vec![1.0, 2.0, 3.0]).unwrap(),
        ];
        assert!(LabeledDataset::new("x", s, vec![0, 0], 1).is_err());
    }

    #[test]
    fn batch_layout() {
        let ds = toy(6, 3);
        let b = ds.batch(&[0, 3]).unwrap();
        assert_eq!(b.inputs.dims(), &[2, 1, 4]);
        assert_eq!(b.labels, vec![0, 0]);
        assert_eq!(b.inputs.get(&[1, 0, 0]).unwrap(), 3.0);
    }

    #[test]
    fn minibatches_cover_everything_once() {
        let ds = toy(10, 2);
        let mut rng = seeded(3);
        let batches = ds.minibatches(&mut rng, 3).unwrap();
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 10);
        assert_eq!(batches.len(), 4); // 3+3+3+1
    }

    #[test]
    fn class_counts_sum_to_len() {
        let ds = toy(10, 3);
        let counts = ds.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn batch_rejects_bad_index() {
        let ds = toy(4, 2);
        assert!(ds.batch(&[9]).is_err());
        assert!(ds.batch(&[]).is_err());
    }

    #[test]
    fn z_normalized_preserves_structure() {
        let ds = toy(4, 2);
        let z = ds.z_normalized();
        assert_eq!(z.len(), 4);
        assert_eq!(z.num_classes(), 2);
        assert_eq!(z.series_len(), 4);
    }
}
