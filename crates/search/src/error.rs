//! Error type for the search crate.

use lightts_models::ModelError;
use lightts_nn::NnError;
use lightts_tensor::TensorError;
use std::fmt;

/// Errors produced by search-space handling, GP fitting, and MOBO.
#[derive(Debug)]
pub enum SearchError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying layer/optimizer operation failed.
    Nn(NnError),
    /// An underlying model operation failed.
    Model(ModelError),
    /// An invalid search-space or optimizer configuration.
    BadConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// The injected accuracy evaluator failed.
    Evaluator {
        /// Stringified evaluator error.
        what: String,
    },
    /// Writing or reading a search checkpoint failed (I/O error, corrupted
    /// snapshot, or a snapshot from an incompatible run).
    Checkpoint {
        /// Description of the failure.
        what: String,
    },
    /// An injected fault fired (a `lightts_obs::failpoint` with an `err`
    /// action) — only ever seen under chaos testing.
    Fault {
        /// The failpoint's description of the injection.
        what: String,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::Nn(e) => write!(f, "nn error: {e}"),
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::BadConfig { what } => write!(f, "bad search configuration: {what}"),
            Self::Evaluator { what } => write!(f, "accuracy evaluator failed: {what}"),
            Self::Checkpoint { what } => write!(f, "checkpoint error: {what}"),
            Self::Fault { what } => write!(f, "injected fault: {what}"),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Tensor(e) => Some(e),
            Self::Nn(e) => Some(e),
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SearchError {
    fn from(e: TensorError) -> Self {
        SearchError::Tensor(e)
    }
}

impl From<NnError> for SearchError {
    fn from(e: NnError) -> Self {
        SearchError::Nn(e)
    }
}

impl From<ModelError> for SearchError {
    fn from(e: ModelError) -> Self {
        SearchError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_works() {
        let e = SearchError::BadConfig { what: "empty space".into() };
        assert!(e.to_string().contains("empty space"));
    }
}
