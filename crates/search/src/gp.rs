//! Gaussian-process regression (paper Eqs. 8–9).
//!
//! The GP estimates the AED accuracy of unevaluated settings from the `P`
//! (growing to `Q`) evaluated ones, with the squared-exponential kernel
//! `κ(x_i, x_j) = θ_f · exp(−‖x_i − x_j‖² / 2Θ²)`. Hyper-parameters use the
//! standard heuristics: `Θ` = median pairwise distance of the inputs (the
//! "median trick"), `θ_f` = variance of the observations; a diagonal jitter
//! keeps the Cholesky factorization stable. The posterior mean/variance
//! formulas are exactly the paper's Eq. 9.

use crate::{Result, SearchError};
use lightts_tensor::linalg::{dist_sq, Cholesky};
use lightts_tensor::Tensor;

/// A fitted Gaussian process mapping feature vectors to a scalar.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    x: Vec<Vec<f32>>,
    y_mean: f32,
    theta_f: f32,
    length_scale: f32,
    chol: Cholesky,
    alpha: Vec<f32>,
}

impl GaussianProcess {
    /// Fits a GP on inputs `x` and targets `y`.
    pub fn fit(x: Vec<Vec<f32>>, y: &[f32]) -> Result<Self> {
        if x.is_empty() || x.len() != y.len() {
            return Err(SearchError::BadConfig {
                what: format!("GP fit: {} inputs vs {} targets", x.len(), y.len()),
            });
        }
        let d = x[0].len();
        if d == 0 || x.iter().any(|xi| xi.len() != d) {
            return Err(SearchError::BadConfig { what: "GP fit: ragged inputs".into() });
        }
        let n = x.len();
        let y_mean = y.iter().sum::<f32>() / n as f32;
        let y_var = y.iter().map(|&v| (v - y_mean) * (v - y_mean)).sum::<f32>() / n as f32;
        let theta_f = y_var.max(1e-4);

        // median pairwise distance heuristic for the length scale
        let mut dists: Vec<f32> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                dists.push(dist_sq(&x[i], &x[j]).sqrt());
            }
        }
        dists.sort_by(|a, b| a.total_cmp(b));
        let length_scale = if dists.is_empty() { 1.0 } else { dists[dists.len() / 2].max(1e-3) };

        let kernel = |a: &[f32], b: &[f32]| -> f32 {
            theta_f * (-dist_sq(a, b) / (2.0 * length_scale * length_scale)).exp()
        };
        let jitter = 1e-4 * theta_f;
        let mut k = Tensor::zeros(&[n, n]);
        for i in 0..n {
            for j in 0..n {
                let mut v = kernel(&x[i], &x[j]);
                if i == j {
                    v += jitter;
                }
                k.set(&[i, j], v)?;
            }
        }
        let chol = cholesky_with_growing_jitter(&k, n, jitter)?;
        let yc: Vec<f32> = y.iter().map(|&v| v - y_mean).collect();
        let alpha = chol.solve(&yc)?;
        Ok(GaussianProcess { x, y_mean, theta_f, length_scale, chol, alpha })
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the GP has no training points (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    #[inline]
    fn kernel(&self, a: &[f32], b: &[f32]) -> f32 {
        self.theta_f * (-dist_sq(a, b) / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    /// Posterior predictive mean and variance at `x_star` (paper Eq. 9).
    pub fn predict(&self, x_star: &[f32]) -> Result<(f32, f32)> {
        if x_star.len() != self.x[0].len() {
            return Err(SearchError::BadConfig {
                what: format!(
                    "GP predict: input dim {} != trained dim {}",
                    x_star.len(),
                    self.x[0].len()
                ),
            });
        }
        let k_star: Vec<f32> = self.x.iter().map(|xi| self.kernel(x_star, xi)).collect();
        let mean =
            self.y_mean + k_star.iter().zip(self.alpha.iter()).map(|(&a, &b)| a * b).sum::<f32>();
        // σ² = κ(x*,x*) − vᵀv with v = L⁻¹ k*
        let v = self.chol.solve_lower(&k_star)?;
        let var = (self.kernel(x_star, x_star) - v.iter().map(|&x| x * x).sum::<f32>()).max(1e-9);
        Ok((mean, var))
    }
}

fn cholesky_with_growing_jitter(k: &Tensor, n: usize, base: f32) -> Result<Cholesky> {
    let mut extra = 0.0f32;
    for _ in 0..6 {
        let mut kj = k.clone();
        if extra > 0.0 {
            for i in 0..n {
                let v = kj.data()[i * n + i] + extra;
                kj.data_mut()[i * n + i] = v;
            }
        }
        match Cholesky::new(&kj) {
            Ok(c) => return Ok(c),
            Err(_) => extra = if extra == 0.0 { base.max(1e-6) } else { extra * 10.0 },
        }
    }
    Err(SearchError::BadConfig { what: "GP kernel matrix is not factorizable".into() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::rng::seeded;
    use rand::Rng;

    #[test]
    fn interpolates_training_points() {
        let x = vec![vec![0.0f32], vec![1.0], vec![2.0], vec![3.0]];
        let y = [0.0f32, 1.0, 0.0, -1.0];
        let gp = GaussianProcess::fit(x.clone(), &y).unwrap();
        for (xi, &yi) in x.iter().zip(y.iter()) {
            let (m, v) = gp.predict(xi).unwrap();
            assert!((m - yi).abs() < 0.05, "mean {m} vs {yi}");
            assert!(v < 0.05, "variance at a training point should be small: {v}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = vec![vec![0.0f32], vec![1.0]];
        let y = [0.5f32, 0.7];
        let gp = GaussianProcess::fit(x, &y).unwrap();
        let (_, v_near) = gp.predict(&[0.5]).unwrap();
        let (_, v_far) = gp.predict(&[10.0]).unwrap();
        assert!(v_far > v_near, "{v_far} !> {v_near}");
    }

    #[test]
    fn far_prediction_reverts_to_mean() {
        let x = vec![vec![0.0f32], vec![1.0]];
        let y = [0.2f32, 0.8];
        let gp = GaussianProcess::fit(x, &y).unwrap();
        let (m, _) = gp.predict(&[100.0]).unwrap();
        assert!((m - 0.5).abs() < 1e-3, "far mean {m} should be the prior mean");
    }

    #[test]
    fn learns_smooth_function_better_than_mean_baseline() {
        let mut rng = seeded(5);
        let f = |x: f32| (x * 1.7).sin() * 0.4 + 0.5;
        let xs: Vec<Vec<f32>> = (0..30).map(|_| vec![rng.gen_range(0.0f32..3.0)]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| f(x[0])).collect();
        let gp = GaussianProcess::fit(xs, &ys).unwrap();
        let mean = ys.iter().sum::<f32>() / ys.len() as f32;
        let mut gp_err = 0.0f32;
        let mut mean_err = 0.0f32;
        for i in 0..50 {
            let x = i as f32 * 3.0 / 50.0;
            let (m, _) = gp.predict(&[x]).unwrap();
            gp_err += (m - f(x)).abs();
            mean_err += (mean - f(x)).abs();
        }
        assert!(gp_err < 0.5 * mean_err, "GP {gp_err} vs mean baseline {mean_err}");
    }

    #[test]
    fn duplicate_points_do_not_break_factorization() {
        let x = vec![vec![1.0f32, 2.0]; 5];
        let y = [0.3f32; 5];
        let gp = GaussianProcess::fit(x, &y).unwrap();
        let (m, _) = gp.predict(&[1.0, 2.0]).unwrap();
        assert!((m - 0.3).abs() < 0.05);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(GaussianProcess::fit(vec![], &[]).is_err());
        assert!(GaussianProcess::fit(vec![vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(GaussianProcess::fit(vec![vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]).is_err());
        let gp = GaussianProcess::fit(vec![vec![1.0]], &[0.5]).unwrap();
        assert!(gp.predict(&[1.0, 2.0]).is_err());
    }
}
