//! The Expected Improvement acquisition function (\[10, 11\] in the paper).
//!
//! Given the GP's posterior `N(μ, σ²)` for the scalarized joint objective
//! `g(x) = β·f(x) − (1−β)·Size(x)` and the best objective value observed so
//! far, EI scores how much improvement a candidate is expected to deliver:
//!
//! ```text
//! EI(x) = (μ − g⁺)·Φ(z) + σ·φ(z),   z = (μ − g⁺)/σ
//! ```
//!
//! where `Φ`/`φ` are the standard normal CDF/PDF (implemented via an `erf`
//! approximation — no external special-function crate).

/// Abramowitz–Stegun 7.1.26 approximation of the error function
/// (|error| < 1.5e-7).
pub fn erf(x: f32) -> f32 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_6
            + t * (-0.284_496_72 + t * (1.421_413_8 + t * (-1.453_152_1 + t * 1.061_405_4))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function.
#[inline]
pub fn normal_cdf(z: f32) -> f32 {
    0.5 * (1.0 + erf(z / std::f32::consts::SQRT_2))
}

/// Standard normal probability density function.
#[inline]
pub fn normal_pdf(z: f32) -> f32 {
    (-0.5 * z * z).exp() / (2.0 * std::f32::consts::PI).sqrt()
}

/// Expected improvement of a Gaussian `N(mean, var)` over the incumbent
/// `best`. Returns 0 for a degenerate (zero-variance) posterior that cannot
/// improve.
pub fn expected_improvement(mean: f32, var: f32, best: f32) -> f32 {
    let sigma = var.max(0.0).sqrt();
    if sigma < 1e-9 {
        return (mean - best).max(0.0);
    }
    let z = (mean - best) / sigma;
    ((mean - best) * normal_cdf(z) + sigma * normal_pdf(z)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_8).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_8).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        for z in [-2.0f32, -0.5, 0.7, 1.5] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-5);
        }
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn ei_is_positive_and_monotone_in_mean() {
        let e1 = expected_improvement(0.5, 0.04, 0.6);
        let e2 = expected_improvement(0.7, 0.04, 0.6);
        assert!(e2 > e1, "{e2} !> {e1}");
        assert!(e1 > 0.0, "EI is positive whenever σ > 0");
    }

    #[test]
    fn ei_grows_with_uncertainty_below_incumbent() {
        // when mean < best, more variance ⇒ more expected improvement
        let low = expected_improvement(0.4, 0.01, 0.6);
        let high = expected_improvement(0.4, 0.25, 0.6);
        assert!(high > low);
    }

    #[test]
    fn degenerate_variance_falls_back_to_relu() {
        assert!((expected_improvement(0.7, 0.0, 0.6) - 0.1).abs() < 1e-6);
        assert_eq!(expected_improvement(0.5, 0.0, 0.6), 0.0);
    }
}
