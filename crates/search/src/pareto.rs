//! Pareto domination and skyline computation (paper Section 3.3.2, Eq. 7).
//!
//! A setting dominates another when it is at least as good on both
//! objectives (higher accuracy, smaller size) and strictly better on one.
//! Two skyline algorithms are provided: the `O(n log n)` sort-scan used
//! throughout the library, and the classic block-nested-loop operator of
//! the cited skyline paper \[5\] — both must agree (property-tested), and the
//! micro-benchmarks compare them.

use crate::StudentSetting;

/// A setting with its measured accuracy and computed size — the tuple `s`
/// of paper Eq. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// The student setting `x`.
    pub setting: StudentSetting,
    /// AED-measured accuracy (validation).
    pub accuracy: f64,
    /// Model size in bits.
    pub size_bits: u64,
}

/// Whether `a` dominates `b`: better or equal on both objectives and
/// strictly better on at least one.
pub fn dominates(a: &Evaluated, b: &Evaluated) -> bool {
    let no_worse = a.accuracy >= b.accuracy && a.size_bits <= b.size_bits;
    let strictly_better = a.accuracy > b.accuracy || a.size_bits < b.size_bits;
    no_worse && strictly_better
}

/// Pareto frontier via sort-scan: sort by size ascending (accuracy
/// descending as tie-break), then keep points that beat the running maximum
/// accuracy. `O(n log n)`.
pub fn pareto_frontier(points: &[Evaluated]) -> Vec<Evaluated> {
    let mut sorted: Vec<&Evaluated> = points.iter().collect();
    sorted.sort_by(|a, b| a.size_bits.cmp(&b.size_bits).then(b.accuracy.total_cmp(&a.accuracy)));
    let mut out: Vec<Evaluated> = Vec::new();
    let mut best_acc = f64::NEG_INFINITY;
    for p in sorted {
        if p.accuracy > best_acc {
            out.push(p.clone());
            best_acc = p.accuracy;
        }
    }
    out
}

/// Pareto frontier via the block-nested-loop skyline operator (\[5\]): keep a
/// window of incomparable points, evicting dominated ones. `O(n²)` worst
/// case but cache-friendly and simple; used as the reference implementation.
pub fn skyline_bnl(points: &[Evaluated]) -> Vec<Evaluated> {
    let mut window: Vec<Evaluated> = Vec::new();
    'outer: for p in points {
        let mut i = 0;
        while i < window.len() {
            if dominates(&window[i], p) {
                continue 'outer; // p is dominated: discard
            }
            if dominates(p, &window[i]) {
                window.swap_remove(i); // p evicts a dominated point
            } else {
                i += 1;
            }
        }
        // drop exact duplicates on both objectives
        if !window.iter().any(|w| w.accuracy == p.accuracy && w.size_bits == p.size_bits) {
            window.push(p.clone());
        }
    }
    window.sort_by_key(|a| a.size_bits);
    window
}

/// The best (highest-accuracy) frontier point within a size budget — the
/// paper's device-selection query ("Device #1 with a memory constraint of
/// 100K ⇒ Model U").
pub fn best_under_budget(frontier: &[Evaluated], max_size_bits: u64) -> Option<&Evaluated> {
    frontier
        .iter()
        .filter(|p| p.size_bits <= max_size_bits)
        .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
}

/// 2-D hypervolume of a frontier against a reference point
/// `(ref_size_bits, ref_accuracy = 0)`: the area dominated by the frontier.
/// Larger is better; used to compare Random vs. MOBO vs. Encoded MOBO
/// frontiers quantitatively (paper Figure 22's visual comparison).
pub fn hypervolume(frontier: &[Evaluated], ref_size_bits: u64) -> f64 {
    let mut pts: Vec<&Evaluated> =
        frontier.iter().filter(|p| p.size_bits <= ref_size_bits).collect();
    pts.sort_by_key(|a| a.size_bits);
    let mut hv = 0.0f64;
    let mut prev_acc = 0.0f64;
    let mut covered = 0u64;
    for p in pts {
        // area contributed right of this point at its accuracy level
        let width = (ref_size_bits - p.size_bits) as f64;
        let height = (p.accuracy - prev_acc).max(0.0);
        hv += width * height;
        prev_acc = prev_acc.max(p.accuracy);
        covered = covered.max(p.size_bits);
    }
    let _ = covered;
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(acc: f64, size: u64) -> Evaluated {
        Evaluated { setting: StudentSetting(vec![(1, 10, 4)]), accuracy: acc, size_bits: size }
    }

    #[test]
    fn domination_cases() {
        assert!(dominates(&pt(0.9, 100), &pt(0.8, 100))); // more accurate, same size
        assert!(dominates(&pt(0.8, 50), &pt(0.8, 100))); // same accuracy, smaller
        assert!(dominates(&pt(0.9, 50), &pt(0.8, 100))); // better on both
        assert!(!dominates(&pt(0.9, 200), &pt(0.8, 100))); // trade-off
        assert!(!dominates(&pt(0.8, 100), &pt(0.8, 100))); // equal: no strict edge
    }

    #[test]
    fn frontier_of_figure2_shape() {
        // circles (frontier) and crosses (dominated), as in paper Figure 2
        let pts = vec![
            pt(0.60, 40),
            pt(0.75, 80),  // "Model U"
            pt(0.85, 130), // "Model V"
            pt(0.70, 100), // dominated by U
            pt(0.55, 60),  // dominated by the 40-size point? no: bigger & worse than U
            pt(0.90, 200),
        ];
        let f = pareto_frontier(&pts);
        let accs: Vec<f64> = f.iter().map(|p| p.accuracy).collect();
        assert_eq!(accs, vec![0.60, 0.75, 0.85, 0.90]);
    }

    #[test]
    fn frontier_is_sorted_and_monotone() {
        let pts: Vec<Evaluated> =
            (0..50).map(|i| pt((i as f64 * 7.3) % 1.0, (i * 13 % 97) as u64)).collect();
        let f = pareto_frontier(&pts);
        for w in f.windows(2) {
            assert!(w[0].size_bits < w[1].size_bits);
            assert!(w[0].accuracy < w[1].accuracy);
        }
    }

    #[test]
    fn bnl_agrees_with_sort_scan() {
        let pts: Vec<Evaluated> = (0..200)
            .map(|i| {
                let x = (i * 37 % 101) as f64 / 101.0;
                let s = (i * 53 % 89 + 1) as u64;
                pt(x, s)
            })
            .collect();
        let a = pareto_frontier(&pts);
        let b = skyline_bnl(&pts);
        let key = |v: &[Evaluated]| -> Vec<(u64, u64)> {
            v.iter().map(|p| (p.size_bits, (p.accuracy * 1e9) as u64)).collect()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn budget_query_picks_best_fitting_model() {
        let f = pareto_frontier(&[pt(0.6, 40), pt(0.75, 80), pt(0.85, 130)]);
        // Device #1: budget 100 ⇒ the 80-size model ("Model U")
        let u = best_under_budget(&f, 100).unwrap();
        assert_eq!(u.size_bits, 80);
        // Device #2: budget 140 ⇒ the 130-size model ("Model V")
        let v = best_under_budget(&f, 140).unwrap();
        assert_eq!(v.size_bits, 130);
        // budget smaller than everything ⇒ none
        assert!(best_under_budget(&f, 10).is_none());
    }

    #[test]
    fn hypervolume_rewards_better_frontiers() {
        let weak = pareto_frontier(&[pt(0.5, 100), pt(0.6, 200)]);
        let strong = pareto_frontier(&[pt(0.7, 80), pt(0.8, 150)]);
        let hv_w = hypervolume(&weak, 300);
        let hv_s = hypervolume(&strong, 300);
        assert!(hv_s > hv_w, "{hv_s} !> {hv_w}");
        assert_eq!(hypervolume(&[], 300), 0.0);
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        assert!(pareto_frontier(&[]).is_empty());
        assert!(skyline_bnl(&[]).is_empty());
    }
}
