//! # lightts-search
//!
//! Problem Scenario 2 of LightTS (paper Section 3.3): given a search space
//! of quantized student settings, identify the **Pareto frontier** of
//! accuracy vs. model size by evaluating only a small number `Q` of
//! settings with the expensive AED procedure.
//!
//! * [`space`] — the `(L_j, F_j, W_j)^B` search space of Eq. 5, setting
//!   enumeration/sampling, and analytic model-size computation.
//! * [`pareto`] — domination (Eq. 7), skyline computation (sort-scan and
//!   block-nested-loop, after the cited skyline operator \[5\]), and
//!   hypervolume for frontier comparison.
//! * [`gp`] — Gaussian-process regression with the squared-exponential
//!   kernel (Eqs. 8–9) on Cholesky solves.
//! * [`acquisition`] — Expected Improvement over the β-scalarized joint
//!   objective `g(x) = β·f(x) − (1−β)·Size(x)`.
//! * [`encoder`] — the two-phase encoder of Algorithm 2: an autoencoder
//!   trained on `R` unevaluated settings, fine-tuned with an accuracy
//!   predictor on the `P` evaluated ones.
//! * [`mobo`] — the full loop (Figure 11) in four variants: Random, MOBO on
//!   the original/normalized space, and Encoded MOBO (single- or two-phase).
//!
//! The accuracy oracle is injected as a closure, so this crate stays
//! independent of the distillation machinery; `lightts` (core) wires AED in.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod error;

pub mod acquisition;
pub mod encoder;
pub mod gp;
pub mod mobo;
pub mod pareto;
pub mod space;

pub use error::SearchError;
pub use pareto::Evaluated;
pub use space::{SearchSpace, StudentSetting};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SearchError>;
