//! The student-setting search space (paper Section 3.3.1, Eq. 5).
//!
//! A student setting assigns each of `B` blocks a tuple `(L_j, F_j, W_j)`:
//! layers per block, first-layer filter length, and parameter bit-width. The
//! full space has `(|L|·|F|·|W|)^B` settings (paper defaults: `(5·5·4)³ =
//! 10⁶`), far too many to evaluate with AED — which is why the encoded MOBO
//! of [`crate::mobo`] exists.

use crate::{Result, SearchError};
use lightts_models::inception::{BlockSpec, InceptionConfig};
use rand::Rng;

/// One point of the search space: per-block `(layers, filter_len, bits)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StudentSetting(pub Vec<(usize, usize, u8)>);

impl StudentSetting {
    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.0.len()
    }

    /// Converts to the model configuration it denotes.
    pub fn to_config(&self, space: &SearchSpace) -> InceptionConfig {
        InceptionConfig {
            blocks: self
                .0
                .iter()
                .map(|&(l, f, w)| BlockSpec { layers: l, filter_len: f, bits: w })
                .collect(),
            filters: space.filters,
            in_dims: space.in_dims,
            in_len: space.in_len,
            num_classes: space.num_classes,
        }
    }

    /// Human-readable form, e.g. `(3,20,8)|(4,40,4)`.
    pub fn display(&self) -> String {
        self.0.iter().map(|(l, f, w)| format!("({l},{f},{w})")).collect::<Vec<_>>().join("|")
    }
}

/// The search space: per-block choices plus the fixed student skeleton
/// (filter count, input shape, classes) needed to cost a setting.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Number of blocks `B` (fixed, per the paper).
    pub blocks: usize,
    /// Choices for layers per block `L` (paper: {1..5}).
    pub layer_choices: Vec<usize>,
    /// Choices for the first-layer filter length `F` (paper: {10..160}).
    pub filter_choices: Vec<usize>,
    /// Choices for the bit-width `W` (paper: {4, 8, 16, 32}).
    pub bit_choices: Vec<u8>,
    /// Convolution filters per layer (model width).
    pub filters: usize,
    /// Input dimensionality of the series.
    pub in_dims: usize,
    /// Series length.
    pub in_len: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl SearchSpace {
    /// The paper's search space for a given dataset shape.
    pub fn paper_default(
        in_dims: usize,
        in_len: usize,
        num_classes: usize,
        filters: usize,
    ) -> Self {
        SearchSpace {
            blocks: 3,
            layer_choices: vec![1, 2, 3, 4, 5],
            filter_choices: vec![10, 20, 40, 80, 160],
            bit_choices: vec![4, 8, 16, 32],
            filters,
            in_dims,
            in_len,
            num_classes,
        }
    }

    /// Validates that every choice list is non-empty.
    pub fn validate(&self) -> Result<()> {
        if self.blocks == 0
            || self.layer_choices.is_empty()
            || self.filter_choices.is_empty()
            || self.bit_choices.is_empty()
        {
            return Err(SearchError::BadConfig { what: "empty search-space dimension".into() });
        }
        Ok(())
    }

    /// Total number of settings `(|L|·|F|·|W|)^B`.
    pub fn cardinality(&self) -> u128 {
        let per_block =
            (self.layer_choices.len() * self.filter_choices.len() * self.bit_choices.len()) as u128;
        per_block.pow(self.blocks as u32)
    }

    /// Uniformly samples one setting.
    pub fn random_setting<R: Rng>(&self, rng: &mut R) -> StudentSetting {
        StudentSetting(
            (0..self.blocks)
                .map(|_| {
                    (
                        self.layer_choices[rng.gen_range(0..self.layer_choices.len())],
                        self.filter_choices[rng.gen_range(0..self.filter_choices.len())],
                        self.bit_choices[rng.gen_range(0..self.bit_choices.len())],
                    )
                })
                .collect(),
        )
    }

    /// Samples `n` *distinct* settings (falls back to fewer if the space is
    /// smaller than `n`).
    pub fn sample_distinct<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<StudentSetting> {
        use std::collections::HashSet;
        let cap = self.cardinality().min(n as u128) as usize;
        let mut seen = HashSet::with_capacity(cap);
        let mut out = Vec::with_capacity(cap);
        let mut attempts = 0usize;
        while out.len() < cap && attempts < n * 200 {
            attempts += 1;
            let s = self.random_setting(rng);
            if seen.insert(s.clone()) {
                out.push(s);
            }
        }
        out
    }

    /// Model size in bits of a setting (paper: "counting the total bits").
    pub fn size_bits(&self, setting: &StudentSetting) -> u64 {
        setting.to_config(self).size_bits()
    }

    /// The size of the largest possible setting; used to normalize the size
    /// term of the scalarized objective.
    pub fn max_size_bits(&self) -> u64 {
        let biggest = StudentSetting(vec![
            (
                *self.layer_choices.iter().max().expect("validated"),
                *self.filter_choices.iter().max().expect("validated"),
                *self.bit_choices.iter().max().expect("validated"),
            );
            self.blocks
        ]);
        self.size_bits(&biggest)
    }

    /// Raw encoding of a setting: the flat `(L, F, W)` values as `f32`
    /// (the paper's problematic "original space").
    pub fn encode_raw(&self, setting: &StudentSetting) -> Vec<f32> {
        setting.0.iter().flat_map(|&(l, f, w)| [l as f32, f as f32, f32::from(w)]).collect()
    }

    /// Min-max normalized encoding: each coordinate scaled to `[0, 1]` by
    /// its choice range (Table 5's "Normalized" baseline).
    pub fn encode_normalized(&self, setting: &StudentSetting) -> Vec<f32> {
        let norm = |v: f32, choices: &[f32]| -> f32 {
            let lo = choices.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = choices.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if hi > lo {
                (v - lo) / (hi - lo)
            } else {
                0.0
            }
        };
        let lc: Vec<f32> = self.layer_choices.iter().map(|&x| x as f32).collect();
        let fc: Vec<f32> = self.filter_choices.iter().map(|&x| x as f32).collect();
        let wc: Vec<f32> = self.bit_choices.iter().map(|&x| f32::from(x)).collect();
        setting
            .0
            .iter()
            .flat_map(|&(l, f, w)| {
                [norm(l as f32, &lc), norm(f as f32, &fc), norm(f32::from(w), &wc)]
            })
            .collect()
    }

    /// One-hot encoding (the input representation of the two-phase encoder):
    /// per block, the concatenated indicator vectors of the three choices.
    pub fn encode_onehot(&self, setting: &StudentSetting) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.onehot_len());
        for &(l, f, w) in &setting.0 {
            for &c in &self.layer_choices {
                out.push(if c == l { 1.0 } else { 0.0 });
            }
            for &c in &self.filter_choices {
                out.push(if c == f { 1.0 } else { 0.0 });
            }
            for &c in &self.bit_choices {
                out.push(if c == w { 1.0 } else { 0.0 });
            }
        }
        out
    }

    /// Length of the one-hot encoding.
    pub fn onehot_len(&self) -> usize {
        self.blocks
            * (self.layer_choices.len() + self.filter_choices.len() + self.bit_choices.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::rng::seeded;

    fn space() -> SearchSpace {
        SearchSpace::paper_default(1, 64, 10, 8)
    }

    #[test]
    fn cardinality_matches_paper() {
        // (5 · 5 · 4)^3 = 10^6
        assert_eq!(space().cardinality(), 1_000_000);
    }

    #[test]
    fn random_settings_are_in_space() {
        let sp = space();
        let mut rng = seeded(1);
        for _ in 0..100 {
            let s = sp.random_setting(&mut rng);
            assert_eq!(s.blocks(), 3);
            for &(l, f, w) in &s.0 {
                assert!(sp.layer_choices.contains(&l));
                assert!(sp.filter_choices.contains(&f));
                assert!(sp.bit_choices.contains(&w));
            }
        }
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let sp = space();
        let mut rng = seeded(2);
        let samples = sp.sample_distinct(&mut rng, 200);
        assert_eq!(samples.len(), 200);
        let set: std::collections::HashSet<_> = samples.iter().collect();
        assert_eq!(set.len(), 200);
    }

    #[test]
    fn sample_distinct_caps_at_cardinality() {
        let sp = SearchSpace {
            blocks: 1,
            layer_choices: vec![1, 2],
            filter_choices: vec![10],
            bit_choices: vec![8],
            filters: 4,
            in_dims: 1,
            in_len: 32,
            num_classes: 2,
        };
        let mut rng = seeded(3);
        let samples = sp.sample_distinct(&mut rng, 50);
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn size_monotone_in_bits_and_layers() {
        let sp = space();
        let base = StudentSetting(vec![(3, 40, 8); 3]);
        let more_bits = StudentSetting(vec![(3, 40, 16); 3]);
        let more_layers = StudentSetting(vec![(4, 40, 8); 3]);
        assert!(sp.size_bits(&more_bits) > sp.size_bits(&base));
        assert!(sp.size_bits(&more_layers) > sp.size_bits(&base));
        assert!(sp.max_size_bits() >= sp.size_bits(&more_bits));
    }

    #[test]
    fn paper_distance_example_reproduces_in_raw_space() {
        // Paper Eq. 10: x1 = (4,40,8)³, x2 = (1,40,8)³, x3 = (4,40,16)³.
        // In the raw space the bit-width difference dominates:
        // ‖x1−x2‖ = √(3·3²) ≈ 5.19 < ‖x1−x3‖ = √(3·8²) ≈ 13.85.
        let sp = space();
        let x1 = sp.encode_raw(&StudentSetting(vec![(4, 40, 8); 3]));
        let x2 = sp.encode_raw(&StudentSetting(vec![(1, 40, 8); 3]));
        let x3 = sp.encode_raw(&StudentSetting(vec![(4, 40, 16); 3]));
        let dist = |a: &[f32], b: &[f32]| {
            a.iter().zip(b.iter()).map(|(&x, &y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        };
        let d12 = dist(&x1, &x2);
        let d13 = dist(&x1, &x3);
        assert!((d12 - 5.19).abs() < 0.01, "d12 = {d12}");
        assert!((d13 - 13.85).abs() < 0.01, "d13 = {d13}");
        assert!(d12 < d13, "raw space misorders similarity, as the paper argues");
    }

    #[test]
    fn normalized_encoding_is_unit_range() {
        let sp = space();
        let mut rng = seeded(4);
        for _ in 0..20 {
            let s = sp.random_setting(&mut rng);
            for v in sp.encode_normalized(&s) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn onehot_encoding_shape_and_sum() {
        let sp = space();
        let s = StudentSetting(vec![(3, 20, 8); 3]);
        let oh = sp.encode_onehot(&s);
        assert_eq!(oh.len(), sp.onehot_len());
        assert_eq!(oh.len(), 3 * (5 + 5 + 4));
        // exactly 3 ones per block
        let ones: f32 = oh.iter().sum();
        assert_eq!(ones, 9.0);
    }

    #[test]
    fn to_config_roundtrip() {
        let sp = space();
        let s = StudentSetting(vec![(3, 20, 8), (4, 40, 4), (2, 10, 16)]);
        let cfg = s.to_config(&sp);
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.blocks[1].filter_len, 40);
        assert_eq!(cfg.blocks[2].bits, 16);
        assert_eq!(s.display(), "(3,20,8)|(4,40,4)|(2,10,16)");
    }

    #[test]
    fn validation_rejects_empty_dims() {
        let mut sp = space();
        sp.bit_choices.clear();
        assert!(sp.validate().is_err());
    }
}
