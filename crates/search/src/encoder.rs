//! The two-phase encoder `Φ` (paper Section 3.3.3, Algorithm 2, Figure 12).
//!
//! Euclidean distance on raw settings misorders similarity (paper Eq. 10:
//! a bit-width change of 8 looks "farther" than a layer change of 3 even
//! though the latter alters accuracy far more). The remedy is a learned
//! continuous embedding:
//!
//! 1. **Autoencoder phase** — encoder `Φ` + decoder `Γ` reconstruct `R`
//!    *unevaluated* settings (no accuracies needed), giving a smooth
//!    continuous code space.
//! 2. **Predictor phase** — every `ps` epochs, encoder `Φ` + predictor `Ψ`
//!    regress the accuracies of the `P` *evaluated* settings, aligning the
//!    code space with accuracy semantics.
//!
//! The GP of the encoded MOBO then operates on `z = Φ(x)`.

use crate::space::{SearchSpace, StudentSetting};
use crate::{Result, SearchError};
use lightts_nn::layers::Linear;
use lightts_nn::optim::{Adam, Optimizer};
use lightts_nn::{Bindings, ParamStore};
use lightts_tensor::rng::seeded;
use lightts_tensor::tape::{Tape, Var};
use lightts_tensor::Tensor;

/// Hyper-parameters of encoder training (Algorithm 2).
#[derive(Debug, Clone, Copy)]
pub struct EncoderConfig {
    /// Latent dimensionality of `z`.
    pub latent_dim: usize,
    /// Hidden width of the encoder/decoder MLPs.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Predictor phase every `ps` epochs (paper: adjusted every 50 epochs).
    pub predictor_every: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Number `R` of unevaluated settings for the autoencoder phase
    /// (`R ≫ P`).
    pub r_samples: usize,
    /// Autoencoder mini-batch size.
    pub batch: usize,
    /// Gradient steps per predictor phase. The paper runs one step per `ps`
    /// epochs over a ~1500-epoch schedule; at this reproduction's shorter
    /// schedules several steps per phase reach the same regime.
    pub predictor_steps: usize,
    /// Final predictor-only fine-tune steps after the interleaved loop,
    /// aligning the latent space with accuracy before the GP consumes it.
    pub final_tune_steps: usize,
    /// Seed for sampling and initialization.
    pub seed: u64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            latent_dim: 12,
            hidden_dim: 48,
            epochs: 100,
            predictor_every: 3,
            lr: 0.02,
            r_samples: 1024,
            batch: 32,
            predictor_steps: 4,
            final_tune_steps: 40,
            seed: 0xE7C0,
        }
    }
}

/// A trained two-phase encoder.
pub struct TwoPhaseEncoder {
    store: ParamStore,
    enc1: Linear,
    enc2: Linear,
    dec1: Linear,
    dec2: Linear,
    pred1: Linear,
    pred2: Linear,
    input_dim: usize,
    latent_dim: usize,
}

impl TwoPhaseEncoder {
    fn build(input_dim: usize, cfg: &EncoderConfig) -> Result<Self> {
        let mut rng = seeded(cfg.seed);
        let mut store = ParamStore::new();
        let enc1 = Linear::with_name(&mut store, &mut rng, "enc1", input_dim, cfg.hidden_dim, 32)?;
        let enc2 =
            Linear::with_name(&mut store, &mut rng, "enc2", cfg.hidden_dim, cfg.latent_dim, 32)?;
        let dec1 =
            Linear::with_name(&mut store, &mut rng, "dec1", cfg.latent_dim, cfg.hidden_dim, 32)?;
        let dec2 = Linear::with_name(&mut store, &mut rng, "dec2", cfg.hidden_dim, input_dim, 32)?;
        let pred_hidden = (cfg.hidden_dim / 4).max(4);
        let pred1 =
            Linear::with_name(&mut store, &mut rng, "pred1", cfg.latent_dim, pred_hidden, 32)?;
        let pred2 = Linear::with_name(&mut store, &mut rng, "pred2", pred_hidden, 1, 32)?;
        Ok(TwoPhaseEncoder {
            store,
            enc1,
            enc2,
            dec1,
            dec2,
            pred1,
            pred2,
            input_dim,
            latent_dim: cfg.latent_dim,
        })
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    fn encode_tape(&self, tape: &mut Tape, bind: &mut Bindings, x: Var) -> Result<Var> {
        let h = self.enc1.forward(tape, bind, &self.store, x)?;
        let h = tape.relu(h)?;
        Ok(self.enc2.forward(tape, bind, &self.store, h)?)
    }

    /// Encodes a batch of one-hot settings `[n, D] → [n, latent]` (inference
    /// path).
    pub fn encode_batch(&self, onehot: &Tensor) -> Result<Tensor> {
        if onehot.dims()[1] != self.input_dim {
            return Err(SearchError::BadConfig {
                what: format!(
                    "encoder input dim {} != expected {}",
                    onehot.dims()[1],
                    self.input_dim
                ),
            });
        }
        let h = self.enc1.eval_forward(&self.store, onehot)?;
        let h = h.map(|v| v.max(0.0));
        Ok(self.enc2.eval_forward(&self.store, &h)?)
    }

    /// Encodes a single setting through the space's one-hot representation.
    pub fn encode(&self, space: &SearchSpace, setting: &StudentSetting) -> Result<Vec<f32>> {
        let oh = Tensor::from_vec(space.encode_onehot(setting), &[1, self.input_dim])?;
        Ok(self.encode_batch(&oh)?.into_vec())
    }

    /// Reconstructs a batch of one-hot settings through the autoencoder
    /// (`Γ(Φ(x))`), for inspecting reconstruction quality.
    pub fn reconstruct(&self, onehot: &Tensor) -> Result<Tensor> {
        let z = self.encode_batch(onehot)?;
        let h = self.dec1.eval_forward(&self.store, &z)?;
        let h = h.map(|v| v.max(0.0));
        Ok(self.dec2.eval_forward(&self.store, &h)?)
    }

    /// Predicted accuracy of a setting via `Ψ(Φ(x))`.
    pub fn predict_accuracy(&self, space: &SearchSpace, setting: &StudentSetting) -> Result<f32> {
        let oh = Tensor::from_vec(space.encode_onehot(setting), &[1, self.input_dim])?;
        let z = self.encode_batch(&oh)?;
        let h = self.pred1.eval_forward(&self.store, &z)?;
        let h = h.map(|v| v.max(0.0));
        let out = self.pred2.eval_forward(&self.store, &h)?;
        Ok(out.data()[0])
    }
}

/// Trains the encoder per Algorithm 2.
///
/// `evaluated` supplies the `(x_p, accuracy_p)` pairs of the predictor
/// phase; pass `with_predictor = false` for the single-phase (autoencoder
/// only) ablation of Table 5.
pub fn train_encoder(
    space: &SearchSpace,
    evaluated: &[(StudentSetting, f64)],
    cfg: &EncoderConfig,
    with_predictor: bool,
) -> Result<TwoPhaseEncoder> {
    space.validate()?;
    if with_predictor && evaluated.is_empty() {
        return Err(SearchError::BadConfig {
            what: "two-phase encoder needs evaluated settings".into(),
        });
    }
    let input_dim = space.onehot_len();
    let enc = TwoPhaseEncoder::build(input_dim, cfg)?;
    let mut enc = enc;
    let mut rng = seeded(cfg.seed.wrapping_add(1));

    // R unevaluated settings for the reconstruction phase
    let r_settings = space.sample_distinct(&mut rng, cfg.r_samples.max(cfg.batch));
    let r_onehot: Vec<Vec<f32>> = r_settings.iter().map(|s| space.encode_onehot(s)).collect();

    // P evaluated settings for the predictor phase
    let p_onehot: Vec<f32> = evaluated.iter().flat_map(|(s, _)| space.encode_onehot(s)).collect();
    let p_targets: Vec<f32> = evaluated.iter().map(|(_, a)| *a as f32).collect();

    let mut opt = Adam::new(cfg.lr);
    let ps = cfg.predictor_every.max(1);
    for epoch in 0..cfg.epochs {
        // ----- autoencoder phase (lines 6–7) -----
        let mut order: Vec<usize> = (0..r_onehot.len()).collect();
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);
        for chunk in order.chunks(cfg.batch) {
            let mut flat = Vec::with_capacity(chunk.len() * input_dim);
            for &i in chunk {
                flat.extend_from_slice(&r_onehot[i]);
            }
            let x = Tensor::from_vec(flat, &[chunk.len(), input_dim])?;
            let mut tape = Tape::new();
            let mut bind = Bindings::new();
            let xv = tape.constant(x.clone());
            let z = enc.encode_tape(&mut tape, &mut bind, xv)?;
            let h = enc.dec1.forward(&mut tape, &mut bind, &enc.store, z)?;
            let h = tape.relu(h)?;
            let recon = enc.dec2.forward(&mut tape, &mut bind, &enc.store, h)?;
            let loss = tape.mse_to_target(recon, &x)?;
            let grads = tape.backward(loss)?;
            let pairs = bind.collect_grads(grads);
            opt.step(&mut enc.store, &pairs)?;
        }
        // ----- predictor phase (lines 8–10) -----
        if with_predictor && epoch % ps == ps - 1 {
            for _ in 0..cfg.predictor_steps.max(1) {
                predictor_step(
                    &mut enc,
                    &p_onehot,
                    &p_targets,
                    evaluated.len(),
                    input_dim,
                    &mut opt,
                )?;
            }
        }
    }
    // final predictor-only fine-tune: align the latent with accuracy
    if with_predictor {
        for _ in 0..cfg.final_tune_steps {
            predictor_step(&mut enc, &p_onehot, &p_targets, evaluated.len(), input_dim, &mut opt)?;
        }
    }
    Ok(enc)
}

/// One full-batch gradient step of the predictor phase
/// (`arg min_{Φ,Ψ} L_accur`, Algorithm 2 line 10).
fn predictor_step(
    enc: &mut TwoPhaseEncoder,
    p_onehot: &[f32],
    p_targets: &[f32],
    n: usize,
    input_dim: usize,
    opt: &mut Adam,
) -> Result<()> {
    let x = Tensor::from_vec(p_onehot.to_vec(), &[n, input_dim])?;
    let target = Tensor::from_vec(p_targets.to_vec(), &[n, 1])?;
    let mut tape = Tape::new();
    let mut bind = Bindings::new();
    let xv = tape.constant(x);
    let z = enc.encode_tape(&mut tape, &mut bind, xv)?;
    let h = enc.pred1.forward(&mut tape, &mut bind, &enc.store, z)?;
    let h = tape.relu(h)?;
    let pred = enc.pred2.forward(&mut tape, &mut bind, &enc.store, h)?;
    let loss = tape.mse_to_target(pred, &target)?;
    let grads = tape.backward(loss)?;
    let pairs = bind.collect_grads(grads);
    opt.step(&mut enc.store, &pairs)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_nn::loss::mse;

    fn space() -> SearchSpace {
        SearchSpace::paper_default(1, 32, 5, 4)
    }

    fn quick_cfg() -> EncoderConfig {
        EncoderConfig { epochs: 80, r_samples: 768, ..Default::default() }
    }

    /// A synthetic "accuracy" driven mostly by layers (as in the paper's
    /// Eq. 10 discussion: layers matter, bits matter less).
    fn synth_acc(s: &StudentSetting) -> f64 {
        let layers: usize = s.0.iter().map(|b| b.0).sum();
        let bits: u32 = s.0.iter().map(|b| u32::from(b.2)).sum();
        0.3 + 0.04 * layers as f64 + 0.001 * f64::from(bits)
    }

    #[test]
    fn autoencoder_learns_to_reconstruct() {
        let sp = space();
        let enc = train_encoder(&sp, &[], &quick_cfg(), false).unwrap();
        // reconstruction error should beat predicting the mean one-hot
        let mut rng = seeded(9);
        let settings = sp.sample_distinct(&mut rng, 16);
        let mut recon_err = 0.0f32;
        for s in &settings {
            let oh = Tensor::from_vec(sp.encode_onehot(s), &[1, sp.onehot_len()]).unwrap();
            let z = enc.encode_batch(&oh).unwrap();
            let h = enc.dec1.eval_forward(&enc.store, &z).unwrap().map(|v| v.max(0.0));
            let r = enc.dec2.eval_forward(&enc.store, &h).unwrap();
            recon_err += mse(&r, &oh).unwrap();
        }
        recon_err /= settings.len() as f32;
        // one-hot density is 3/14 per block-slot; mean-prediction MSE ≈ p(1−p) ≈ 0.17
        assert!(recon_err < 0.12, "reconstruction MSE {recon_err}");
    }

    #[test]
    fn latent_dim_is_respected() {
        let sp = space();
        let enc = train_encoder(&sp, &[], &quick_cfg(), false).unwrap();
        let mut rng = seeded(10);
        let s = sp.random_setting(&mut rng);
        let z = enc.encode(&sp, &s).unwrap();
        assert_eq!(z.len(), enc.latent_dim());
    }

    #[test]
    fn two_phase_encoder_predicts_accuracy_trend() {
        let sp = space();
        let mut rng = seeded(11);
        // 48 labeled points and double the quick epoch budget: with only 24
        // points the tiny regression head learns the trend only for lucky
        // RNG streams, which made this test flake when the random sequence
        // changed.
        let evaluated: Vec<(StudentSetting, f64)> = sp
            .sample_distinct(&mut rng, 48)
            .into_iter()
            .map(|s| {
                let a = synth_acc(&s);
                (s, a)
            })
            .collect();
        let cfg = EncoderConfig { epochs: 160, ..quick_cfg() };
        let enc = train_encoder(&sp, &evaluated, &cfg, true).unwrap();
        // prediction should correlate with the ground truth on fresh points
        let fresh = sp.sample_distinct(&mut rng, 24);
        let preds: Vec<f64> =
            fresh.iter().map(|s| f64::from(enc.predict_accuracy(&sp, s).unwrap())).collect();
        let truth: Vec<f64> = fresh.iter().map(synth_acc).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mp, mt) = (mean(&preds), mean(&truth));
        let cov: f64 = preds.iter().zip(truth.iter()).map(|(&p, &t)| (p - mp) * (t - mt)).sum();
        let vp: f64 = preds.iter().map(|&p| (p - mp) * (p - mp)).sum();
        let vt: f64 = truth.iter().map(|&t| (t - mt) * (t - mt)).sum();
        let corr = cov / (vp.sqrt() * vt.sqrt()).max(1e-12);
        assert!(corr > 0.3, "prediction/truth correlation {corr}");
    }

    #[test]
    fn two_phase_requires_evaluated_points() {
        let sp = space();
        assert!(train_encoder(&sp, &[], &quick_cfg(), true).is_err());
    }

    #[test]
    fn encode_batch_checks_dims() {
        let sp = space();
        let enc = train_encoder(&sp, &[], &quick_cfg(), false).unwrap();
        let bad = Tensor::zeros(&[1, 3]);
        assert!(enc.encode_batch(&bad).is_err());
    }

    use lightts_tensor::rng::seeded;
}
