//! Multi-objective Bayesian optimization (paper Section 3.3.3, Figure 11).
//!
//! The loop: evaluate `P` random settings with the (expensive) accuracy
//! oracle, then repeat until `Q` evaluations — fit a GP on the evaluated
//! settings' representations, draw a random scalarization weight `β`
//! (\[29\]'s random-trade-off strategy), score a candidate pool with Expected
//! Improvement on the joint objective `g(x) = β·f(x) − (1−β)·Size(x)`, and
//! evaluate the winner. Four search variants reproduce the paper's
//! comparisons:
//!
//! * [`SpaceRepr::Original`] — GP on raw `(L, F, W)` values (classic MOBO).
//! * [`SpaceRepr::Normalized`] — GP on min-max-scaled values.
//! * [`SpaceRepr::SingleEncoder`] — GP on an autoencoder latent (ablation).
//! * [`SpaceRepr::TwoPhaseEncoder`] — GP on the accuracy-aligned latent
//!   (the full Encoded MOBO).
//!
//! Plus [`random_search`], the no-model baseline of Figure 22/Table 6.

use crate::acquisition::expected_improvement;
use crate::encoder::{train_encoder, EncoderConfig, TwoPhaseEncoder};
use crate::gp::GaussianProcess;
use crate::pareto::{pareto_frontier, Evaluated};
use crate::space::{SearchSpace, StudentSetting};
use crate::{Result, SearchError};
use lightts_obs as obs;
use lightts_obs::checkpoint::{atomic_write, read_checkpoint, SectionReader, SectionWriter};
use lightts_tensor::rng::{rng_from_state, rng_state, seeded};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use std::path::Path;
use std::time::Instant;

/// The setting representation the GP operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceRepr {
    /// Raw discrete values (the paper's problematic "original space").
    Original,
    /// Min-max normalized values.
    Normalized,
    /// Autoencoder latent without accuracy alignment (single phase).
    SingleEncoder,
    /// The full two-phase encoder latent (Encoded MOBO).
    TwoPhaseEncoder,
}

impl SpaceRepr {
    /// Display name matching the paper's Table 5 rows.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpaceRepr::Original => "Original",
            SpaceRepr::Normalized => "Normalized",
            SpaceRepr::SingleEncoder => "Single Encoder",
            SpaceRepr::TwoPhaseEncoder => "Two-phase Encoder",
        }
    }
}

/// MOBO configuration (paper: `P = 10`, `Q = 50`).
#[derive(Debug, Clone, Copy)]
pub struct MoboConfig {
    /// Total accuracy evaluations `Q`.
    pub q: usize,
    /// Random initial evaluations `P`.
    pub p_init: usize,
    /// Candidate pool size scored per iteration.
    pub candidates: usize,
    /// Setting representation for the GP.
    pub repr: SpaceRepr,
    /// Encoder hyper-parameters (encoder representations only).
    pub encoder: EncoderConfig,
    /// Refresh (retrain) the encoder after this many new evaluations.
    pub encoder_refresh: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MoboConfig {
    fn default() -> Self {
        MoboConfig {
            q: 50,
            p_init: 10,
            candidates: 256,
            repr: SpaceRepr::TwoPhaseEncoder,
            encoder: EncoderConfig::default(),
            encoder_refresh: 10,
            seed: 0x30B0,
        }
    }
}

/// Result of a search run.
#[derive(Debug, Clone)]
pub struct MoboOutcome {
    /// Every evaluated setting with accuracy and size, in evaluation order.
    pub evaluated: Vec<Evaluated>,
    /// The Pareto frontier of the evaluated set.
    pub frontier: Vec<Evaluated>,
    /// Wall-clock seconds spent (dominated by oracle calls).
    pub seconds: f64,
}

fn call_oracle<F>(oracle: &mut F, setting: &StudentSetting) -> Result<f64>
where
    F: FnMut(&StudentSetting) -> std::result::Result<f64, String>,
{
    oracle(setting).map_err(|what| SearchError::Evaluator { what })
}

/// Pure random search: evaluate `q` distinct random settings.
pub fn random_search<F>(
    space: &SearchSpace,
    mut oracle: F,
    q: usize,
    seed: u64,
) -> Result<MoboOutcome>
where
    F: FnMut(&StudentSetting) -> std::result::Result<f64, String>,
{
    space.validate()?;
    let start = Instant::now();
    let mut rng = seeded(seed);
    let settings = space.sample_distinct(&mut rng, q);
    let mut evaluated = Vec::with_capacity(settings.len());
    for s in settings {
        let accuracy = call_oracle(&mut oracle, &s)?;
        let size_bits = space.size_bits(&s);
        evaluated.push(Evaluated { setting: s, accuracy, size_bits });
    }
    let frontier = pareto_frontier(&evaluated);
    Ok(MoboOutcome { evaluated, frontier, seconds: start.elapsed().as_secs_f64() })
}

struct ReprBuilder<'a> {
    space: &'a SearchSpace,
    repr: SpaceRepr,
    encoder: Option<TwoPhaseEncoder>,
}

impl<'a> ReprBuilder<'a> {
    fn needs_encoder(repr: SpaceRepr) -> bool {
        matches!(repr, SpaceRepr::SingleEncoder | SpaceRepr::TwoPhaseEncoder)
    }

    fn refresh(&mut self, evaluated: &[Evaluated], cfg: &MoboConfig) -> Result<()> {
        if !Self::needs_encoder(self.repr) {
            return Ok(());
        }
        let pairs: Vec<(StudentSetting, f64)> =
            evaluated.iter().map(|e| (e.setting.clone(), e.accuracy)).collect();
        let with_predictor = self.repr == SpaceRepr::TwoPhaseEncoder;
        self.encoder = Some(train_encoder(self.space, &pairs, &cfg.encoder, with_predictor)?);
        Ok(())
    }

    fn encode(&self, setting: &StudentSetting) -> Result<Vec<f32>> {
        match self.repr {
            SpaceRepr::Original => Ok(self.space.encode_raw(setting)),
            SpaceRepr::Normalized => Ok(self.space.encode_normalized(setting)),
            SpaceRepr::SingleEncoder | SpaceRepr::TwoPhaseEncoder => self
                .encoder
                .as_ref()
                .ok_or_else(|| SearchError::BadConfig { what: "encoder not trained".into() })?
                .encode(self.space, setting),
        }
    }
}

/// Kind tag of MOBO checkpoint containers.
const CKPT_KIND: &str = "search.mobo";

fn ck(what: impl Into<String>) -> SearchError {
    SearchError::Checkpoint { what: what.into() }
}

/// Everything a crashed run needs to continue the exact trial sequence.
struct MoboState {
    /// `true` while the initial `P` random evaluations are still running.
    in_init: bool,
    evaluated: Vec<Evaluated>,
    /// Init settings sampled up front but not yet evaluated.
    pending_init: Vec<StudentSetting>,
    /// RNG stream position (captured *after* all draws so far).
    rng: [u64; 4],
    since_refresh: u64,
    /// `evaluated.len()` at the last encoder (re)train — resume retrains
    /// on exactly that prefix so the GP sees the same latent space.
    refresh_len: u64,
}

fn put_settings(buf: &mut Vec<u8>, settings: impl ExactSizeIterator<Item = StudentSetting>) {
    buf.extend_from_slice(&(settings.len() as u32).to_le_bytes());
    for s in settings {
        buf.extend_from_slice(&(s.0.len() as u32).to_le_bytes());
        for (layers, filters, bits) in s.0 {
            buf.extend_from_slice(&(layers as u32).to_le_bytes());
            buf.extend_from_slice(&(filters as u32).to_le_bytes());
            buf.push(bits);
        }
    }
}

struct StateCursor<'a>(&'a [u8]);

impl<'a> StateCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.0.len() < n {
            return Err(ck("checkpoint state truncated"));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn settings(&mut self) -> Result<Vec<StudentSetting>> {
        let count = self.u32()? as usize;
        if count > 1 << 20 {
            return Err(ck("implausible setting count"));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let blocks = self.u32()? as usize;
            if blocks > 1 << 10 {
                return Err(ck("implausible block count"));
            }
            let mut s = Vec::with_capacity(blocks);
            for _ in 0..blocks {
                let layers = self.u32()? as usize;
                let filters = self.u32()? as usize;
                let bits = self.take(1)?[0];
                s.push((layers, filters, bits));
            }
            out.push(StudentSetting(s));
        }
        Ok(out)
    }
}

fn save_state(path: &Path, st: &MoboState) -> Result<()> {
    let mut w = SectionWriter::new(CKPT_KIND);
    w.section("phase", &[u8::from(st.in_init)]);
    let mut rng = Vec::with_capacity(32);
    for word in st.rng {
        rng.extend_from_slice(&word.to_le_bytes());
    }
    w.section("rng", &rng);
    let mut counters = Vec::with_capacity(16);
    counters.extend_from_slice(&st.since_refresh.to_le_bytes());
    counters.extend_from_slice(&st.refresh_len.to_le_bytes());
    w.section("counters", &counters);
    let mut evs = Vec::new();
    put_settings(&mut evs, st.evaluated.iter().map(|e| e.setting.clone()));
    for e in &st.evaluated {
        evs.extend_from_slice(&e.accuracy.to_le_bytes());
        evs.extend_from_slice(&e.size_bits.to_le_bytes());
    }
    w.section("evaluated", &evs);
    let mut pending = Vec::new();
    put_settings(&mut pending, st.pending_init.iter().cloned());
    w.section("pending", &pending);
    atomic_write(path, &w.finish()).map_err(|e| ck(format!("writing {path:?}: {e}")))
}

fn load_state(path: &Path) -> Result<Option<MoboState>> {
    let Some(bytes) = read_checkpoint(path).map_err(|e| ck(format!("reading {path:?}: {e}")))?
    else {
        return Ok(None);
    };
    let r = SectionReader::parse(&bytes).map_err(ck)?;
    if r.kind() != CKPT_KIND {
        return Err(ck(format!("{path:?} is a {:?} checkpoint, not {CKPT_KIND:?}", r.kind())));
    }
    let phase = r.require("phase").map_err(ck)?;
    let in_init = match phase {
        [0] => false,
        [1] => true,
        _ => return Err(ck("malformed phase section")),
    };
    let rng_bytes = r.require("rng").map_err(ck)?;
    if rng_bytes.len() != 32 {
        return Err(ck("malformed rng section"));
    }
    let mut rng = [0u64; 4];
    for (i, word) in rng.iter_mut().enumerate() {
        *word = u64::from_le_bytes(rng_bytes[i * 8..(i + 1) * 8].try_into().unwrap());
    }
    let mut counters = StateCursor(r.require("counters").map_err(ck)?);
    let since_refresh = counters.u64()?;
    let refresh_len = counters.u64()?;
    let mut evs = StateCursor(r.require("evaluated").map_err(ck)?);
    let settings = evs.settings()?;
    let mut evaluated = Vec::with_capacity(settings.len());
    for setting in settings {
        let accuracy = f64::from_le_bytes(evs.take(8)?.try_into().unwrap());
        let size_bits = evs.u64()?;
        evaluated.push(Evaluated { setting, accuracy, size_bits });
    }
    let mut pending = StateCursor(r.require("pending").map_err(ck)?);
    let pending_init = pending.settings()?;
    if refresh_len as usize > evaluated.len() {
        return Err(ck("refresh_len exceeds evaluated count"));
    }
    Ok(Some(MoboState { in_init, evaluated, pending_init, rng, since_refresh, refresh_len }))
}

/// Runs (encoded) multi-objective Bayesian optimization.
///
/// The oracle returns the AED accuracy of a setting; errors are surfaced as
/// [`SearchError::Evaluator`]. Returns all `Q` evaluations and their Pareto
/// frontier.
pub fn run_mobo<F>(space: &SearchSpace, oracle: F, cfg: &MoboConfig) -> Result<MoboOutcome>
where
    F: FnMut(&StudentSetting) -> std::result::Result<f64, String>,
{
    run_mobo_inner(space, oracle, cfg, None)
}

/// Like [`run_mobo`], but crash-safe: snapshots the full search state to
/// `ckpt` after every oracle evaluation and resumes from it if present.
///
/// A run killed at any trial (the `mobo.trial` failpoint, a process kill)
/// and restarted with the same space/config/oracle produces **exactly** the
/// trial sequence — settings, accuracies, frontier — of an uninterrupted
/// run: the snapshot carries the RNG stream position, the evaluated list,
/// the still-pending init settings, and the encoder refresh schedule
/// (`refresh_len`), from which the encoder is deterministically retrained
/// on resume. The checkpoint file is left in place on success.
pub fn run_mobo_resumable<F>(
    space: &SearchSpace,
    oracle: F,
    cfg: &MoboConfig,
    ckpt: &Path,
) -> Result<MoboOutcome>
where
    F: FnMut(&StudentSetting) -> std::result::Result<f64, String>,
{
    run_mobo_inner(space, oracle, cfg, Some(ckpt))
}

fn run_mobo_inner<F>(
    space: &SearchSpace,
    mut oracle: F,
    cfg: &MoboConfig,
    ckpt: Option<&Path>,
) -> Result<MoboOutcome>
where
    F: FnMut(&StudentSetting) -> std::result::Result<f64, String>,
{
    space.validate()?;
    if cfg.p_init == 0 || cfg.q < cfg.p_init {
        return Err(SearchError::BadConfig {
            what: format!("need 0 < P ≤ Q, got P={} Q={}", cfg.p_init, cfg.q),
        });
    }
    let start = Instant::now();
    let max_size = space.max_size_bits() as f64;

    let resumed = match ckpt {
        Some(path) => load_state(path)?,
        None => None,
    };
    let (mut rng, mut evaluated, mut pending_init, mut since_refresh, mut refresh_len, in_init): (
        StdRng,
        Vec<Evaluated>,
        Vec<StudentSetting>,
        usize,
        usize,
        bool,
    ) = match resumed {
        Some(st) => (
            rng_from_state(st.rng),
            st.evaluated,
            st.pending_init,
            st.since_refresh as usize,
            st.refresh_len as usize,
            st.in_init,
        ),
        None => {
            let mut rng = seeded(cfg.seed);
            // Sample every init setting up front (one rng consumption the
            // checkpoint does not need to replay piecewise).
            let pending = space.sample_distinct(&mut rng, cfg.p_init);
            (rng, Vec::with_capacity(cfg.q), pending, 0, 0, true)
        }
    };
    let mut seen: HashSet<StudentSetting> =
        evaluated.iter().map(|e| e.setting.clone()).chain(pending_init.iter().cloned()).collect();
    let save = |st: &MoboState| -> Result<()> {
        match ckpt {
            Some(path) => save_state(path, st),
            None => Ok(()),
        }
    };

    // ----- initialization: P random evaluations -----
    while in_init {
        let Some(s) = pending_init.first().cloned() else { break };
        obs::failpoint::hit("mobo.trial").map_err(|what| SearchError::Fault { what })?;
        let accuracy = call_oracle(&mut oracle, &s)?;
        let size_bits = space.size_bits(&s);
        pending_init.remove(0);
        evaluated.push(Evaluated { setting: s, accuracy, size_bits });
        save(&MoboState {
            in_init: true,
            evaluated: evaluated.clone(),
            pending_init: pending_init.clone(),
            rng: rng_state(&rng),
            since_refresh: 0,
            refresh_len: 0,
        })?;
    }

    let mut reprs = ReprBuilder { space, repr: cfg.repr, encoder: None };
    if in_init {
        // Fresh (or resumed-mid-init) run reaching the end of init: train
        // the encoder on the full init set, exactly like before.
        reprs.refresh(&evaluated, cfg)?;
        refresh_len = evaluated.len();
        since_refresh = 0;
        save(&MoboState {
            in_init: false,
            evaluated: evaluated.clone(),
            pending_init: Vec::new(),
            rng: rng_state(&rng),
            since_refresh: 0,
            refresh_len: refresh_len as u64,
        })?;
    } else {
        // Resumed mid-BO: retrain the encoder on the prefix it was last
        // trained on, reproducing the latent space of the killed run.
        reprs.refresh(&evaluated[..refresh_len], cfg)?;
    }

    // ----- BO iterations -----
    let trial_counter = obs::global().counter("search.trials");
    let acq_ns = obs::global().histogram("search.acquisition_ns");
    while evaluated.len() < cfg.q {
        let t_acq = Instant::now();
        let xs: Vec<Vec<f32>> =
            evaluated.iter().map(|e| reprs.encode(&e.setting)).collect::<Result<_>>()?;
        let ys: Vec<f32> = evaluated.iter().map(|e| e.accuracy as f32).collect();
        let gp = GaussianProcess::fit(xs, &ys)?;

        // random scalarization trade-off (PACE-style)
        let beta: f32 = rng.gen_range(0.0..1.0);
        let g_of = |acc: f32, size_bits: u64| -> f32 {
            beta * acc - (1.0 - beta) * (size_bits as f64 / max_size) as f32
        };
        let best_g = evaluated
            .iter()
            .map(|e| g_of(e.accuracy as f32, e.size_bits))
            .fold(f32::NEG_INFINITY, f32::max);

        // candidate pool: unevaluated settings
        let mut best_candidate: Option<(StudentSetting, f32)> = None;
        let mut tried = 0usize;
        while tried < cfg.candidates {
            let s = space.random_setting(&mut rng);
            tried += 1;
            if seen.contains(&s) {
                continue;
            }
            let z = reprs.encode(&s)?;
            let (mu, var) = gp.predict(&z)?;
            let g_mean = g_of(mu, space.size_bits(&s));
            let g_var = beta * beta * var;
            let ei = expected_improvement(g_mean, g_var, best_g);
            if best_candidate.as_ref().is_none_or(|(_, b)| ei > *b) {
                best_candidate = Some((s, ei));
            }
        }
        let Some((chosen, _)) = best_candidate else {
            break; // space exhausted
        };
        let acquisition = t_acq.elapsed();
        acq_ns.record_duration(acquisition);

        obs::failpoint::hit("mobo.trial").map_err(|what| SearchError::Fault { what })?;
        let accuracy = call_oracle(&mut oracle, &chosen)?;
        let size_bits = space.size_bits(&chosen);
        seen.insert(chosen.clone());
        evaluated.push(Evaluated { setting: chosen, accuracy, size_bits });
        trial_counter.inc();
        obs::event!("mobo.trial", {
            trial: evaluated.len(),
            repr: cfg.repr.as_str(),
            beta: beta,
            acquisition_us: acquisition.as_secs_f64() * 1e6,
            accuracy: accuracy,
            size_bits: size_bits,
            frontier: pareto_frontier(&evaluated).len(),
        });

        since_refresh += 1;
        if since_refresh >= cfg.encoder_refresh.max(1) && ReprBuilder::needs_encoder(cfg.repr) {
            reprs.refresh(&evaluated, cfg)?;
            refresh_len = evaluated.len();
            since_refresh = 0;
        }
        save(&MoboState {
            in_init: false,
            evaluated: evaluated.clone(),
            pending_init: Vec::new(),
            rng: rng_state(&rng),
            since_refresh: since_refresh as u64,
            refresh_len: refresh_len as u64,
        })?;
    }

    let frontier = pareto_frontier(&evaluated);
    Ok(MoboOutcome { evaluated, frontier, seconds: start.elapsed().as_secs_f64() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::hypervolume;

    fn space() -> SearchSpace {
        SearchSpace::paper_default(1, 32, 5, 4)
    }

    /// Cheap synthetic oracle: accuracy rises with layers and bits with
    /// diminishing returns — qualitatively like real students.
    fn oracle(s: &StudentSetting) -> std::result::Result<f64, String> {
        let layers: usize = s.0.iter().map(|b| b.0).sum();
        let bits: u32 = s.0.iter().map(|b| u32::from(b.2)).sum();
        let filt: usize = s.0.iter().map(|b| b.1).sum();
        let acc = 1.0
            - (-0.25 * layers as f64).exp() * 0.5
            - (-0.05 * f64::from(bits)).exp() * 0.3
            - (filt as f64 / 480.0 - 0.3).powi(2) * 0.2;
        Ok(acc.clamp(0.0, 1.0))
    }

    fn quick_cfg(repr: SpaceRepr) -> MoboConfig {
        MoboConfig {
            q: 18,
            p_init: 6,
            candidates: 64,
            repr,
            encoder: EncoderConfig { epochs: 15, r_samples: 64, ..Default::default() },
            encoder_refresh: 8,
            seed: 5,
        }
    }

    #[test]
    fn random_search_evaluates_q_settings() {
        let sp = space();
        let out = random_search(&sp, oracle, 12, 3).unwrap();
        assert_eq!(out.evaluated.len(), 12);
        assert!(!out.frontier.is_empty());
        // frontier points must come from the evaluated set
        for f in &out.frontier {
            assert!(out.evaluated.iter().any(|e| e.setting == f.setting));
        }
    }

    #[test]
    fn mobo_runs_to_q_with_original_repr() {
        let sp = space();
        let out = run_mobo(&sp, oracle, &quick_cfg(SpaceRepr::Original)).unwrap();
        assert_eq!(out.evaluated.len(), 18);
        // no duplicate evaluations
        let set: HashSet<_> = out.evaluated.iter().map(|e| e.setting.clone()).collect();
        assert_eq!(set.len(), 18);
    }

    #[test]
    fn encoded_mobo_runs_and_beats_or_matches_random_on_average() {
        let sp = space();
        let mobo = run_mobo(&sp, oracle, &quick_cfg(SpaceRepr::TwoPhaseEncoder)).unwrap();
        let rand = random_search(&sp, oracle, 18, 5).unwrap();
        let ref_size = sp.max_size_bits();
        let hv_m = hypervolume(&mobo.frontier, ref_size);
        let hv_r = hypervolume(&rand.frontier, ref_size);
        // with a smooth oracle, guided search should not be much worse
        assert!(hv_m > 0.6 * hv_r, "MOBO hv {hv_m} vs random hv {hv_r}");
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lightts-mobo-{}-{name}", std::process::id()))
    }

    fn trial_fingerprint(out: &MoboOutcome) -> Vec<(StudentSetting, u64, u64)> {
        out.evaluated
            .iter()
            .map(|e| (e.setting.clone(), e.accuracy.to_bits(), e.size_bits))
            .collect()
    }

    #[test]
    fn resumable_fresh_run_matches_plain_run_exactly() {
        let sp = space();
        let cfg = quick_cfg(SpaceRepr::Normalized);
        let plain = run_mobo(&sp, oracle, &cfg).unwrap();
        let path = tmp("fresh.ckpt");
        let _ = std::fs::remove_file(&path);
        let resumable = run_mobo_resumable(&sp, oracle, &cfg, &path).unwrap();
        assert_eq!(trial_fingerprint(&plain), trial_fingerprint(&resumable));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn killed_and_resumed_run_is_bit_identical_to_uninterrupted() {
        let sp = space();
        let cfg = quick_cfg(SpaceRepr::TwoPhaseEncoder);
        let uninterrupted = run_mobo(&sp, oracle, &cfg).unwrap();
        // kill during init (trial 2), early BO (7), and post-encoder-refresh
        // BO (16; the refresh fires at evaluation 14 = p_init 6 + 8)
        for kill_at in [2usize, 7, 16] {
            let path = tmp(&format!("kill{kill_at}.ckpt"));
            let _ = std::fs::remove_file(&path);
            let calls = std::cell::Cell::new(0usize);
            let flaky = |s: &StudentSetting| {
                calls.set(calls.get() + 1);
                if calls.get() == kill_at {
                    Err("injected crash".to_string())
                } else {
                    oracle(s)
                }
            };
            let err = run_mobo_resumable(&sp, flaky, &cfg, &path).unwrap_err();
            assert!(matches!(err, SearchError::Evaluator { .. }), "{err}");
            let resumed = run_mobo_resumable(&sp, oracle, &cfg, &path).unwrap();
            assert_eq!(
                trial_fingerprint(&uninterrupted),
                trial_fingerprint(&resumed),
                "kill at trial {kill_at} diverged after resume"
            );
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn corrupt_mobo_checkpoint_is_a_typed_error() {
        let sp = space();
        let cfg = quick_cfg(SpaceRepr::Original);
        let path = tmp("corrupt.ckpt");
        std::fs::write(&path, b"garbage").unwrap();
        let err = run_mobo_resumable(&sp, oracle, &cfg, &path).unwrap_err();
        assert!(matches!(err, SearchError::Checkpoint { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oracle_errors_propagate() {
        let sp = space();
        let failing = |_: &StudentSetting| Err::<f64, String>("boom".into());
        let err = random_search(&sp, failing, 4, 1).unwrap_err();
        assert!(matches!(err, SearchError::Evaluator { .. }));
    }

    #[test]
    fn config_validation() {
        let sp = space();
        let mut cfg = quick_cfg(SpaceRepr::Original);
        cfg.p_init = 0;
        assert!(run_mobo(&sp, oracle, &cfg).is_err());
        let mut cfg = quick_cfg(SpaceRepr::Original);
        cfg.q = 2;
        cfg.p_init = 6;
        assert!(run_mobo(&sp, oracle, &cfg).is_err());
    }

    #[test]
    fn repr_names_match_table5() {
        assert_eq!(SpaceRepr::Original.as_str(), "Original");
        assert_eq!(SpaceRepr::Normalized.as_str(), "Normalized");
        assert_eq!(SpaceRepr::SingleEncoder.as_str(), "Single Encoder");
        assert_eq!(SpaceRepr::TwoPhaseEncoder.as_str(), "Two-phase Encoder");
    }
}
