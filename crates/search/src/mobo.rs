//! Multi-objective Bayesian optimization (paper Section 3.3.3, Figure 11).
//!
//! The loop: evaluate `P` random settings with the (expensive) accuracy
//! oracle, then repeat until `Q` evaluations — fit a GP on the evaluated
//! settings' representations, draw a random scalarization weight `β`
//! (\[29\]'s random-trade-off strategy), score a candidate pool with Expected
//! Improvement on the joint objective `g(x) = β·f(x) − (1−β)·Size(x)`, and
//! evaluate the winner. Four search variants reproduce the paper's
//! comparisons:
//!
//! * [`SpaceRepr::Original`] — GP on raw `(L, F, W)` values (classic MOBO).
//! * [`SpaceRepr::Normalized`] — GP on min-max-scaled values.
//! * [`SpaceRepr::SingleEncoder`] — GP on an autoencoder latent (ablation).
//! * [`SpaceRepr::TwoPhaseEncoder`] — GP on the accuracy-aligned latent
//!   (the full Encoded MOBO).
//!
//! Plus [`random_search`], the no-model baseline of Figure 22/Table 6.

use crate::acquisition::expected_improvement;
use crate::encoder::{train_encoder, EncoderConfig, TwoPhaseEncoder};
use crate::gp::GaussianProcess;
use crate::pareto::{pareto_frontier, Evaluated};
use crate::space::{SearchSpace, StudentSetting};
use crate::{Result, SearchError};
use lightts_obs as obs;
use lightts_tensor::rng::seeded;
use rand::Rng;
use std::collections::HashSet;
use std::time::Instant;

/// The setting representation the GP operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceRepr {
    /// Raw discrete values (the paper's problematic "original space").
    Original,
    /// Min-max normalized values.
    Normalized,
    /// Autoencoder latent without accuracy alignment (single phase).
    SingleEncoder,
    /// The full two-phase encoder latent (Encoded MOBO).
    TwoPhaseEncoder,
}

impl SpaceRepr {
    /// Display name matching the paper's Table 5 rows.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpaceRepr::Original => "Original",
            SpaceRepr::Normalized => "Normalized",
            SpaceRepr::SingleEncoder => "Single Encoder",
            SpaceRepr::TwoPhaseEncoder => "Two-phase Encoder",
        }
    }
}

/// MOBO configuration (paper: `P = 10`, `Q = 50`).
#[derive(Debug, Clone, Copy)]
pub struct MoboConfig {
    /// Total accuracy evaluations `Q`.
    pub q: usize,
    /// Random initial evaluations `P`.
    pub p_init: usize,
    /// Candidate pool size scored per iteration.
    pub candidates: usize,
    /// Setting representation for the GP.
    pub repr: SpaceRepr,
    /// Encoder hyper-parameters (encoder representations only).
    pub encoder: EncoderConfig,
    /// Refresh (retrain) the encoder after this many new evaluations.
    pub encoder_refresh: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MoboConfig {
    fn default() -> Self {
        MoboConfig {
            q: 50,
            p_init: 10,
            candidates: 256,
            repr: SpaceRepr::TwoPhaseEncoder,
            encoder: EncoderConfig::default(),
            encoder_refresh: 10,
            seed: 0x30B0,
        }
    }
}

/// Result of a search run.
#[derive(Debug, Clone)]
pub struct MoboOutcome {
    /// Every evaluated setting with accuracy and size, in evaluation order.
    pub evaluated: Vec<Evaluated>,
    /// The Pareto frontier of the evaluated set.
    pub frontier: Vec<Evaluated>,
    /// Wall-clock seconds spent (dominated by oracle calls).
    pub seconds: f64,
}

fn call_oracle<F>(oracle: &mut F, setting: &StudentSetting) -> Result<f64>
where
    F: FnMut(&StudentSetting) -> std::result::Result<f64, String>,
{
    oracle(setting).map_err(|what| SearchError::Evaluator { what })
}

/// Pure random search: evaluate `q` distinct random settings.
pub fn random_search<F>(
    space: &SearchSpace,
    mut oracle: F,
    q: usize,
    seed: u64,
) -> Result<MoboOutcome>
where
    F: FnMut(&StudentSetting) -> std::result::Result<f64, String>,
{
    space.validate()?;
    let start = Instant::now();
    let mut rng = seeded(seed);
    let settings = space.sample_distinct(&mut rng, q);
    let mut evaluated = Vec::with_capacity(settings.len());
    for s in settings {
        let accuracy = call_oracle(&mut oracle, &s)?;
        let size_bits = space.size_bits(&s);
        evaluated.push(Evaluated { setting: s, accuracy, size_bits });
    }
    let frontier = pareto_frontier(&evaluated);
    Ok(MoboOutcome { evaluated, frontier, seconds: start.elapsed().as_secs_f64() })
}

struct ReprBuilder<'a> {
    space: &'a SearchSpace,
    repr: SpaceRepr,
    encoder: Option<TwoPhaseEncoder>,
}

impl<'a> ReprBuilder<'a> {
    fn needs_encoder(repr: SpaceRepr) -> bool {
        matches!(repr, SpaceRepr::SingleEncoder | SpaceRepr::TwoPhaseEncoder)
    }

    fn refresh(&mut self, evaluated: &[Evaluated], cfg: &MoboConfig) -> Result<()> {
        if !Self::needs_encoder(self.repr) {
            return Ok(());
        }
        let pairs: Vec<(StudentSetting, f64)> =
            evaluated.iter().map(|e| (e.setting.clone(), e.accuracy)).collect();
        let with_predictor = self.repr == SpaceRepr::TwoPhaseEncoder;
        self.encoder = Some(train_encoder(self.space, &pairs, &cfg.encoder, with_predictor)?);
        Ok(())
    }

    fn encode(&self, setting: &StudentSetting) -> Result<Vec<f32>> {
        match self.repr {
            SpaceRepr::Original => Ok(self.space.encode_raw(setting)),
            SpaceRepr::Normalized => Ok(self.space.encode_normalized(setting)),
            SpaceRepr::SingleEncoder | SpaceRepr::TwoPhaseEncoder => self
                .encoder
                .as_ref()
                .ok_or_else(|| SearchError::BadConfig { what: "encoder not trained".into() })?
                .encode(self.space, setting),
        }
    }
}

/// Runs (encoded) multi-objective Bayesian optimization.
///
/// The oracle returns the AED accuracy of a setting; errors are surfaced as
/// [`SearchError::Evaluator`]. Returns all `Q` evaluations and their Pareto
/// frontier.
pub fn run_mobo<F>(space: &SearchSpace, mut oracle: F, cfg: &MoboConfig) -> Result<MoboOutcome>
where
    F: FnMut(&StudentSetting) -> std::result::Result<f64, String>,
{
    space.validate()?;
    if cfg.p_init == 0 || cfg.q < cfg.p_init {
        return Err(SearchError::BadConfig {
            what: format!("need 0 < P ≤ Q, got P={} Q={}", cfg.p_init, cfg.q),
        });
    }
    let start = Instant::now();
    let mut rng = seeded(cfg.seed);
    let max_size = space.max_size_bits() as f64;

    // ----- initialization: P random evaluations -----
    let mut evaluated: Vec<Evaluated> = Vec::with_capacity(cfg.q);
    let mut seen: HashSet<StudentSetting> = HashSet::new();
    for s in space.sample_distinct(&mut rng, cfg.p_init) {
        let accuracy = call_oracle(&mut oracle, &s)?;
        let size_bits = space.size_bits(&s);
        seen.insert(s.clone());
        evaluated.push(Evaluated { setting: s, accuracy, size_bits });
    }

    let mut reprs = ReprBuilder { space, repr: cfg.repr, encoder: None };
    reprs.refresh(&evaluated, cfg)?;
    let mut since_refresh = 0usize;

    // ----- BO iterations -----
    let trial_counter = obs::global().counter("search.trials");
    let acq_ns = obs::global().histogram("search.acquisition_ns");
    while evaluated.len() < cfg.q {
        let t_acq = Instant::now();
        let xs: Vec<Vec<f32>> =
            evaluated.iter().map(|e| reprs.encode(&e.setting)).collect::<Result<_>>()?;
        let ys: Vec<f32> = evaluated.iter().map(|e| e.accuracy as f32).collect();
        let gp = GaussianProcess::fit(xs, &ys)?;

        // random scalarization trade-off (PACE-style)
        let beta: f32 = rng.gen_range(0.0..1.0);
        let g_of = |acc: f32, size_bits: u64| -> f32 {
            beta * acc - (1.0 - beta) * (size_bits as f64 / max_size) as f32
        };
        let best_g = evaluated
            .iter()
            .map(|e| g_of(e.accuracy as f32, e.size_bits))
            .fold(f32::NEG_INFINITY, f32::max);

        // candidate pool: unevaluated settings
        let mut best_candidate: Option<(StudentSetting, f32)> = None;
        let mut tried = 0usize;
        while tried < cfg.candidates {
            let s = space.random_setting(&mut rng);
            tried += 1;
            if seen.contains(&s) {
                continue;
            }
            let z = reprs.encode(&s)?;
            let (mu, var) = gp.predict(&z)?;
            let g_mean = g_of(mu, space.size_bits(&s));
            let g_var = beta * beta * var;
            let ei = expected_improvement(g_mean, g_var, best_g);
            if best_candidate.as_ref().is_none_or(|(_, b)| ei > *b) {
                best_candidate = Some((s, ei));
            }
        }
        let Some((chosen, _)) = best_candidate else {
            break; // space exhausted
        };
        let acquisition = t_acq.elapsed();
        acq_ns.record_duration(acquisition);

        let accuracy = call_oracle(&mut oracle, &chosen)?;
        let size_bits = space.size_bits(&chosen);
        seen.insert(chosen.clone());
        evaluated.push(Evaluated { setting: chosen, accuracy, size_bits });
        trial_counter.inc();
        obs::event!("mobo.trial", {
            trial: evaluated.len(),
            repr: cfg.repr.as_str(),
            beta: beta,
            acquisition_us: acquisition.as_secs_f64() * 1e6,
            accuracy: accuracy,
            size_bits: size_bits,
            frontier: pareto_frontier(&evaluated).len(),
        });

        since_refresh += 1;
        if since_refresh >= cfg.encoder_refresh.max(1) && ReprBuilder::needs_encoder(cfg.repr) {
            reprs.refresh(&evaluated, cfg)?;
            since_refresh = 0;
        }
    }

    let frontier = pareto_frontier(&evaluated);
    Ok(MoboOutcome { evaluated, frontier, seconds: start.elapsed().as_secs_f64() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::hypervolume;

    fn space() -> SearchSpace {
        SearchSpace::paper_default(1, 32, 5, 4)
    }

    /// Cheap synthetic oracle: accuracy rises with layers and bits with
    /// diminishing returns — qualitatively like real students.
    fn oracle(s: &StudentSetting) -> std::result::Result<f64, String> {
        let layers: usize = s.0.iter().map(|b| b.0).sum();
        let bits: u32 = s.0.iter().map(|b| u32::from(b.2)).sum();
        let filt: usize = s.0.iter().map(|b| b.1).sum();
        let acc = 1.0
            - (-0.25 * layers as f64).exp() * 0.5
            - (-0.05 * f64::from(bits)).exp() * 0.3
            - (filt as f64 / 480.0 - 0.3).powi(2) * 0.2;
        Ok(acc.clamp(0.0, 1.0))
    }

    fn quick_cfg(repr: SpaceRepr) -> MoboConfig {
        MoboConfig {
            q: 18,
            p_init: 6,
            candidates: 64,
            repr,
            encoder: EncoderConfig { epochs: 15, r_samples: 64, ..Default::default() },
            encoder_refresh: 8,
            seed: 5,
        }
    }

    #[test]
    fn random_search_evaluates_q_settings() {
        let sp = space();
        let out = random_search(&sp, oracle, 12, 3).unwrap();
        assert_eq!(out.evaluated.len(), 12);
        assert!(!out.frontier.is_empty());
        // frontier points must come from the evaluated set
        for f in &out.frontier {
            assert!(out.evaluated.iter().any(|e| e.setting == f.setting));
        }
    }

    #[test]
    fn mobo_runs_to_q_with_original_repr() {
        let sp = space();
        let out = run_mobo(&sp, oracle, &quick_cfg(SpaceRepr::Original)).unwrap();
        assert_eq!(out.evaluated.len(), 18);
        // no duplicate evaluations
        let set: HashSet<_> = out.evaluated.iter().map(|e| e.setting.clone()).collect();
        assert_eq!(set.len(), 18);
    }

    #[test]
    fn encoded_mobo_runs_and_beats_or_matches_random_on_average() {
        let sp = space();
        let mobo = run_mobo(&sp, oracle, &quick_cfg(SpaceRepr::TwoPhaseEncoder)).unwrap();
        let rand = random_search(&sp, oracle, 18, 5).unwrap();
        let ref_size = sp.max_size_bits();
        let hv_m = hypervolume(&mobo.frontier, ref_size);
        let hv_r = hypervolume(&rand.frontier, ref_size);
        // with a smooth oracle, guided search should not be much worse
        assert!(hv_m > 0.6 * hv_r, "MOBO hv {hv_m} vs random hv {hv_r}");
    }

    #[test]
    fn oracle_errors_propagate() {
        let sp = space();
        let failing = |_: &StudentSetting| Err::<f64, String>("boom".into());
        let err = random_search(&sp, failing, 4, 1).unwrap_err();
        assert!(matches!(err, SearchError::Evaluator { .. }));
    }

    #[test]
    fn config_validation() {
        let sp = space();
        let mut cfg = quick_cfg(SpaceRepr::Original);
        cfg.p_init = 0;
        assert!(run_mobo(&sp, oracle, &cfg).is_err());
        let mut cfg = quick_cfg(SpaceRepr::Original);
        cfg.q = 2;
        cfg.p_init = 6;
        assert!(run_mobo(&sp, oracle, &cfg).is_err());
    }

    #[test]
    fn repr_names_match_table5() {
        assert_eq!(SpaceRepr::Original.as_str(), "Original");
        assert_eq!(SpaceRepr::Normalized.as_str(), "Normalized");
        assert_eq!(SpaceRepr::SingleEncoder.as_str(), "Single Encoder");
        assert_eq!(SpaceRepr::TwoPhaseEncoder.as_str(), "Two-phase Encoder");
    }
}
