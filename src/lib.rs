//! Umbrella crate for the LightTS reproduction workspace.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the library itself lives in
//! the [`lightts`] facade crate and its sub-crates. See `README.md` for the
//! repository map, `ARCHITECTURE.md` for the crate dependency graph and
//! data-flow walkthroughs, and `DESIGN.md` for the paper-to-module
//! inventory.

#![warn(missing_docs)]

pub use lightts;
