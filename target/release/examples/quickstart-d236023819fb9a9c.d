/root/repo/target/release/examples/quickstart-d236023819fb9a9c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d236023819fb9a9c: examples/quickstart.rs

examples/quickstart.rs:
