/root/repo/target/release/examples/pareto_search-6dc8b5dcf45e5f08.d: examples/pareto_search.rs

/root/repo/target/release/examples/pareto_search-6dc8b5dcf45e5f08: examples/pareto_search.rs

examples/pareto_search.rs:
