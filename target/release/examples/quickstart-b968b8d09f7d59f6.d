/root/repo/target/release/examples/quickstart-b968b8d09f7d59f6.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b968b8d09f7d59f6: examples/quickstart.rs

examples/quickstart.rs:
