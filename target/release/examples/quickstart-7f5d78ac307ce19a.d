/root/repo/target/release/examples/quickstart-7f5d78ac307ce19a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7f5d78ac307ce19a: examples/quickstart.rs

examples/quickstart.rs:
