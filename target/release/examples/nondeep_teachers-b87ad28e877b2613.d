/root/repo/target/release/examples/nondeep_teachers-b87ad28e877b2613.d: examples/nondeep_teachers.rs

/root/repo/target/release/examples/nondeep_teachers-b87ad28e877b2613: examples/nondeep_teachers.rs

examples/nondeep_teachers.rs:
