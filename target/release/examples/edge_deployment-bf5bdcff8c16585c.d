/root/repo/target/release/examples/edge_deployment-bf5bdcff8c16585c.d: examples/edge_deployment.rs

/root/repo/target/release/examples/edge_deployment-bf5bdcff8c16585c: examples/edge_deployment.rs

examples/edge_deployment.rs:
