/root/repo/target/release/examples/forecast_distill-80d1b4a82ac56ba9.d: examples/forecast_distill.rs

/root/repo/target/release/examples/forecast_distill-80d1b4a82ac56ba9: examples/forecast_distill.rs

examples/forecast_distill.rs:
