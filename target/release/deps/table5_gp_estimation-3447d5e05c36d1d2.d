/root/repo/target/release/deps/table5_gp_estimation-3447d5e05c36d1d2.d: crates/bench/src/bin/table5_gp_estimation.rs

/root/repo/target/release/deps/table5_gp_estimation-3447d5e05c36d1d2: crates/bench/src/bin/table5_gp_estimation.rs

crates/bench/src/bin/table5_gp_estimation.rs:
