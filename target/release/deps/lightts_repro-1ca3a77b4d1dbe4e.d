/root/repo/target/release/deps/lightts_repro-1ca3a77b4d1dbe4e.d: src/lib.rs

/root/repo/target/release/deps/liblightts_repro-1ca3a77b4d1dbe4e.rlib: src/lib.rs

/root/repo/target/release/deps/liblightts_repro-1ca3a77b4d1dbe4e.rmeta: src/lib.rs

src/lib.rs:
