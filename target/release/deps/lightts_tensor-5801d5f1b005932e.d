/root/repo/target/release/deps/lightts_tensor-5801d5f1b005932e.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/linalg.rs crates/tensor/src/par.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/liblightts_tensor-5801d5f1b005932e.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/linalg.rs crates/tensor/src/par.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/liblightts_tensor-5801d5f1b005932e.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/linalg.rs crates/tensor/src/par.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/par.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
