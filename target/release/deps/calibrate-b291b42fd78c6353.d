/root/repo/target/release/deps/calibrate-b291b42fd78c6353.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-b291b42fd78c6353: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
