/root/repo/target/release/deps/proptest-399086414c44ad28.d: crates/compat/proptest/src/lib.rs crates/compat/proptest/src/strategy.rs crates/compat/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-399086414c44ad28.rlib: crates/compat/proptest/src/lib.rs crates/compat/proptest/src/strategy.rs crates/compat/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-399086414c44ad28.rmeta: crates/compat/proptest/src/lib.rs crates/compat/proptest/src/strategy.rs crates/compat/proptest/src/test_runner.rs

crates/compat/proptest/src/lib.rs:
crates/compat/proptest/src/strategy.rs:
crates/compat/proptest/src/test_runner.rs:
