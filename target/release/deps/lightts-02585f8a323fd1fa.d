/root/repo/target/release/deps/lightts-02585f8a323fd1fa.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/release/deps/liblightts-02585f8a323fd1fa.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/release/deps/liblightts-02585f8a323fd1fa.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/pipeline.rs:
crates/core/src/runtime.rs:
