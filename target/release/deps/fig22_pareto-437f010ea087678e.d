/root/repo/target/release/deps/fig22_pareto-437f010ea087678e.d: crates/bench/src/bin/fig22_pareto.rs

/root/repo/target/release/deps/fig22_pareto-437f010ea087678e: crates/bench/src/bin/fig22_pareto.rs

crates/bench/src/bin/fig22_pareto.rs:
