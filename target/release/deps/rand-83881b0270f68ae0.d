/root/repo/target/release/deps/rand-83881b0270f68ae0.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-83881b0270f68ae0.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-83881b0270f68ae0.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
