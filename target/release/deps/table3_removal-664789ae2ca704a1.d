/root/repo/target/release/deps/table3_removal-664789ae2ca704a1.d: crates/bench/src/bin/table3_removal.rs

/root/repo/target/release/deps/table3_removal-664789ae2ca704a1: crates/bench/src/bin/table3_removal.rs

crates/bench/src/bin/table3_removal.rs:
