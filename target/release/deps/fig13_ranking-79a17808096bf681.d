/root/repo/target/release/deps/fig13_ranking-79a17808096bf681.d: crates/bench/src/bin/fig13_ranking.rs

/root/repo/target/release/deps/fig13_ranking-79a17808096bf681: crates/bench/src/bin/fig13_ranking.rs

crates/bench/src/bin/fig13_ranking.rs:
