/root/repo/target/release/deps/micro-401222a1f5659440.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-401222a1f5659440: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
