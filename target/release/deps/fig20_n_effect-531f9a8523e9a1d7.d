/root/repo/target/release/deps/fig20_n_effect-531f9a8523e9a1d7.d: crates/bench/src/bin/fig20_n_effect.rs

/root/repo/target/release/deps/fig20_n_effect-531f9a8523e9a1d7: crates/bench/src/bin/fig20_n_effect.rs

crates/bench/src/bin/fig20_n_effect.rs:
