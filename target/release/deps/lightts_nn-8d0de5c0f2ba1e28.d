/root/repo/target/release/deps/lightts_nn-8d0de5c0f2ba1e28.d: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

/root/repo/target/release/deps/liblightts_nn-8d0de5c0f2ba1e28.rlib: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

/root/repo/target/release/deps/liblightts_nn-8d0de5c0f2ba1e28.rmeta: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

crates/nn/src/lib.rs:
crates/nn/src/error.rs:
crates/nn/src/param.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/optim.rs:
crates/nn/src/serialize.rs:
crates/nn/src/size.rs:
