/root/repo/target/release/deps/ablation_aed-a7e7642a3cb980b1.d: crates/bench/src/bin/ablation_aed.rs

/root/repo/target/release/deps/ablation_aed-a7e7642a3cb980b1: crates/bench/src/bin/ablation_aed.rs

crates/bench/src/bin/ablation_aed.rs:
