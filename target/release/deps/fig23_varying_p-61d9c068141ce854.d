/root/repo/target/release/deps/fig23_varying_p-61d9c068141ce854.d: crates/bench/src/bin/fig23_varying_p.rs

/root/repo/target/release/deps/fig23_varying_p-61d9c068141ce854: crates/bench/src/bin/fig23_varying_p.rs

crates/bench/src/bin/fig23_varying_p.rs:
