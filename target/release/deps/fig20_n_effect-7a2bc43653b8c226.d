/root/repo/target/release/deps/fig20_n_effect-7a2bc43653b8c226.d: crates/bench/src/bin/fig20_n_effect.rs

/root/repo/target/release/deps/fig20_n_effect-7a2bc43653b8c226: crates/bench/src/bin/fig20_n_effect.rs

crates/bench/src/bin/fig20_n_effect.rs:
