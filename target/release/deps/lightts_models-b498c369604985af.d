/root/repo/target/release/deps/lightts_models-b498c369604985af.d: crates/models/src/lib.rs crates/models/src/classifier.rs crates/models/src/error.rs crates/models/src/ensemble.rs crates/models/src/forecaster.rs crates/models/src/inception.rs crates/models/src/metrics.rs crates/models/src/nondeep.rs crates/models/src/nondeep/cif.rs crates/models/src/nondeep/forest.rs crates/models/src/nondeep/intervals.rs crates/models/src/nondeep/tde.rs crates/models/src/nondeep/tree.rs

/root/repo/target/release/deps/liblightts_models-b498c369604985af.rlib: crates/models/src/lib.rs crates/models/src/classifier.rs crates/models/src/error.rs crates/models/src/ensemble.rs crates/models/src/forecaster.rs crates/models/src/inception.rs crates/models/src/metrics.rs crates/models/src/nondeep.rs crates/models/src/nondeep/cif.rs crates/models/src/nondeep/forest.rs crates/models/src/nondeep/intervals.rs crates/models/src/nondeep/tde.rs crates/models/src/nondeep/tree.rs

/root/repo/target/release/deps/liblightts_models-b498c369604985af.rmeta: crates/models/src/lib.rs crates/models/src/classifier.rs crates/models/src/error.rs crates/models/src/ensemble.rs crates/models/src/forecaster.rs crates/models/src/inception.rs crates/models/src/metrics.rs crates/models/src/nondeep.rs crates/models/src/nondeep/cif.rs crates/models/src/nondeep/forest.rs crates/models/src/nondeep/intervals.rs crates/models/src/nondeep/tde.rs crates/models/src/nondeep/tree.rs

crates/models/src/lib.rs:
crates/models/src/classifier.rs:
crates/models/src/error.rs:
crates/models/src/ensemble.rs:
crates/models/src/forecaster.rs:
crates/models/src/inception.rs:
crates/models/src/metrics.rs:
crates/models/src/nondeep.rs:
crates/models/src/nondeep/cif.rs:
crates/models/src/nondeep/forest.rs:
crates/models/src/nondeep/intervals.rs:
crates/models/src/nondeep/tde.rs:
crates/models/src/nondeep/tree.rs:
