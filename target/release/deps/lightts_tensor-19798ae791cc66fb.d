/root/repo/target/release/deps/lightts_tensor-19798ae791cc66fb.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/linalg.rs crates/tensor/src/par.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/liblightts_tensor-19798ae791cc66fb.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/linalg.rs crates/tensor/src/par.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/liblightts_tensor-19798ae791cc66fb.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/linalg.rs crates/tensor/src/par.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/par.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
