/root/repo/target/release/deps/table6_search_time-60629f13bb76b246.d: crates/bench/src/bin/table6_search_time.rs

/root/repo/target/release/deps/table6_search_time-60629f13bb76b246: crates/bench/src/bin/table6_search_time.rs

crates/bench/src/bin/table6_search_time.rs:
