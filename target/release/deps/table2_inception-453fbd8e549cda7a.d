/root/repo/target/release/deps/table2_inception-453fbd8e549cda7a.d: crates/bench/src/bin/table2_inception.rs

/root/repo/target/release/deps/table2_inception-453fbd8e549cda7a: crates/bench/src/bin/table2_inception.rs

crates/bench/src/bin/table2_inception.rs:
