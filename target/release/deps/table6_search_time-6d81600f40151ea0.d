/root/repo/target/release/deps/table6_search_time-6d81600f40151ea0.d: crates/bench/src/bin/table6_search_time.rs

/root/repo/target/release/deps/table6_search_time-6d81600f40151ea0: crates/bench/src/bin/table6_search_time.rs

crates/bench/src/bin/table6_search_time.rs:
