/root/repo/target/release/deps/calibrate-7feb4c43a52e9266.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-7feb4c43a52e9266: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
