/root/repo/target/release/deps/fig23_varying_p-fe635e754f9476c0.d: crates/bench/src/bin/fig23_varying_p.rs

/root/repo/target/release/deps/fig23_varying_p-fe635e754f9476c0: crates/bench/src/bin/fig23_varying_p.rs

crates/bench/src/bin/fig23_varying_p.rs:
