/root/repo/target/release/deps/fig17_fewclass_ranking-11ccdab872051c5c.d: crates/bench/src/bin/fig17_fewclass_ranking.rs

/root/repo/target/release/deps/fig17_fewclass_ranking-11ccdab872051c5c: crates/bench/src/bin/fig17_fewclass_ranking.rs

crates/bench/src/bin/fig17_fewclass_ranking.rs:
