/root/repo/target/release/deps/fig22_pareto-8f0ab8ce67baf91d.d: crates/bench/src/bin/fig22_pareto.rs

/root/repo/target/release/deps/fig22_pareto-8f0ab8ce67baf91d: crates/bench/src/bin/fig22_pareto.rs

crates/bench/src/bin/fig22_pareto.rs:
