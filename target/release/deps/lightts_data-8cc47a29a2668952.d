/root/repo/target/release/deps/lightts_data-8cc47a29a2668952.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

/root/repo/target/release/deps/liblightts_data-8cc47a29a2668952.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

/root/repo/target/release/deps/liblightts_data-8cc47a29a2668952.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/series.rs:
crates/data/src/archive.rs:
crates/data/src/forecast.rs:
crates/data/src/synth.rs:
crates/data/src/ucr.rs:
