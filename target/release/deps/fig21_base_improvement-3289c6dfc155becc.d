/root/repo/target/release/deps/fig21_base_improvement-3289c6dfc155becc.d: crates/bench/src/bin/fig21_base_improvement.rs

/root/repo/target/release/deps/fig21_base_improvement-3289c6dfc155becc: crates/bench/src/bin/fig21_base_improvement.rs

crates/bench/src/bin/fig21_base_improvement.rs:
