/root/repo/target/release/deps/lightts_repro-d8cd8330d81ce0b4.d: src/lib.rs

/root/repo/target/release/deps/liblightts_repro-d8cd8330d81ce0b4.rlib: src/lib.rs

/root/repo/target/release/deps/liblightts_repro-d8cd8330d81ce0b4.rmeta: src/lib.rs

src/lib.rs:
