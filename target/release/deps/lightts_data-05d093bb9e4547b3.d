/root/repo/target/release/deps/lightts_data-05d093bb9e4547b3.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

/root/repo/target/release/deps/liblightts_data-05d093bb9e4547b3.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

/root/repo/target/release/deps/liblightts_data-05d093bb9e4547b3.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/series.rs:
crates/data/src/archive.rs:
crates/data/src/forecast.rs:
crates/data/src/synth.rs:
crates/data/src/ucr.rs:
