/root/repo/target/release/deps/lightts_search-23137e4ef20b9cbb.d: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

/root/repo/target/release/deps/liblightts_search-23137e4ef20b9cbb.rlib: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

/root/repo/target/release/deps/liblightts_search-23137e4ef20b9cbb.rmeta: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

crates/search/src/lib.rs:
crates/search/src/error.rs:
crates/search/src/acquisition.rs:
crates/search/src/encoder.rs:
crates/search/src/gp.rs:
crates/search/src/mobo.rs:
crates/search/src/pareto.rs:
crates/search/src/space.rs:
