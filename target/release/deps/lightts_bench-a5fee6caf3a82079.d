/root/repo/target/release/deps/lightts_bench-a5fee6caf3a82079.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/liblightts_bench-a5fee6caf3a82079.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/liblightts_bench-a5fee6caf3a82079.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/context.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
