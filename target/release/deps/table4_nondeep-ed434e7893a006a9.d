/root/repo/target/release/deps/table4_nondeep-ed434e7893a006a9.d: crates/bench/src/bin/table4_nondeep.rs

/root/repo/target/release/deps/table4_nondeep-ed434e7893a006a9: crates/bench/src/bin/table4_nondeep.rs

crates/bench/src/bin/table4_nondeep.rs:
