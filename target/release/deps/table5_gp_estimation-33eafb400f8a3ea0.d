/root/repo/target/release/deps/table5_gp_estimation-33eafb400f8a3ea0.d: crates/bench/src/bin/table5_gp_estimation.rs

/root/repo/target/release/deps/table5_gp_estimation-33eafb400f8a3ea0: crates/bench/src/bin/table5_gp_estimation.rs

crates/bench/src/bin/table5_gp_estimation.rs:
