/root/repo/target/release/deps/lightts-2c6c83f950715e55.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/release/deps/liblightts-2c6c83f950715e55.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/release/deps/liblightts-2c6c83f950715e55.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/pipeline.rs:
crates/core/src/runtime.rs:
