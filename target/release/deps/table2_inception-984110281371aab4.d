/root/repo/target/release/deps/table2_inception-984110281371aab4.d: crates/bench/src/bin/table2_inception.rs

/root/repo/target/release/deps/table2_inception-984110281371aab4: crates/bench/src/bin/table2_inception.rs

crates/bench/src/bin/table2_inception.rs:
