/root/repo/target/release/deps/lightts_repro-b809066a39102ebf.d: src/lib.rs

/root/repo/target/release/deps/liblightts_repro-b809066a39102ebf.rlib: src/lib.rs

/root/repo/target/release/deps/liblightts_repro-b809066a39102ebf.rmeta: src/lib.rs

src/lib.rs:
