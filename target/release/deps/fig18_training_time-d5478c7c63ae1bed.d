/root/repo/target/release/deps/fig18_training_time-d5478c7c63ae1bed.d: crates/bench/src/bin/fig18_training_time.rs

/root/repo/target/release/deps/fig18_training_time-d5478c7c63ae1bed: crates/bench/src/bin/fig18_training_time.rs

crates/bench/src/bin/fig18_training_time.rs:
