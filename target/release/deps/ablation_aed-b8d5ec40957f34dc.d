/root/repo/target/release/deps/ablation_aed-b8d5ec40957f34dc.d: crates/bench/src/bin/ablation_aed.rs

/root/repo/target/release/deps/ablation_aed-b8d5ec40957f34dc: crates/bench/src/bin/ablation_aed.rs

crates/bench/src/bin/ablation_aed.rs:
