/root/repo/target/release/deps/fig17_fewclass_ranking-f5ed85ac7b50e6e8.d: crates/bench/src/bin/fig17_fewclass_ranking.rs

/root/repo/target/release/deps/fig17_fewclass_ranking-f5ed85ac7b50e6e8: crates/bench/src/bin/fig17_fewclass_ranking.rs

crates/bench/src/bin/fig17_fewclass_ranking.rs:
