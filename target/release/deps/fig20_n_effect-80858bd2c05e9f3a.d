/root/repo/target/release/deps/fig20_n_effect-80858bd2c05e9f3a.d: crates/bench/src/bin/fig20_n_effect.rs

/root/repo/target/release/deps/fig20_n_effect-80858bd2c05e9f3a: crates/bench/src/bin/fig20_n_effect.rs

crates/bench/src/bin/fig20_n_effect.rs:
