/root/repo/target/release/deps/fig13_ranking-5b82d47a7d05057b.d: crates/bench/src/bin/fig13_ranking.rs

/root/repo/target/release/deps/fig13_ranking-5b82d47a7d05057b: crates/bench/src/bin/fig13_ranking.rs

crates/bench/src/bin/fig13_ranking.rs:
