/root/repo/target/release/deps/fig18_training_time-de3d710b50d463b1.d: crates/bench/src/bin/fig18_training_time.rs

/root/repo/target/release/deps/fig18_training_time-de3d710b50d463b1: crates/bench/src/bin/fig18_training_time.rs

crates/bench/src/bin/fig18_training_time.rs:
