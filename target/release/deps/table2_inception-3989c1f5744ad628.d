/root/repo/target/release/deps/table2_inception-3989c1f5744ad628.d: crates/bench/src/bin/table2_inception.rs

/root/repo/target/release/deps/table2_inception-3989c1f5744ad628: crates/bench/src/bin/table2_inception.rs

crates/bench/src/bin/table2_inception.rs:
