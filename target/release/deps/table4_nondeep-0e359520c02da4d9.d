/root/repo/target/release/deps/table4_nondeep-0e359520c02da4d9.d: crates/bench/src/bin/table4_nondeep.rs

/root/repo/target/release/deps/table4_nondeep-0e359520c02da4d9: crates/bench/src/bin/table4_nondeep.rs

crates/bench/src/bin/table4_nondeep.rs:
