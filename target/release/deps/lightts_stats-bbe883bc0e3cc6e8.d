/root/repo/target/release/deps/lightts_stats-bbe883bc0e3cc6e8.d: crates/stats/src/lib.rs crates/stats/src/cd.rs crates/stats/src/error.rs crates/stats/src/friedman.rs crates/stats/src/ranks.rs crates/stats/src/special.rs crates/stats/src/wilcoxon.rs

/root/repo/target/release/deps/liblightts_stats-bbe883bc0e3cc6e8.rlib: crates/stats/src/lib.rs crates/stats/src/cd.rs crates/stats/src/error.rs crates/stats/src/friedman.rs crates/stats/src/ranks.rs crates/stats/src/special.rs crates/stats/src/wilcoxon.rs

/root/repo/target/release/deps/liblightts_stats-bbe883bc0e3cc6e8.rmeta: crates/stats/src/lib.rs crates/stats/src/cd.rs crates/stats/src/error.rs crates/stats/src/friedman.rs crates/stats/src/ranks.rs crates/stats/src/special.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/cd.rs:
crates/stats/src/error.rs:
crates/stats/src/friedman.rs:
crates/stats/src/ranks.rs:
crates/stats/src/special.rs:
crates/stats/src/wilcoxon.rs:
