/root/repo/target/release/deps/calibrate-44712bdf01d2d07c.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-44712bdf01d2d07c: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
