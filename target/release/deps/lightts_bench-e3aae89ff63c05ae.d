/root/repo/target/release/deps/lightts_bench-e3aae89ff63c05ae.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/lightts_bench-e3aae89ff63c05ae: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/context.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
