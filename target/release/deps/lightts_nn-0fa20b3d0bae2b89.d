/root/repo/target/release/deps/lightts_nn-0fa20b3d0bae2b89.d: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

/root/repo/target/release/deps/liblightts_nn-0fa20b3d0bae2b89.rlib: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

/root/repo/target/release/deps/liblightts_nn-0fa20b3d0bae2b89.rmeta: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

crates/nn/src/lib.rs:
crates/nn/src/error.rs:
crates/nn/src/param.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/optim.rs:
crates/nn/src/serialize.rs:
crates/nn/src/size.rs:
