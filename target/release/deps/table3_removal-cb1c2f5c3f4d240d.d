/root/repo/target/release/deps/table3_removal-cb1c2f5c3f4d240d.d: crates/bench/src/bin/table3_removal.rs

/root/repo/target/release/deps/table3_removal-cb1c2f5c3f4d240d: crates/bench/src/bin/table3_removal.rs

crates/bench/src/bin/table3_removal.rs:
