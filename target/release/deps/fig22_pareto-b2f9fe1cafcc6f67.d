/root/repo/target/release/deps/fig22_pareto-b2f9fe1cafcc6f67.d: crates/bench/src/bin/fig22_pareto.rs

/root/repo/target/release/deps/fig22_pareto-b2f9fe1cafcc6f67: crates/bench/src/bin/fig22_pareto.rs

crates/bench/src/bin/fig22_pareto.rs:
