/root/repo/target/release/deps/fig23_varying_p-40dbc1978438de09.d: crates/bench/src/bin/fig23_varying_p.rs

/root/repo/target/release/deps/fig23_varying_p-40dbc1978438de09: crates/bench/src/bin/fig23_varying_p.rs

crates/bench/src/bin/fig23_varying_p.rs:
