/root/repo/target/release/deps/bytes-23efa9586c4491bb.d: crates/compat/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-23efa9586c4491bb.rlib: crates/compat/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-23efa9586c4491bb.rmeta: crates/compat/bytes/src/lib.rs

crates/compat/bytes/src/lib.rs:
