/root/repo/target/release/deps/fig19_sensitivity-8a40909b20f7e04e.d: crates/bench/src/bin/fig19_sensitivity.rs

/root/repo/target/release/deps/fig19_sensitivity-8a40909b20f7e04e: crates/bench/src/bin/fig19_sensitivity.rs

crates/bench/src/bin/fig19_sensitivity.rs:
