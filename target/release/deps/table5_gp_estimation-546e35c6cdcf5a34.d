/root/repo/target/release/deps/table5_gp_estimation-546e35c6cdcf5a34.d: crates/bench/src/bin/table5_gp_estimation.rs

/root/repo/target/release/deps/table5_gp_estimation-546e35c6cdcf5a34: crates/bench/src/bin/table5_gp_estimation.rs

crates/bench/src/bin/table5_gp_estimation.rs:
