/root/repo/target/release/deps/fig21_base_improvement-1d29071dc7ef6f31.d: crates/bench/src/bin/fig21_base_improvement.rs

/root/repo/target/release/deps/fig21_base_improvement-1d29071dc7ef6f31: crates/bench/src/bin/fig21_base_improvement.rs

crates/bench/src/bin/fig21_base_improvement.rs:
