/root/repo/target/release/deps/lightts-df45e0748fbf71fb.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/release/deps/liblightts-df45e0748fbf71fb.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/release/deps/liblightts-df45e0748fbf71fb.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/pipeline.rs:
crates/core/src/runtime.rs:
