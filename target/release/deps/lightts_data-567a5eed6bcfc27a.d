/root/repo/target/release/deps/lightts_data-567a5eed6bcfc27a.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

/root/repo/target/release/deps/liblightts_data-567a5eed6bcfc27a.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

/root/repo/target/release/deps/liblightts_data-567a5eed6bcfc27a.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/series.rs:
crates/data/src/archive.rs:
crates/data/src/forecast.rs:
crates/data/src/synth.rs:
crates/data/src/ucr.rs:
