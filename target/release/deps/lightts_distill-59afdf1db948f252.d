/root/repo/target/release/deps/lightts_distill-59afdf1db948f252.d: crates/distill/src/lib.rs crates/distill/src/error.rs crates/distill/src/aed.rs crates/distill/src/baselines.rs crates/distill/src/forecast.rs crates/distill/src/loo.rs crates/distill/src/method.rs crates/distill/src/removal.rs crates/distill/src/teacher.rs crates/distill/src/trainer.rs crates/distill/src/weights.rs

/root/repo/target/release/deps/liblightts_distill-59afdf1db948f252.rlib: crates/distill/src/lib.rs crates/distill/src/error.rs crates/distill/src/aed.rs crates/distill/src/baselines.rs crates/distill/src/forecast.rs crates/distill/src/loo.rs crates/distill/src/method.rs crates/distill/src/removal.rs crates/distill/src/teacher.rs crates/distill/src/trainer.rs crates/distill/src/weights.rs

/root/repo/target/release/deps/liblightts_distill-59afdf1db948f252.rmeta: crates/distill/src/lib.rs crates/distill/src/error.rs crates/distill/src/aed.rs crates/distill/src/baselines.rs crates/distill/src/forecast.rs crates/distill/src/loo.rs crates/distill/src/method.rs crates/distill/src/removal.rs crates/distill/src/teacher.rs crates/distill/src/trainer.rs crates/distill/src/weights.rs

crates/distill/src/lib.rs:
crates/distill/src/error.rs:
crates/distill/src/aed.rs:
crates/distill/src/baselines.rs:
crates/distill/src/forecast.rs:
crates/distill/src/loo.rs:
crates/distill/src/method.rs:
crates/distill/src/removal.rs:
crates/distill/src/teacher.rs:
crates/distill/src/trainer.rs:
crates/distill/src/weights.rs:
