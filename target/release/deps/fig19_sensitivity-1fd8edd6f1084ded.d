/root/repo/target/release/deps/fig19_sensitivity-1fd8edd6f1084ded.d: crates/bench/src/bin/fig19_sensitivity.rs

/root/repo/target/release/deps/fig19_sensitivity-1fd8edd6f1084ded: crates/bench/src/bin/fig19_sensitivity.rs

crates/bench/src/bin/fig19_sensitivity.rs:
