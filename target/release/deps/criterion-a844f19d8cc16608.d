/root/repo/target/release/deps/criterion-a844f19d8cc16608.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a844f19d8cc16608.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a844f19d8cc16608.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
