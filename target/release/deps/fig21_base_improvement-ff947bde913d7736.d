/root/repo/target/release/deps/fig21_base_improvement-ff947bde913d7736.d: crates/bench/src/bin/fig21_base_improvement.rs

/root/repo/target/release/deps/fig21_base_improvement-ff947bde913d7736: crates/bench/src/bin/fig21_base_improvement.rs

crates/bench/src/bin/fig21_base_improvement.rs:
