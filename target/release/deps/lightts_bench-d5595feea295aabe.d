/root/repo/target/release/deps/lightts_bench-d5595feea295aabe.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/liblightts_bench-d5595feea295aabe.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/liblightts_bench-d5595feea295aabe.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/context.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
