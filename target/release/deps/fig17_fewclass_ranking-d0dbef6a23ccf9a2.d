/root/repo/target/release/deps/fig17_fewclass_ranking-d0dbef6a23ccf9a2.d: crates/bench/src/bin/fig17_fewclass_ranking.rs

/root/repo/target/release/deps/fig17_fewclass_ranking-d0dbef6a23ccf9a2: crates/bench/src/bin/fig17_fewclass_ranking.rs

crates/bench/src/bin/fig17_fewclass_ranking.rs:
