/root/repo/target/release/deps/table4_nondeep-9f79c3a48d266b20.d: crates/bench/src/bin/table4_nondeep.rs

/root/repo/target/release/deps/table4_nondeep-9f79c3a48d266b20: crates/bench/src/bin/table4_nondeep.rs

crates/bench/src/bin/table4_nondeep.rs:
