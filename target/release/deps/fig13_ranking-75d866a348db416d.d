/root/repo/target/release/deps/fig13_ranking-75d866a348db416d.d: crates/bench/src/bin/fig13_ranking.rs

/root/repo/target/release/deps/fig13_ranking-75d866a348db416d: crates/bench/src/bin/fig13_ranking.rs

crates/bench/src/bin/fig13_ranking.rs:
