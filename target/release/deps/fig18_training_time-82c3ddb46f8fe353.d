/root/repo/target/release/deps/fig18_training_time-82c3ddb46f8fe353.d: crates/bench/src/bin/fig18_training_time.rs

/root/repo/target/release/deps/fig18_training_time-82c3ddb46f8fe353: crates/bench/src/bin/fig18_training_time.rs

crates/bench/src/bin/fig18_training_time.rs:
