/root/repo/target/release/deps/ablation_aed-400eb650b0102fd5.d: crates/bench/src/bin/ablation_aed.rs

/root/repo/target/release/deps/ablation_aed-400eb650b0102fd5: crates/bench/src/bin/ablation_aed.rs

crates/bench/src/bin/ablation_aed.rs:
