/root/repo/target/release/deps/table6_search_time-92e1cf05f396cfab.d: crates/bench/src/bin/table6_search_time.rs

/root/repo/target/release/deps/table6_search_time-92e1cf05f396cfab: crates/bench/src/bin/table6_search_time.rs

crates/bench/src/bin/table6_search_time.rs:
