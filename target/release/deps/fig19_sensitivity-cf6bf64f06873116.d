/root/repo/target/release/deps/fig19_sensitivity-cf6bf64f06873116.d: crates/bench/src/bin/fig19_sensitivity.rs

/root/repo/target/release/deps/fig19_sensitivity-cf6bf64f06873116: crates/bench/src/bin/fig19_sensitivity.rs

crates/bench/src/bin/fig19_sensitivity.rs:
