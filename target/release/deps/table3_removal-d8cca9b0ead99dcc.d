/root/repo/target/release/deps/table3_removal-d8cca9b0ead99dcc.d: crates/bench/src/bin/table3_removal.rs

/root/repo/target/release/deps/table3_removal-d8cca9b0ead99dcc: crates/bench/src/bin/table3_removal.rs

crates/bench/src/bin/table3_removal.rs:
