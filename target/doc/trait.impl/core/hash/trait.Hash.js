(function() {
    const implementors = Object.fromEntries([["lightts_distill",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"enum\" href=\"lightts_distill/method/enum.Method.html\" title=\"enum lightts_distill::method::Method\">Method</a>",0]]],["lightts_nn",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"struct\" href=\"lightts_nn/struct.ParamRef.html\" title=\"struct lightts_nn::ParamRef\">ParamRef</a>",0]]],["lightts_search",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"struct\" href=\"lightts_search/space/struct.StudentSetting.html\" title=\"struct lightts_search::space::StudentSetting\">StudentSetting</a>",0]]],["lightts_tensor",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"struct\" href=\"lightts_tensor/struct.Shape.html\" title=\"struct lightts_tensor::Shape\">Shape</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[290,273,316,276]}