/root/repo/target/debug/deps/table4_nondeep-d64066ff33a42345.d: crates/bench/src/bin/table4_nondeep.rs

/root/repo/target/debug/deps/table4_nondeep-d64066ff33a42345: crates/bench/src/bin/table4_nondeep.rs

crates/bench/src/bin/table4_nondeep.rs:
