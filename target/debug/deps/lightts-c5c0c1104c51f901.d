/root/repo/target/debug/deps/lightts-c5c0c1104c51f901.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/liblightts-c5c0c1104c51f901.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/pipeline.rs:
crates/core/src/runtime.rs:
