/root/repo/target/debug/deps/lightts_repro-0da420adbcc8c5c4.d: src/lib.rs

/root/repo/target/debug/deps/lightts_repro-0da420adbcc8c5c4: src/lib.rs

src/lib.rs:
