/root/repo/target/debug/deps/lightts_data-f7cde79fa5175946.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

/root/repo/target/debug/deps/liblightts_data-f7cde79fa5175946.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

/root/repo/target/debug/deps/liblightts_data-f7cde79fa5175946.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/series.rs:
crates/data/src/archive.rs:
crates/data/src/forecast.rs:
crates/data/src/synth.rs:
crates/data/src/ucr.rs:
