/root/repo/target/debug/deps/ablation_aed-0631b20fa42f5a8d.d: crates/bench/src/bin/ablation_aed.rs

/root/repo/target/debug/deps/ablation_aed-0631b20fa42f5a8d: crates/bench/src/bin/ablation_aed.rs

crates/bench/src/bin/ablation_aed.rs:
