/root/repo/target/debug/deps/fig17_fewclass_ranking-8e31367d1549779f.d: crates/bench/src/bin/fig17_fewclass_ranking.rs

/root/repo/target/debug/deps/fig17_fewclass_ranking-8e31367d1549779f: crates/bench/src/bin/fig17_fewclass_ranking.rs

crates/bench/src/bin/fig17_fewclass_ranking.rs:
