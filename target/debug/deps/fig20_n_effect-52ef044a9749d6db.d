/root/repo/target/debug/deps/fig20_n_effect-52ef044a9749d6db.d: crates/bench/src/bin/fig20_n_effect.rs

/root/repo/target/debug/deps/fig20_n_effect-52ef044a9749d6db: crates/bench/src/bin/fig20_n_effect.rs

crates/bench/src/bin/fig20_n_effect.rs:
