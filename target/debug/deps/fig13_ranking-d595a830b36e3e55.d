/root/repo/target/debug/deps/fig13_ranking-d595a830b36e3e55.d: crates/bench/src/bin/fig13_ranking.rs

/root/repo/target/debug/deps/fig13_ranking-d595a830b36e3e55: crates/bench/src/bin/fig13_ranking.rs

crates/bench/src/bin/fig13_ranking.rs:
