/root/repo/target/debug/deps/lightts-1fef31cc9b13cda0.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/lightts-1fef31cc9b13cda0: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/pipeline.rs:
crates/core/src/runtime.rs:
