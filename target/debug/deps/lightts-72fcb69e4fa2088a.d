/root/repo/target/debug/deps/lightts-72fcb69e4fa2088a.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/liblightts-72fcb69e4fa2088a.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/liblightts-72fcb69e4fa2088a.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/pipeline.rs:
crates/core/src/runtime.rs:
