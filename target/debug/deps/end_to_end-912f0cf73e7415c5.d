/root/repo/target/debug/deps/end_to_end-912f0cf73e7415c5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-912f0cf73e7415c5: tests/end_to_end.rs

tests/end_to_end.rs:
