/root/repo/target/debug/deps/stats_properties-94911993f8c58edd.d: tests/stats_properties.rs

/root/repo/target/debug/deps/stats_properties-94911993f8c58edd: tests/stats_properties.rs

tests/stats_properties.rs:
