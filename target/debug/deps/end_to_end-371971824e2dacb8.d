/root/repo/target/debug/deps/end_to_end-371971824e2dacb8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-371971824e2dacb8: tests/end_to_end.rs

tests/end_to_end.rs:
