/root/repo/target/debug/deps/lightts_bench-951ce2381711aec4.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/liblightts_bench-951ce2381711aec4.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/context.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
