/root/repo/target/debug/deps/reproducibility-efc2d672e7511953.d: tests/reproducibility.rs

/root/repo/target/debug/deps/reproducibility-efc2d672e7511953: tests/reproducibility.rs

tests/reproducibility.rs:
