/root/repo/target/debug/deps/bytes-a48b9fe649aa6078.d: crates/compat/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-a48b9fe649aa6078.rmeta: crates/compat/bytes/src/lib.rs

crates/compat/bytes/src/lib.rs:
