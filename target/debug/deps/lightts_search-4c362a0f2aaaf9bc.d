/root/repo/target/debug/deps/lightts_search-4c362a0f2aaaf9bc.d: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

/root/repo/target/debug/deps/lightts_search-4c362a0f2aaaf9bc: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

crates/search/src/lib.rs:
crates/search/src/error.rs:
crates/search/src/acquisition.rs:
crates/search/src/encoder.rs:
crates/search/src/gp.rs:
crates/search/src/mobo.rs:
crates/search/src/pareto.rs:
crates/search/src/space.rs:
