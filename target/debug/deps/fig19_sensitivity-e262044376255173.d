/root/repo/target/debug/deps/fig19_sensitivity-e262044376255173.d: crates/bench/src/bin/fig19_sensitivity.rs

/root/repo/target/debug/deps/fig19_sensitivity-e262044376255173: crates/bench/src/bin/fig19_sensitivity.rs

crates/bench/src/bin/fig19_sensitivity.rs:
