/root/repo/target/debug/deps/fig21_base_improvement-99a82f886ec8efb2.d: crates/bench/src/bin/fig21_base_improvement.rs

/root/repo/target/debug/deps/fig21_base_improvement-99a82f886ec8efb2: crates/bench/src/bin/fig21_base_improvement.rs

crates/bench/src/bin/fig21_base_improvement.rs:
