/root/repo/target/debug/deps/proptests-c0c0a2b6c1c3a20d.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c0c0a2b6c1c3a20d: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
