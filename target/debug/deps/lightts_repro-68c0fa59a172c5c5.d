/root/repo/target/debug/deps/lightts_repro-68c0fa59a172c5c5.d: src/lib.rs

/root/repo/target/debug/deps/liblightts_repro-68c0fa59a172c5c5.rlib: src/lib.rs

/root/repo/target/debug/deps/liblightts_repro-68c0fa59a172c5c5.rmeta: src/lib.rs

src/lib.rs:
