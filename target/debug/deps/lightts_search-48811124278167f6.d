/root/repo/target/debug/deps/lightts_search-48811124278167f6.d: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

/root/repo/target/debug/deps/liblightts_search-48811124278167f6.rlib: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

/root/repo/target/debug/deps/liblightts_search-48811124278167f6.rmeta: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

crates/search/src/lib.rs:
crates/search/src/error.rs:
crates/search/src/acquisition.rs:
crates/search/src/encoder.rs:
crates/search/src/gp.rs:
crates/search/src/mobo.rs:
crates/search/src/pareto.rs:
crates/search/src/space.rs:
