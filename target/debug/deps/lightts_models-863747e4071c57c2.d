/root/repo/target/debug/deps/lightts_models-863747e4071c57c2.d: crates/models/src/lib.rs crates/models/src/classifier.rs crates/models/src/error.rs crates/models/src/ensemble.rs crates/models/src/forecaster.rs crates/models/src/inception.rs crates/models/src/metrics.rs crates/models/src/nondeep.rs crates/models/src/nondeep/cif.rs crates/models/src/nondeep/forest.rs crates/models/src/nondeep/intervals.rs crates/models/src/nondeep/tde.rs crates/models/src/nondeep/tree.rs

/root/repo/target/debug/deps/liblightts_models-863747e4071c57c2.rlib: crates/models/src/lib.rs crates/models/src/classifier.rs crates/models/src/error.rs crates/models/src/ensemble.rs crates/models/src/forecaster.rs crates/models/src/inception.rs crates/models/src/metrics.rs crates/models/src/nondeep.rs crates/models/src/nondeep/cif.rs crates/models/src/nondeep/forest.rs crates/models/src/nondeep/intervals.rs crates/models/src/nondeep/tde.rs crates/models/src/nondeep/tree.rs

/root/repo/target/debug/deps/liblightts_models-863747e4071c57c2.rmeta: crates/models/src/lib.rs crates/models/src/classifier.rs crates/models/src/error.rs crates/models/src/ensemble.rs crates/models/src/forecaster.rs crates/models/src/inception.rs crates/models/src/metrics.rs crates/models/src/nondeep.rs crates/models/src/nondeep/cif.rs crates/models/src/nondeep/forest.rs crates/models/src/nondeep/intervals.rs crates/models/src/nondeep/tde.rs crates/models/src/nondeep/tree.rs

crates/models/src/lib.rs:
crates/models/src/classifier.rs:
crates/models/src/error.rs:
crates/models/src/ensemble.rs:
crates/models/src/forecaster.rs:
crates/models/src/inception.rs:
crates/models/src/metrics.rs:
crates/models/src/nondeep.rs:
crates/models/src/nondeep/cif.rs:
crates/models/src/nondeep/forest.rs:
crates/models/src/nondeep/intervals.rs:
crates/models/src/nondeep/tde.rs:
crates/models/src/nondeep/tree.rs:
