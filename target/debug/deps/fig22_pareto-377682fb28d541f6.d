/root/repo/target/debug/deps/fig22_pareto-377682fb28d541f6.d: crates/bench/src/bin/fig22_pareto.rs

/root/repo/target/debug/deps/fig22_pareto-377682fb28d541f6: crates/bench/src/bin/fig22_pareto.rs

crates/bench/src/bin/fig22_pareto.rs:
