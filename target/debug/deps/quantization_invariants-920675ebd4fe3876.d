/root/repo/target/debug/deps/quantization_invariants-920675ebd4fe3876.d: tests/quantization_invariants.rs

/root/repo/target/debug/deps/quantization_invariants-920675ebd4fe3876: tests/quantization_invariants.rs

tests/quantization_invariants.rs:
