/root/repo/target/debug/deps/lightts_bench-76adf3fff023ae17.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/lightts_bench-76adf3fff023ae17: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/context.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
