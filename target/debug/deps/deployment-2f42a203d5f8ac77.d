/root/repo/target/debug/deps/deployment-2f42a203d5f8ac77.d: tests/deployment.rs

/root/repo/target/debug/deps/deployment-2f42a203d5f8ac77: tests/deployment.rs

tests/deployment.rs:
