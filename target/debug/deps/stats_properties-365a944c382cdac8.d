/root/repo/target/debug/deps/stats_properties-365a944c382cdac8.d: tests/stats_properties.rs

/root/repo/target/debug/deps/stats_properties-365a944c382cdac8: tests/stats_properties.rs

tests/stats_properties.rs:
