/root/repo/target/debug/deps/lightts_distill-d788d4dcce75e390.d: crates/distill/src/lib.rs crates/distill/src/error.rs crates/distill/src/aed.rs crates/distill/src/baselines.rs crates/distill/src/forecast.rs crates/distill/src/loo.rs crates/distill/src/method.rs crates/distill/src/removal.rs crates/distill/src/teacher.rs crates/distill/src/trainer.rs crates/distill/src/weights.rs

/root/repo/target/debug/deps/lightts_distill-d788d4dcce75e390: crates/distill/src/lib.rs crates/distill/src/error.rs crates/distill/src/aed.rs crates/distill/src/baselines.rs crates/distill/src/forecast.rs crates/distill/src/loo.rs crates/distill/src/method.rs crates/distill/src/removal.rs crates/distill/src/teacher.rs crates/distill/src/trainer.rs crates/distill/src/weights.rs

crates/distill/src/lib.rs:
crates/distill/src/error.rs:
crates/distill/src/aed.rs:
crates/distill/src/baselines.rs:
crates/distill/src/forecast.rs:
crates/distill/src/loo.rs:
crates/distill/src/method.rs:
crates/distill/src/removal.rs:
crates/distill/src/teacher.rs:
crates/distill/src/trainer.rs:
crates/distill/src/weights.rs:
