/root/repo/target/debug/deps/fig19_sensitivity-a9435d2165963896.d: crates/bench/src/bin/fig19_sensitivity.rs

/root/repo/target/debug/deps/fig19_sensitivity-a9435d2165963896: crates/bench/src/bin/fig19_sensitivity.rs

crates/bench/src/bin/fig19_sensitivity.rs:
