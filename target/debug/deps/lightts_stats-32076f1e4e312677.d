/root/repo/target/debug/deps/lightts_stats-32076f1e4e312677.d: crates/stats/src/lib.rs crates/stats/src/cd.rs crates/stats/src/error.rs crates/stats/src/friedman.rs crates/stats/src/ranks.rs crates/stats/src/special.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/liblightts_stats-32076f1e4e312677.rlib: crates/stats/src/lib.rs crates/stats/src/cd.rs crates/stats/src/error.rs crates/stats/src/friedman.rs crates/stats/src/ranks.rs crates/stats/src/special.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/liblightts_stats-32076f1e4e312677.rmeta: crates/stats/src/lib.rs crates/stats/src/cd.rs crates/stats/src/error.rs crates/stats/src/friedman.rs crates/stats/src/ranks.rs crates/stats/src/special.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/cd.rs:
crates/stats/src/error.rs:
crates/stats/src/friedman.rs:
crates/stats/src/ranks.rs:
crates/stats/src/special.rs:
crates/stats/src/wilcoxon.rs:
