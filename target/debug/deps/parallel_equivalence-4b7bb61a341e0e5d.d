/root/repo/target/debug/deps/parallel_equivalence-4b7bb61a341e0e5d.d: crates/tensor/tests/parallel_equivalence.rs

/root/repo/target/debug/deps/parallel_equivalence-4b7bb61a341e0e5d: crates/tensor/tests/parallel_equivalence.rs

crates/tensor/tests/parallel_equivalence.rs:
