/root/repo/target/debug/deps/lightts_nn-8c71c36ce2da10d4.d: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

/root/repo/target/debug/deps/lightts_nn-8c71c36ce2da10d4: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

crates/nn/src/lib.rs:
crates/nn/src/error.rs:
crates/nn/src/param.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/optim.rs:
crates/nn/src/serialize.rs:
crates/nn/src/size.rs:
