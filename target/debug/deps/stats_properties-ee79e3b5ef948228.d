/root/repo/target/debug/deps/stats_properties-ee79e3b5ef948228.d: tests/stats_properties.rs

/root/repo/target/debug/deps/stats_properties-ee79e3b5ef948228: tests/stats_properties.rs

tests/stats_properties.rs:
