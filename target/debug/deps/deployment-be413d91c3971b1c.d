/root/repo/target/debug/deps/deployment-be413d91c3971b1c.d: tests/deployment.rs

/root/repo/target/debug/deps/deployment-be413d91c3971b1c: tests/deployment.rs

tests/deployment.rs:
