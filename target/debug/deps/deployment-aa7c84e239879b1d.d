/root/repo/target/debug/deps/deployment-aa7c84e239879b1d.d: tests/deployment.rs

/root/repo/target/debug/deps/deployment-aa7c84e239879b1d: tests/deployment.rs

tests/deployment.rs:
