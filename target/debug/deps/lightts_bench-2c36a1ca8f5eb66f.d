/root/repo/target/debug/deps/lightts_bench-2c36a1ca8f5eb66f.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/liblightts_bench-2c36a1ca8f5eb66f.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/liblightts_bench-2c36a1ca8f5eb66f.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/context.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
