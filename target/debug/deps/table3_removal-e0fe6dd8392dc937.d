/root/repo/target/debug/deps/table3_removal-e0fe6dd8392dc937.d: crates/bench/src/bin/table3_removal.rs

/root/repo/target/debug/deps/table3_removal-e0fe6dd8392dc937: crates/bench/src/bin/table3_removal.rs

crates/bench/src/bin/table3_removal.rs:
