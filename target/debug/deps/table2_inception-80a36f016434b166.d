/root/repo/target/debug/deps/table2_inception-80a36f016434b166.d: crates/bench/src/bin/table2_inception.rs

/root/repo/target/debug/deps/table2_inception-80a36f016434b166: crates/bench/src/bin/table2_inception.rs

crates/bench/src/bin/table2_inception.rs:
