/root/repo/target/debug/deps/table5_gp_estimation-0dbd15ae2393e10c.d: crates/bench/src/bin/table5_gp_estimation.rs

/root/repo/target/debug/deps/table5_gp_estimation-0dbd15ae2393e10c: crates/bench/src/bin/table5_gp_estimation.rs

crates/bench/src/bin/table5_gp_estimation.rs:
