/root/repo/target/debug/deps/quantization_invariants-92f619e081683ddf.d: tests/quantization_invariants.rs

/root/repo/target/debug/deps/quantization_invariants-92f619e081683ddf: tests/quantization_invariants.rs

tests/quantization_invariants.rs:
