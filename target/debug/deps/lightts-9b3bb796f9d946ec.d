/root/repo/target/debug/deps/lightts-9b3bb796f9d946ec.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/liblightts-9b3bb796f9d946ec.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/liblightts-9b3bb796f9d946ec.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/pipeline.rs:
crates/core/src/runtime.rs:
