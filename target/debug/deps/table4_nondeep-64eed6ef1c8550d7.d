/root/repo/target/debug/deps/table4_nondeep-64eed6ef1c8550d7.d: crates/bench/src/bin/table4_nondeep.rs

/root/repo/target/debug/deps/table4_nondeep-64eed6ef1c8550d7: crates/bench/src/bin/table4_nondeep.rs

crates/bench/src/bin/table4_nondeep.rs:
