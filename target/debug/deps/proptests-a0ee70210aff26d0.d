/root/repo/target/debug/deps/proptests-a0ee70210aff26d0.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a0ee70210aff26d0: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
