/root/repo/target/debug/deps/ablation_aed-250cde28798e9d96.d: crates/bench/src/bin/ablation_aed.rs

/root/repo/target/debug/deps/ablation_aed-250cde28798e9d96: crates/bench/src/bin/ablation_aed.rs

crates/bench/src/bin/ablation_aed.rs:
