/root/repo/target/debug/deps/fig23_varying_p-5e530ad540f522ce.d: crates/bench/src/bin/fig23_varying_p.rs

/root/repo/target/debug/deps/fig23_varying_p-5e530ad540f522ce: crates/bench/src/bin/fig23_varying_p.rs

crates/bench/src/bin/fig23_varying_p.rs:
