/root/repo/target/debug/deps/lightts_stats-07039b1016c3e8ed.d: crates/stats/src/lib.rs crates/stats/src/cd.rs crates/stats/src/error.rs crates/stats/src/friedman.rs crates/stats/src/ranks.rs crates/stats/src/special.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/liblightts_stats-07039b1016c3e8ed.rmeta: crates/stats/src/lib.rs crates/stats/src/cd.rs crates/stats/src/error.rs crates/stats/src/friedman.rs crates/stats/src/ranks.rs crates/stats/src/special.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/cd.rs:
crates/stats/src/error.rs:
crates/stats/src/friedman.rs:
crates/stats/src/ranks.rs:
crates/stats/src/special.rs:
crates/stats/src/wilcoxon.rs:
