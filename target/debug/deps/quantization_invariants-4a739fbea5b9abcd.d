/root/repo/target/debug/deps/quantization_invariants-4a739fbea5b9abcd.d: tests/quantization_invariants.rs

/root/repo/target/debug/deps/quantization_invariants-4a739fbea5b9abcd: tests/quantization_invariants.rs

tests/quantization_invariants.rs:
