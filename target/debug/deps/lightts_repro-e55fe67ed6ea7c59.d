/root/repo/target/debug/deps/lightts_repro-e55fe67ed6ea7c59.d: src/lib.rs

/root/repo/target/debug/deps/lightts_repro-e55fe67ed6ea7c59: src/lib.rs

src/lib.rs:
