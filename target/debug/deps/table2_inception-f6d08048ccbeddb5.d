/root/repo/target/debug/deps/table2_inception-f6d08048ccbeddb5.d: crates/bench/src/bin/table2_inception.rs

/root/repo/target/debug/deps/table2_inception-f6d08048ccbeddb5: crates/bench/src/bin/table2_inception.rs

crates/bench/src/bin/table2_inception.rs:
