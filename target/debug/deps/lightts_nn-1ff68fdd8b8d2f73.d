/root/repo/target/debug/deps/lightts_nn-1ff68fdd8b8d2f73.d: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

/root/repo/target/debug/deps/liblightts_nn-1ff68fdd8b8d2f73.rlib: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

/root/repo/target/debug/deps/liblightts_nn-1ff68fdd8b8d2f73.rmeta: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

crates/nn/src/lib.rs:
crates/nn/src/error.rs:
crates/nn/src/param.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/optim.rs:
crates/nn/src/serialize.rs:
crates/nn/src/size.rs:
