/root/repo/target/debug/deps/parallel_equivalence-12f2767fa0dd3336.d: crates/tensor/tests/parallel_equivalence.rs

/root/repo/target/debug/deps/parallel_equivalence-12f2767fa0dd3336: crates/tensor/tests/parallel_equivalence.rs

crates/tensor/tests/parallel_equivalence.rs:
