/root/repo/target/debug/deps/lightts_nn-8c2e02e1b25adc9b.d: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

/root/repo/target/debug/deps/liblightts_nn-8c2e02e1b25adc9b.rmeta: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/size.rs

crates/nn/src/lib.rs:
crates/nn/src/error.rs:
crates/nn/src/param.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/optim.rs:
crates/nn/src/serialize.rs:
crates/nn/src/size.rs:
