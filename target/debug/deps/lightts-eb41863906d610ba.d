/root/repo/target/debug/deps/lightts-eb41863906d610ba.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/lightts-eb41863906d610ba: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/pipeline.rs:
crates/core/src/runtime.rs:
