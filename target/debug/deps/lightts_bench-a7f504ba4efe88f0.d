/root/repo/target/debug/deps/lightts_bench-a7f504ba4efe88f0.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/liblightts_bench-a7f504ba4efe88f0.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/liblightts_bench-a7f504ba4efe88f0.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/context.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
