/root/repo/target/debug/deps/lightts_repro-78818a57dd3a0f29.d: src/lib.rs

/root/repo/target/debug/deps/lightts_repro-78818a57dd3a0f29: src/lib.rs

src/lib.rs:
