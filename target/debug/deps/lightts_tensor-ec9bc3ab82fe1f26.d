/root/repo/target/debug/deps/lightts_tensor-ec9bc3ab82fe1f26.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/linalg.rs crates/tensor/src/par.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/lightts_tensor-ec9bc3ab82fe1f26: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/linalg.rs crates/tensor/src/par.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/par.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
