/root/repo/target/debug/deps/lightts_tensor-2e372c31543d7ffe.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/linalg.rs crates/tensor/src/par.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/lightts_tensor-2e372c31543d7ffe: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/linalg.rs crates/tensor/src/par.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/par.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
