/root/repo/target/debug/deps/lightts-3894ba9a149161bf.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/liblightts-3894ba9a149161bf.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/liblightts-3894ba9a149161bf.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/pipeline.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/pipeline.rs:
crates/core/src/runtime.rs:
