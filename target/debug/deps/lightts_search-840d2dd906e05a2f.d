/root/repo/target/debug/deps/lightts_search-840d2dd906e05a2f.d: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

/root/repo/target/debug/deps/liblightts_search-840d2dd906e05a2f.rlib: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

/root/repo/target/debug/deps/liblightts_search-840d2dd906e05a2f.rmeta: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

crates/search/src/lib.rs:
crates/search/src/error.rs:
crates/search/src/acquisition.rs:
crates/search/src/encoder.rs:
crates/search/src/gp.rs:
crates/search/src/mobo.rs:
crates/search/src/pareto.rs:
crates/search/src/space.rs:
