/root/repo/target/debug/deps/fig21_base_improvement-073b7b109ca13ca5.d: crates/bench/src/bin/fig21_base_improvement.rs

/root/repo/target/debug/deps/fig21_base_improvement-073b7b109ca13ca5: crates/bench/src/bin/fig21_base_improvement.rs

crates/bench/src/bin/fig21_base_improvement.rs:
