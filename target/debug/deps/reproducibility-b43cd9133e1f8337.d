/root/repo/target/debug/deps/reproducibility-b43cd9133e1f8337.d: tests/reproducibility.rs

/root/repo/target/debug/deps/reproducibility-b43cd9133e1f8337: tests/reproducibility.rs

tests/reproducibility.rs:
