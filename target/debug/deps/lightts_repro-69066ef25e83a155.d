/root/repo/target/debug/deps/lightts_repro-69066ef25e83a155.d: src/lib.rs

/root/repo/target/debug/deps/liblightts_repro-69066ef25e83a155.rlib: src/lib.rs

/root/repo/target/debug/deps/liblightts_repro-69066ef25e83a155.rmeta: src/lib.rs

src/lib.rs:
