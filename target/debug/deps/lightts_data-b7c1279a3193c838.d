/root/repo/target/debug/deps/lightts_data-b7c1279a3193c838.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

/root/repo/target/debug/deps/liblightts_data-b7c1279a3193c838.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

/root/repo/target/debug/deps/liblightts_data-b7c1279a3193c838.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/series.rs crates/data/src/archive.rs crates/data/src/forecast.rs crates/data/src/synth.rs crates/data/src/ucr.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/series.rs:
crates/data/src/archive.rs:
crates/data/src/forecast.rs:
crates/data/src/synth.rs:
crates/data/src/ucr.rs:
