/root/repo/target/debug/deps/end_to_end-786698e77888a3ac.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-786698e77888a3ac: tests/end_to_end.rs

tests/end_to_end.rs:
