/root/repo/target/debug/deps/table6_search_time-b9cae04b171b3d52.d: crates/bench/src/bin/table6_search_time.rs

/root/repo/target/debug/deps/table6_search_time-b9cae04b171b3d52: crates/bench/src/bin/table6_search_time.rs

crates/bench/src/bin/table6_search_time.rs:
