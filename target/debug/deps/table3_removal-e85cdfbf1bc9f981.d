/root/repo/target/debug/deps/table3_removal-e85cdfbf1bc9f981.d: crates/bench/src/bin/table3_removal.rs

/root/repo/target/debug/deps/table3_removal-e85cdfbf1bc9f981: crates/bench/src/bin/table3_removal.rs

crates/bench/src/bin/table3_removal.rs:
