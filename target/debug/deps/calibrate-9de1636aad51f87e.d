/root/repo/target/debug/deps/calibrate-9de1636aad51f87e.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-9de1636aad51f87e: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
