/root/repo/target/debug/deps/fig20_n_effect-6b7becfb686146fc.d: crates/bench/src/bin/fig20_n_effect.rs

/root/repo/target/debug/deps/fig20_n_effect-6b7becfb686146fc: crates/bench/src/bin/fig20_n_effect.rs

crates/bench/src/bin/fig20_n_effect.rs:
