/root/repo/target/debug/deps/table6_search_time-36bca8fe708c72f7.d: crates/bench/src/bin/table6_search_time.rs

/root/repo/target/debug/deps/table6_search_time-36bca8fe708c72f7: crates/bench/src/bin/table6_search_time.rs

crates/bench/src/bin/table6_search_time.rs:
