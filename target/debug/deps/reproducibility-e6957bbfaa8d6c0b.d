/root/repo/target/debug/deps/reproducibility-e6957bbfaa8d6c0b.d: tests/reproducibility.rs

/root/repo/target/debug/deps/reproducibility-e6957bbfaa8d6c0b: tests/reproducibility.rs

tests/reproducibility.rs:
