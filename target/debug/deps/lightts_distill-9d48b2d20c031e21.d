/root/repo/target/debug/deps/lightts_distill-9d48b2d20c031e21.d: crates/distill/src/lib.rs crates/distill/src/error.rs crates/distill/src/aed.rs crates/distill/src/baselines.rs crates/distill/src/forecast.rs crates/distill/src/loo.rs crates/distill/src/method.rs crates/distill/src/removal.rs crates/distill/src/teacher.rs crates/distill/src/trainer.rs crates/distill/src/weights.rs

/root/repo/target/debug/deps/liblightts_distill-9d48b2d20c031e21.rlib: crates/distill/src/lib.rs crates/distill/src/error.rs crates/distill/src/aed.rs crates/distill/src/baselines.rs crates/distill/src/forecast.rs crates/distill/src/loo.rs crates/distill/src/method.rs crates/distill/src/removal.rs crates/distill/src/teacher.rs crates/distill/src/trainer.rs crates/distill/src/weights.rs

/root/repo/target/debug/deps/liblightts_distill-9d48b2d20c031e21.rmeta: crates/distill/src/lib.rs crates/distill/src/error.rs crates/distill/src/aed.rs crates/distill/src/baselines.rs crates/distill/src/forecast.rs crates/distill/src/loo.rs crates/distill/src/method.rs crates/distill/src/removal.rs crates/distill/src/teacher.rs crates/distill/src/trainer.rs crates/distill/src/weights.rs

crates/distill/src/lib.rs:
crates/distill/src/error.rs:
crates/distill/src/aed.rs:
crates/distill/src/baselines.rs:
crates/distill/src/forecast.rs:
crates/distill/src/loo.rs:
crates/distill/src/method.rs:
crates/distill/src/removal.rs:
crates/distill/src/teacher.rs:
crates/distill/src/trainer.rs:
crates/distill/src/weights.rs:
