/root/repo/target/debug/deps/fig13_ranking-9e89e5f65ae59330.d: crates/bench/src/bin/fig13_ranking.rs

/root/repo/target/debug/deps/fig13_ranking-9e89e5f65ae59330: crates/bench/src/bin/fig13_ranking.rs

crates/bench/src/bin/fig13_ranking.rs:
