/root/repo/target/debug/deps/calibrate-d4143a8e871121e4.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-d4143a8e871121e4: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
