/root/repo/target/debug/deps/fig18_training_time-7672a706f7e0c332.d: crates/bench/src/bin/fig18_training_time.rs

/root/repo/target/debug/deps/fig18_training_time-7672a706f7e0c332: crates/bench/src/bin/fig18_training_time.rs

crates/bench/src/bin/fig18_training_time.rs:
