/root/repo/target/debug/deps/fig22_pareto-a98947430c9655e7.d: crates/bench/src/bin/fig22_pareto.rs

/root/repo/target/debug/deps/fig22_pareto-a98947430c9655e7: crates/bench/src/bin/fig22_pareto.rs

crates/bench/src/bin/fig22_pareto.rs:
