/root/repo/target/debug/deps/fig23_varying_p-c59d57290ea1b69a.d: crates/bench/src/bin/fig23_varying_p.rs

/root/repo/target/debug/deps/fig23_varying_p-c59d57290ea1b69a: crates/bench/src/bin/fig23_varying_p.rs

crates/bench/src/bin/fig23_varying_p.rs:
