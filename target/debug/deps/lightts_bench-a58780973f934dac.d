/root/repo/target/debug/deps/lightts_bench-a58780973f934dac.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/lightts_bench-a58780973f934dac: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/context.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/context.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
