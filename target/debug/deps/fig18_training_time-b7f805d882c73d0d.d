/root/repo/target/debug/deps/fig18_training_time-b7f805d882c73d0d.d: crates/bench/src/bin/fig18_training_time.rs

/root/repo/target/debug/deps/fig18_training_time-b7f805d882c73d0d: crates/bench/src/bin/fig18_training_time.rs

crates/bench/src/bin/fig18_training_time.rs:
