/root/repo/target/debug/deps/table5_gp_estimation-98035c8e839ec307.d: crates/bench/src/bin/table5_gp_estimation.rs

/root/repo/target/debug/deps/table5_gp_estimation-98035c8e839ec307: crates/bench/src/bin/table5_gp_estimation.rs

crates/bench/src/bin/table5_gp_estimation.rs:
