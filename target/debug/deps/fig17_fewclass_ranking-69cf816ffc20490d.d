/root/repo/target/debug/deps/fig17_fewclass_ranking-69cf816ffc20490d.d: crates/bench/src/bin/fig17_fewclass_ranking.rs

/root/repo/target/debug/deps/fig17_fewclass_ranking-69cf816ffc20490d: crates/bench/src/bin/fig17_fewclass_ranking.rs

crates/bench/src/bin/fig17_fewclass_ranking.rs:
