/root/repo/target/debug/deps/lightts_repro-3a6173e9439f0181.d: src/lib.rs

/root/repo/target/debug/deps/liblightts_repro-3a6173e9439f0181.rlib: src/lib.rs

/root/repo/target/debug/deps/liblightts_repro-3a6173e9439f0181.rmeta: src/lib.rs

src/lib.rs:
