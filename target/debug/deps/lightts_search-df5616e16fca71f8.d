/root/repo/target/debug/deps/lightts_search-df5616e16fca71f8.d: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

/root/repo/target/debug/deps/liblightts_search-df5616e16fca71f8.rlib: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

/root/repo/target/debug/deps/liblightts_search-df5616e16fca71f8.rmeta: crates/search/src/lib.rs crates/search/src/error.rs crates/search/src/acquisition.rs crates/search/src/encoder.rs crates/search/src/gp.rs crates/search/src/mobo.rs crates/search/src/pareto.rs crates/search/src/space.rs

crates/search/src/lib.rs:
crates/search/src/error.rs:
crates/search/src/acquisition.rs:
crates/search/src/encoder.rs:
crates/search/src/gp.rs:
crates/search/src/mobo.rs:
crates/search/src/pareto.rs:
crates/search/src/space.rs:
