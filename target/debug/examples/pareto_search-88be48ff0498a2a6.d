/root/repo/target/debug/examples/pareto_search-88be48ff0498a2a6.d: examples/pareto_search.rs

/root/repo/target/debug/examples/pareto_search-88be48ff0498a2a6: examples/pareto_search.rs

examples/pareto_search.rs:
