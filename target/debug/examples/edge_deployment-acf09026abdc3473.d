/root/repo/target/debug/examples/edge_deployment-acf09026abdc3473.d: examples/edge_deployment.rs

/root/repo/target/debug/examples/edge_deployment-acf09026abdc3473: examples/edge_deployment.rs

examples/edge_deployment.rs:
