/root/repo/target/debug/examples/forecast_distill-e0119a61401a08f8.d: examples/forecast_distill.rs

/root/repo/target/debug/examples/forecast_distill-e0119a61401a08f8: examples/forecast_distill.rs

examples/forecast_distill.rs:
