/root/repo/target/debug/examples/forecast_distill-a2362bc845f315b5.d: examples/forecast_distill.rs

/root/repo/target/debug/examples/forecast_distill-a2362bc845f315b5: examples/forecast_distill.rs

examples/forecast_distill.rs:
