/root/repo/target/debug/examples/nondeep_teachers-2f14038f6a5fa326.d: examples/nondeep_teachers.rs

/root/repo/target/debug/examples/nondeep_teachers-2f14038f6a5fa326: examples/nondeep_teachers.rs

examples/nondeep_teachers.rs:
