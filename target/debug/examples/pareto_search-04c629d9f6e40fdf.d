/root/repo/target/debug/examples/pareto_search-04c629d9f6e40fdf.d: examples/pareto_search.rs

/root/repo/target/debug/examples/pareto_search-04c629d9f6e40fdf: examples/pareto_search.rs

examples/pareto_search.rs:
