/root/repo/target/debug/examples/quickstart-69ea5e40925f7b70.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-69ea5e40925f7b70: examples/quickstart.rs

examples/quickstart.rs:
