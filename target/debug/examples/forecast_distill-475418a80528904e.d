/root/repo/target/debug/examples/forecast_distill-475418a80528904e.d: examples/forecast_distill.rs

/root/repo/target/debug/examples/forecast_distill-475418a80528904e: examples/forecast_distill.rs

examples/forecast_distill.rs:
