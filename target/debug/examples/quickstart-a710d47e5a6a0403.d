/root/repo/target/debug/examples/quickstart-a710d47e5a6a0403.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a710d47e5a6a0403: examples/quickstart.rs

examples/quickstart.rs:
