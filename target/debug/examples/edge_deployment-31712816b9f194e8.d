/root/repo/target/debug/examples/edge_deployment-31712816b9f194e8.d: examples/edge_deployment.rs

/root/repo/target/debug/examples/edge_deployment-31712816b9f194e8: examples/edge_deployment.rs

examples/edge_deployment.rs:
