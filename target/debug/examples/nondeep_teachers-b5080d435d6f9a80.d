/root/repo/target/debug/examples/nondeep_teachers-b5080d435d6f9a80.d: examples/nondeep_teachers.rs

/root/repo/target/debug/examples/nondeep_teachers-b5080d435d6f9a80: examples/nondeep_teachers.rs

examples/nondeep_teachers.rs:
