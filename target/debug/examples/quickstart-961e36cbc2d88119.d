/root/repo/target/debug/examples/quickstart-961e36cbc2d88119.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-961e36cbc2d88119: examples/quickstart.rs

examples/quickstart.rs:
