/root/repo/target/debug/examples/pareto_search-02329393f8fff7ba.d: examples/pareto_search.rs

/root/repo/target/debug/examples/pareto_search-02329393f8fff7ba: examples/pareto_search.rs

examples/pareto_search.rs:
