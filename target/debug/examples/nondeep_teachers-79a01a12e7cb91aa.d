/root/repo/target/debug/examples/nondeep_teachers-79a01a12e7cb91aa.d: examples/nondeep_teachers.rs

/root/repo/target/debug/examples/nondeep_teachers-79a01a12e7cb91aa: examples/nondeep_teachers.rs

examples/nondeep_teachers.rs:
