/root/repo/target/debug/examples/edge_deployment-a601f69ae91ea057.d: examples/edge_deployment.rs

/root/repo/target/debug/examples/edge_deployment-a601f69ae91ea057: examples/edge_deployment.rs

examples/edge_deployment.rs:
