//! Reproducibility contract: the entire pipeline is deterministic under a
//! fixed seed — datasets, teacher training, distillation, and search.

use lightts::prelude::*;
use lightts_data::synth::{Generator, SynthConfig};

fn splits(seed: u64) -> Splits {
    let gen = Generator::new(
        SynthConfig { classes: 2, dims: 1, length: 20, difficulty: 0.2, waveforms: 3 },
        seed,
    );
    gen.splits("repro", 24, 12, 12, seed + 1).unwrap()
}

#[test]
fn dataset_generation_is_bitwise_deterministic() {
    let a = splits(42);
    let b = splits(42);
    for i in 0..a.train.len() {
        assert_eq!(a.train.series(i).unwrap(), b.train.series(i).unwrap());
    }
    assert_eq!(a.test.labels(), b.test.labels());
    let c = splits(43);
    assert_ne!(a.train.series(0).unwrap(), c.train.series(0).unwrap());
}

#[test]
fn teacher_training_is_deterministic() {
    let s = splits(44);
    let cfg = EnsembleTrainConfig { n_members: 2, ..EnsembleTrainConfig::default() };
    let e1 = train_ensemble(BaseModelKind::Forest, &s.train, &cfg).unwrap();
    let e2 = train_ensemble(BaseModelKind::Forest, &s.train, &cfg).unwrap();
    let batch = s.test.full_batch().unwrap();
    assert_eq!(e1.predict_proba(&batch.inputs).unwrap(), e2.predict_proba(&batch.inputs).unwrap());
}

#[test]
fn distillation_is_deterministic() {
    let s = splits(45);
    let cfg = EnsembleTrainConfig { n_members: 2, ..EnsembleTrainConfig::default() };
    let ens = train_ensemble(BaseModelKind::Forest, &s.train, &cfg).unwrap();
    let teachers = TeacherProbs::compute(&ens, &s).unwrap();
    let student_cfg = InceptionConfig::student(1, 20, 2, 4, 8);
    let mut opts = DistillOpts::default();
    opts.aed.train.epochs = 4;
    opts.aed.v = 2;

    let run = || run_method(Method::LightTs, &s, &teachers, &student_cfg, &opts).unwrap();
    let o1 = run();
    let o2 = run();
    assert_eq!(o1.val_accuracy, o2.val_accuracy);
    assert_eq!(o1.kept_teachers, o2.kept_teachers);
    let batch = s.test.full_batch().unwrap();
    assert_eq!(
        o1.student.predict_proba(&batch.inputs).unwrap(),
        o2.student.predict_proba(&batch.inputs).unwrap()
    );
}

#[test]
fn gumbel_noise_differs_across_seeds_but_not_within() {
    use lightts::distill::weights::WeightTransform;
    use lightts::tensor::rng::seeded;
    let tf = WeightTransform::GumbelConfident { tau: 0.5 };
    let lam = [0.1f32, 0.2, 0.3];
    let w1 = tf.weights(&lam, &mut seeded(9)).weights;
    let w2 = tf.weights(&lam, &mut seeded(9)).weights;
    let w3 = tf.weights(&lam, &mut seeded(10)).weights;
    assert_eq!(w1, w2);
    assert_ne!(w1, w3);
}

#[test]
fn derived_seeds_are_stable_across_runs() {
    use lightts::tensor::rng::derive_seed;
    // these constants are part of the reproducibility contract: changing
    // derive_seed silently would invalidate recorded experiment outputs
    assert_eq!(derive_seed(1, 0), derive_seed(1, 0));
    assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
    assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
}
