//! Property tests for the statistics crate: the invariants the ranking
//! figures rely on must hold on arbitrary score matrices.

use lightts::stats::{
    average_ranks, friedman_test, holm_correction, rank_slice, wilcoxon_signed_rank,
};
use proptest::prelude::*;

fn score_matrix(k: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, n), k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ranks are a permutation-with-ties of 1..k: they always sum to
    /// k(k+1)/2 and lie within [1, k].
    #[test]
    fn rank_slice_sums_and_bounds(values in proptest::collection::vec(-5.0f64..5.0, 1..12)) {
        let k = values.len();
        let ranks = rank_slice(&values);
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - (k * (k + 1)) as f64 / 2.0).abs() < 1e-9);
        prop_assert!(ranks.iter().all(|&r| (1.0..=k as f64).contains(&r)));
    }

    /// Higher scores never get worse (larger) ranks.
    #[test]
    fn rank_slice_is_order_preserving(values in proptest::collection::vec(-5.0f64..5.0, 2..10)) {
        let ranks = rank_slice(&values);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] > values[j] {
                    prop_assert!(ranks[i] < ranks[j]);
                }
            }
        }
    }

    /// Friedman p-values are valid probabilities and average ranks average
    /// to (k+1)/2.
    #[test]
    fn friedman_outputs_are_well_formed(scores in score_matrix(4, 8)) {
        let r = friedman_test(&scores).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.statistic >= 0.0);
        let mean_rank: f64 = r.average_ranks.iter().sum::<f64>() / 4.0;
        prop_assert!((mean_rank - 2.5).abs() < 1e-9);
    }

    /// The Wilcoxon test is symmetric and its p-value is a probability.
    #[test]
    fn wilcoxon_symmetry(
        a in proptest::collection::vec(0.0f64..1.0, 6..20),
        deltas in proptest::collection::vec(-0.3f64..0.3, 6..20),
    ) {
        let n = a.len().min(deltas.len());
        let a = &a[..n];
        let b: Vec<f64> = a.iter().zip(&deltas[..n]).map(|(&x, &d)| x + d).collect();
        let r1 = wilcoxon_signed_rank(a, &b).unwrap();
        let r2 = wilcoxon_signed_rank(&b, a).unwrap();
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
    }

    /// Holm correction never decreases a p-value, caps at 1, and preserves
    /// the significance ordering.
    #[test]
    fn holm_properties(ps in proptest::collection::vec(0.0f64..1.0, 1..12)) {
        let adj = holm_correction(&ps);
        prop_assert_eq!(adj.len(), ps.len());
        for (raw, a) in ps.iter().zip(adj.iter()) {
            prop_assert!(*a >= *raw - 1e-12);
            prop_assert!(*a <= 1.0);
        }
        // order preservation: if p_i < p_j then adj_i <= adj_j
        for i in 0..ps.len() {
            for j in 0..ps.len() {
                if ps[i] < ps[j] {
                    prop_assert!(adj[i] <= adj[j] + 1e-12);
                }
            }
        }
    }

    /// Average ranks respect stochastic dominance: a method that beats
    /// another on every dataset gets a strictly better average rank.
    #[test]
    fn average_ranks_respect_dominance(base in proptest::collection::vec(0.1f64..0.8, 4..10)) {
        let better: Vec<f64> = base.iter().map(|&x| x + 0.1).collect();
        let scores = vec![better, base.clone()];
        let avg = average_ranks(&scores).unwrap();
        prop_assert!(avg[0] < avg[1]);
    }
}
