//! Allocation regression: steady-state training steps must be served
//! entirely from the tensor buffer pool.
//!
//! The training loops hoist one `Tape` + `Bindings` pair and `reset` them
//! per mini-batch, and every transient kernel buffer (conv im2col slabs,
//! matmul outputs, elementwise results) is drawn from the thread-local
//! grow-only pool in `lightts_tensor::pool`. After one warm-up pass has
//! populated the size buckets, further epochs over same-shaped mini-batches
//! must therefore hit the pool every single time — **zero** new `Vec`
//! allocations per step.
//!
//! The assertion uses `thread_pool_misses()`, the *thread-local* miss
//! counter, so it measures only this test's thread. The test still lives in
//! its own integration binary (one `#[test]`, run with no sibling tests) so
//! no concurrent test can interleave pool traffic on this thread either.

use lightts::models::inception::{InceptionConfig, InceptionTime, TrainConfig};
use lightts::tensor::pool;
use lightts::tensor::rng::seeded;
use lightts_data::synth::{Generator, SynthConfig};

#[test]
fn steady_state_training_epochs_are_pool_miss_free() {
    // Tiny but real workload: 2 classes, 32 train samples, batch 16 divides
    // the set evenly so every epoch replays identical mini-batch shapes.
    let gen = Generator::new(
        SynthConfig { classes: 2, dims: 1, length: 32, difficulty: 0.3, waveforms: 2 },
        13,
    );
    let train = gen.split("allocreg", 32, 4).unwrap();
    let mut rng = seeded(5);
    let mut model =
        InceptionTime::new(InceptionConfig::student(1, 32, 2, 4, 32), &mut rng).unwrap();
    let cfg = TrainConfig { epochs: 1, batch_size: 16, lr: 0.01, adam: true, seed: 3 };

    // Warm-up epoch: populates the pool's size buckets (every miss here is
    // the one-time cost of growing the slabs).
    model.fit(&train, &cfg).unwrap();

    let warm_misses = pool::thread_pool_misses();
    let warm_hits = pool::pool_hits();

    // Epochs 2..N: every transient buffer must now be recycled. A single
    // pool miss here is a regression — some op started allocating fresh
    // `Vec`s in the hot path.
    let cfg_more = TrainConfig { epochs: 3, ..cfg };
    model.fit(&train, &cfg_more).unwrap();

    let miss_delta = pool::thread_pool_misses() - warm_misses;
    assert_eq!(
        miss_delta, 0,
        "steady-state training epochs allocated {miss_delta} fresh buffers \
         (pool misses) — the zero-allocation training-step contract is broken"
    );
    // Sanity: the epochs actually exercised the pool rather than bypassing it.
    assert!(
        pool::pool_hits() > warm_hits,
        "training epochs recorded no pool hits at all — the loop is not \
         routing buffers through the pool, so the miss check is vacuous"
    );
}
