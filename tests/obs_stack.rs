//! Whole-stack observability integration test: with the in-memory sink
//! active, a tiny AED run, a tiny MOBO search, and a serving round must
//! together emit schema-valid JSONL covering trainer epochs, MOBO trials,
//! and serve batches — the acceptance scenario of the observability PR.
//!
//! Everything runs inside ONE `#[test]` because the sink is process-global
//! state; a second concurrent test in this binary would race it.

use lightts::distill::aed::{run_aed, AedConfig};
use lightts::distill::trainer::StudentTrainOpts;
use lightts::distill::weights::WeightTransform;
use lightts::models::inception::InceptionTime;
use lightts::prelude::*;
use lightts::search::mobo::run_mobo;
use lightts_data::synth::{Generator, SynthConfig};
use lightts_data::LabeledDataset;
use lightts_obs::{self as obs, SinkTarget};
use lightts_tensor::rng::seeded;
use lightts_tensor::Tensor;
use std::collections::BTreeSet;

fn splits(seed: u64) -> Splits {
    let gen = Generator::new(
        SynthConfig { classes: 3, dims: 1, length: 24, difficulty: 0.2, waveforms: 3 },
        seed,
    );
    gen.splits("obs-stack", 36, 18, 18, seed + 1).unwrap()
}

/// Synthetic teachers (one oracle, one anti-oracle), as in the AED tests —
/// cheap enough that the whole test stays well under a minute.
fn synthetic_teachers(s: &Splits, sharp: f32) -> TeacherProbs {
    let mk = |ds: &LabeledDataset, invert: bool| {
        let k = ds.num_classes();
        let mut t = Tensor::full(&[ds.len(), k], (1.0 - sharp) / (k as f32 - 1.0));
        for (i, &l) in ds.labels().iter().enumerate() {
            let target = if invert { (l + 1) % k } else { l };
            t.set(&[i, target], sharp).unwrap();
        }
        t
    };
    TeacherProbs::from_raw(
        vec![mk(&s.train, false), mk(&s.train, true)],
        vec![mk(&s.validation, false), mk(&s.validation, true)],
        s.validation.labels(),
    )
    .unwrap()
}

#[test]
fn stack_emits_schema_valid_spans_for_training_search_and_serving() {
    obs::set_sink(SinkTarget::Memory);

    // --- training: a tiny AED run (2 inner slices, ≥1 outer λ step) ---
    let s = splits(900);
    let teachers = synthetic_teachers(&s, 0.85);
    let student_cfg = InceptionConfig::student(1, 24, 3, 2, 8);
    let aed_cfg = AedConfig {
        train: StudentTrainOpts { epochs: 8, batch_size: 16, ..Default::default() },
        v: 4,
        lambda_lr: 2.0,
        transform: WeightTransform::Softmax,
    };
    run_aed(&s, &teachers, &student_cfg, &aed_cfg).unwrap();

    // --- search: a tiny MOBO run with a synthetic oracle (2 BO trials) ---
    let space = SearchSpace::paper_default(1, 24, 3, 4);
    let mobo_cfg = MoboConfig {
        q: 4,
        p_init: 2,
        candidates: 16,
        repr: SpaceRepr::Normalized,
        ..MoboConfig::default()
    };
    run_mobo(&space, |st| Ok(1.0 / (1.0 + space.size_bits(st) as f64)), &mobo_cfg).unwrap();

    // --- serving: a compiled student answers a few requests ---
    let mut rng = seeded(901);
    let student = InceptionTime::new(student_cfg, &mut rng).unwrap();
    let bytes = student.save_bytes().unwrap();
    let mut registry = ModelRegistry::new();
    registry.load_packed("student", &bytes).unwrap();
    let server = Server::start(registry, ServeConfig::default());
    let handle = server.handle();
    let batch = s.test.full_batch().unwrap();
    let pendings: Vec<_> = (0..4)
        .map(|i| handle.submit("student", batch.inputs.data()[i * 24..(i + 1) * 24].to_vec()))
        .collect::<Result<_, _>>()
        .unwrap();
    for p in pendings {
        p.wait().unwrap();
    }
    server.shutdown(); // joins the scheduler, so all stats are recorded
    let stats = handle.stats();
    assert_eq!(stats.requests, 4);
    assert!(stats.latency_p50 <= stats.latency_p99);

    // --- every emitted line is schema-valid, and the three subsystems are
    //     all represented ---
    let lines = obs::take_memory();
    assert!(!lines.is_empty(), "memory sink captured nothing");
    let mut paths: BTreeSet<String> = BTreeSet::new();
    for line in &lines {
        obs::jsonl::validate_event_line(line)
            .unwrap_or_else(|e| panic!("invalid event line {line:?}: {e}"));
        let obj = obs::jsonl::parse(line).unwrap();
        let path = obj.as_obj().unwrap()["path"].as_str().unwrap().to_string();
        paths.insert(path);
    }
    for expected in ["trainer.epoch", "aed.inner", "aed.outer", "mobo.trial", "serve.batch"] {
        assert!(paths.contains(expected), "no {expected:?} event among paths {paths:?}");
    }

    // registry metrics moved alongside the spans
    let snap = obs::global().snapshot();
    assert!(snap.counter("distill.epochs").unwrap_or(0) >= 8);
    assert!(snap.counter("search.trials").unwrap_or(0) >= 2);
    assert!(stats.batches >= 1);
    assert!(stats.total_latency.as_nanos() > 0);
}
