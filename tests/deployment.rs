//! Deployment-path integration test: distill → export packed bytes → reload
//! → identical inference, for every base-model family — and the reloaded
//! student served through the batched queue. This is the edge-device story
//! of the paper's introduction made concrete.

use lightts::models::inception::InceptionTime;
use lightts::nn::serialize;
use lightts::prelude::*;
use lightts::serve::{ModelRegistry, ServeConfig, Server};
use lightts_data::synth::{Generator, SynthConfig};

fn splits(seed: u64) -> Splits {
    let gen = Generator::new(
        SynthConfig { classes: 3, dims: 1, length: 24, difficulty: 0.2, waveforms: 3 },
        seed,
    );
    gen.splits("deploy", 36, 18, 18, seed + 1).unwrap()
}

/// The full pipeline for one base-model family: train a small teacher
/// ensemble, distill a 4-bit student, export it with `save_bytes`, reload,
/// and check that the deployed model (a) predicts identically, (b) honors
/// the packed-size promise, and (c) serves identically through the
/// micro-batching queue.
fn distill_export_reload_serve(kind: BaseModelKind, seed: u64) {
    let s = splits(seed);
    let ens_cfg = EnsembleTrainConfig { n_members: 2, ..EnsembleTrainConfig::default() };
    let ensemble = train_ensemble(kind, &s.train, &ens_cfg).unwrap();
    let teachers = TeacherProbs::compute(&ensemble, &s).unwrap();
    let cfg = InceptionConfig::student(1, 24, 3, 4, 4);
    let mut opts = DistillOpts::default();
    opts.aed.train.epochs = 6;
    opts.aed.v = 3;
    let out = run_method(Method::LightTs, &s, &teachers, &cfg, &opts).unwrap();

    // export and reload
    let bytes = out.student.save_bytes().unwrap();
    let loaded = InceptionTime::load_bytes(&bytes).unwrap();

    // the deployed model makes identical predictions
    let batch = s.test.full_batch().unwrap();
    let p_orig = out.student.predict_proba(&batch.inputs).unwrap();
    let p_load = loaded.predict_proba(&batch.inputs).unwrap();
    for (a, b) in p_orig.data().iter().zip(p_load.data().iter()) {
        assert!((a - b).abs() < 1e-5);
    }

    // the wire size honors the 4-bit promise: conv/fc payload packs to
    // ≈ bits/8 bytes per parameter, far below the f32 footprint
    let n_params = out.student.store().num_scalars();
    assert!(
        bytes.len() < n_params * 4,
        "packed export {}B should be well under the f32 footprint {}B",
        bytes.len(),
        n_params * 4
    );

    // the packed bytes load straight into the serving runtime, and the
    // batched queue answers bitwise identically to per-sample inference
    let mut registry = ModelRegistry::new();
    registry.load_packed("student", &bytes).unwrap();
    let server = Server::start(registry, ServeConfig::default());
    let handle = server.handle();
    let sample_len = 24; // in_dims × in_len
    let n = batch.inputs.dims()[0].min(6);
    let pendings: Vec<_> = (0..n)
        .map(|i| {
            let row = batch.inputs.data()[i * sample_len..(i + 1) * sample_len].to_vec();
            handle.submit("student", row).unwrap()
        })
        .collect();
    for (i, p) in pendings.into_iter().enumerate() {
        let got = p.wait().unwrap();
        let expect = &p_load.data()[i * 3..(i + 1) * 3];
        for (a, b) in expect.iter().zip(got.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "served row {i} differs from predict_proba");
        }
    }
    server.shutdown();
}

#[test]
fn forest_student_survives_packed_export() {
    distill_export_reload_serve(BaseModelKind::Forest, 700);
}

#[test]
fn tde_student_survives_packed_export() {
    distill_export_reload_serve(BaseModelKind::Tde, 710);
}

#[test]
fn cif_student_survives_packed_export() {
    distill_export_reload_serve(BaseModelKind::Cif, 720);
}

#[test]
fn store_serialization_size_formula_is_exact() {
    let s = splits(701);
    let ens_cfg = EnsembleTrainConfig { n_members: 2, ..EnsembleTrainConfig::default() };
    let ensemble = train_ensemble(BaseModelKind::Forest, &s.train, &ens_cfg).unwrap();
    let teachers = TeacherProbs::compute(&ensemble, &s).unwrap();
    let cfg = InceptionConfig::student(1, 24, 3, 4, 8);
    let mut opts = DistillOpts::default();
    opts.aed.train.epochs = 3;
    let out = run_method(Method::ClassicKd, &s, &teachers, &cfg, &opts).unwrap();
    let store = out.student.store();
    let bytes = serialize::serialize_store(store).unwrap();
    assert_eq!(bytes.len(), serialize::serialized_size(store));
    let back = serialize::deserialize_store(&bytes).unwrap();
    assert_eq!(back.size_bits(), store.size_bits());
}
