//! Deployment-path integration test: distill → export packed bytes → reload
//! → identical inference. This is the edge-device story of the paper's
//! introduction made concrete.

use lightts::models::inception::InceptionTime;
use lightts::nn::serialize;
use lightts::prelude::*;
use lightts_data::synth::{Generator, SynthConfig};

fn splits(seed: u64) -> Splits {
    let gen = Generator::new(
        SynthConfig { classes: 3, dims: 1, length: 24, difficulty: 0.2, waveforms: 3 },
        seed,
    );
    gen.splits("deploy", 36, 18, 18, seed + 1).unwrap()
}

#[test]
fn distilled_student_survives_packed_export() {
    let s = splits(700);
    let ens_cfg = EnsembleTrainConfig { n_members: 2, ..EnsembleTrainConfig::default() };
    let ensemble = train_ensemble(BaseModelKind::Forest, &s.train, &ens_cfg).unwrap();
    let teachers = TeacherProbs::compute(&ensemble, &s).unwrap();
    let cfg = InceptionConfig::student(1, 24, 3, 4, 4);
    let mut opts = DistillOpts::default();
    opts.aed.train.epochs = 6;
    opts.aed.v = 3;
    let out = run_method(Method::LightTs, &s, &teachers, &cfg, &opts).unwrap();

    // export and reload
    let bytes = out.student.save_bytes().unwrap();
    let loaded = InceptionTime::load_bytes(&bytes).unwrap();

    // the deployed model makes identical predictions
    let batch = s.test.full_batch().unwrap();
    let p_orig = out.student.predict_proba(&batch.inputs).unwrap();
    let p_load = loaded.predict_proba(&batch.inputs).unwrap();
    for (a, b) in p_orig.data().iter().zip(p_load.data().iter()) {
        assert!((a - b).abs() < 1e-5);
    }

    // the wire size honors the 4-bit promise: conv/fc payload packs to
    // ≈ bits/8 bytes per parameter, far below the f32 footprint
    let n_params = out.student.store().num_scalars();
    assert!(
        bytes.len() < n_params * 4,
        "packed export {}B should be well under the f32 footprint {}B",
        bytes.len(),
        n_params * 4
    );
}

#[test]
fn store_serialization_size_formula_is_exact() {
    let s = splits(701);
    let ens_cfg = EnsembleTrainConfig { n_members: 2, ..EnsembleTrainConfig::default() };
    let ensemble = train_ensemble(BaseModelKind::Forest, &s.train, &ens_cfg).unwrap();
    let teachers = TeacherProbs::compute(&ensemble, &s).unwrap();
    let cfg = InceptionConfig::student(1, 24, 3, 4, 8);
    let mut opts = DistillOpts::default();
    opts.aed.train.epochs = 3;
    let out = run_method(Method::ClassicKd, &s, &teachers, &cfg, &opts).unwrap();
    let store = out.student.store();
    let bytes = serialize::serialize_store(store).unwrap();
    assert_eq!(bytes.len(), serialize::serialized_size(store));
    let back = serialize::deserialize_store(&bytes).unwrap();
    assert_eq!(back.size_bits(), store.size_bits());
}
