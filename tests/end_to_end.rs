//! Cross-crate integration tests: both paper problem scenarios end-to-end
//! on miniature fixtures (sized to stay fast in debug builds).

use lightts::prelude::*;
use lightts::search::encoder::EncoderConfig;
use lightts_data::synth::{Generator, SynthConfig};

fn tiny_splits(classes: usize, seed: u64) -> Splits {
    let gen = Generator::new(
        SynthConfig { classes, dims: 1, length: 24, difficulty: 0.15, waveforms: 3 },
        seed,
    );
    gen.splits("e2e", 36, 18, 18, seed + 1).unwrap()
}

fn tiny_lightts() -> LightTs {
    let mut cfg = LightTsConfig { filters: 4, ..LightTsConfig::default() };
    cfg.distill.aed.train.epochs = 6;
    cfg.distill.aed.train.batch_size = 12;
    cfg.distill.aed.v = 3;
    cfg.mobo = MoboConfig {
        q: 5,
        p_init: 2,
        candidates: 24,
        repr: SpaceRepr::Normalized,
        encoder: EncoderConfig { epochs: 4, r_samples: 32, ..EncoderConfig::default() },
        encoder_refresh: 10,
        seed: 3,
    };
    LightTs::new(cfg)
}

fn tiny_ensemble(splits: &Splits, n: usize) -> Ensemble {
    let cfg = EnsembleTrainConfig { n_members: n, ..EnsembleTrainConfig::default() };
    train_ensemble(BaseModelKind::Forest, &splits.train, &cfg).unwrap()
}

#[test]
fn scenario1_produces_a_working_quantized_student() {
    let splits = tiny_splits(3, 500);
    let ensemble = tiny_ensemble(&splits, 3);
    let lt = tiny_lightts();

    let outcome = lt.distill(&splits, &ensemble, 4).unwrap();
    // the student classifies the test set (no panics, valid distributions)
    let probs = outcome.student.predict_proba_dataset(&splits.test).unwrap();
    assert_eq!(probs.dims(), &[splits.test.len(), 3]);
    for r in 0..probs.dims()[0] {
        let s: f32 = probs.row(r).unwrap().data().iter().sum();
        assert!((s - 1.0).abs() < 1e-3);
    }
    // teacher bookkeeping is consistent
    assert!(!outcome.kept_teachers.is_empty());
    assert_eq!(outcome.teacher_weights.len(), 3);
    // 4-bit student is smaller than the same structure at 32 bits
    let cfg32 = InceptionConfig::student(1, 24, 3, 4, 32);
    assert!(outcome.student.size_bits() * 4 < cfg32.size_bits() * 2);
}

#[test]
fn scenario2_returns_a_consistent_frontier() {
    let splits = tiny_splits(2, 501);
    let ensemble = tiny_ensemble(&splits, 2);
    let teachers = TeacherProbs::compute(&ensemble, &splits).unwrap();
    let lt = tiny_lightts();
    let mut space = lt.default_space(&splits);
    space.blocks = 2;
    space.layer_choices = vec![1, 2];
    space.filter_choices = vec![8, 16];
    space.bit_choices = vec![4, 8];

    let run = lt.pareto_frontier(&splits, &teachers, &space).unwrap();
    assert_eq!(run.stats.evaluations, 5);
    let frontier = run.frontier();
    assert!(!frontier.is_empty());
    // frontier is strictly improving in both axes
    for w in frontier.windows(2) {
        assert!(w[0].size_bits < w[1].size_bits);
        assert!(w[0].accuracy < w[1].accuracy);
    }
    // every frontier point is one of the evaluated points
    for p in frontier {
        assert!(run.outcome.evaluated.iter().any(|e| e.setting == p.setting));
    }
}

#[test]
fn all_seven_methods_run_on_a_shared_fixture() {
    let splits = tiny_splits(2, 502);
    let ensemble = tiny_ensemble(&splits, 3);
    let teachers = TeacherProbs::compute(&ensemble, &splits).unwrap();
    let lt = tiny_lightts();
    let cfg = InceptionConfig::student(1, 24, 2, 4, 8);

    for method in Method::all() {
        let out = run_method(method, &splits, &teachers, &cfg, &lt.config().distill).unwrap();
        assert!(
            (0.0..=1.0).contains(&out.val_accuracy),
            "{}: bad accuracy {}",
            method.as_str(),
            out.val_accuracy
        );
        assert!(out.train_seconds > 0.0);
        // weights over the original teacher set sum to ≈1 (removed get 0)
        let sum: f32 = out.teacher_weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "{}: weights {:?}", method.as_str(), out.teacher_weights);
    }
}

#[test]
fn statistics_pipeline_consumes_experiment_shaped_data() {
    // methods × (datasets×bits) score matrix, as the ranking binaries build
    use lightts::stats::{cd_cliques, friedman_test};
    let scores = vec![
        vec![0.9, 0.8, 0.85, 0.9, 0.7, 0.75],
        vec![0.88, 0.79, 0.86, 0.89, 0.71, 0.74],
        vec![0.5, 0.45, 0.55, 0.5, 0.4, 0.45],
    ];
    let fr = friedman_test(&scores).unwrap();
    assert!(fr.p_value < 0.1);
    let (avg, cliques) = cd_cliques(&scores, 0.05).unwrap();
    assert!(avg[0] < avg[2] && avg[1] < avg[2]);
    // the two near-identical methods group together
    assert!(cliques.iter().any(|c| c.members.contains(&0) && c.members.contains(&1)));
}
