//! Accuracy-parity gate for the true-int8 inference path.
//!
//! The `QuantizedPlan` (`lightts::models::qinference`) trades f32 exactness
//! for 4x smaller weights and integer kernels; this suite pins *how much*
//! accuracy it is allowed to trade, against the same committed golden
//! student that anchors `tests/golden_model.rs`:
//!
//! * **argmax parity** — over [`SAMPLES`] deterministic inputs the i8 plan
//!   must pick the same class as the f32 plan on at least
//!   [`MIN_ARGMAX_AGREE`] of them (>= 99%);
//! * **logit tolerance** — every i8 logit must sit within [`LOGIT_TOL`] of
//!   its f32 counterpart (measured max on the golden model is ~0.0073; the
//!   gate leaves ~4x headroom for benign rounding differences in future
//!   f32 kernel work without letting real regressions through);
//! * **bitwise self-consistency** — the i8 path is in the *integer-exact*
//!   determinism class (`docs/NUMERICS.md`, "Quantized inference"), so its
//!   own logits are pinned to a committed fixture at 1e-6 like the f32
//!   golden logits, and batching must be bitwise invisible.
//!
//! CI runs this file in both feature configs and once more with
//! `LIGHTTS_SIMD=scalar`, so the fixture comparison also proves the forced
//! scalar backend agrees bitwise with the SIMD backends end to end.
//!
//! To regenerate the fixture after an *intentional* quantizer change:
//!
//! ```text
//! cargo test --test quantized_parity -- --ignored regenerate_quantized_golden_fixture
//! ```

use lightts::models::inception::InceptionTime;
use lightts::models::inference::InferencePlan;
use lightts::models::qinference::QuantizedPlan;

const IN_DIMS: usize = 1;
const IN_LEN: usize = 32;
const CLASSES: usize = 6;

/// Number of deterministic parity samples the gate sweeps.
const SAMPLES: usize = 128;
/// The gate: >= 99% of [`SAMPLES`] must agree on argmax (127/128).
const MIN_ARGMAX_AGREE: usize = SAMPLES - SAMPLES / 100;
/// Per-logit absolute tolerance vs the f32 plan (see module docs).
const LOGIT_TOL: f32 = 0.03;

/// The fixture batch mirrors `tests/golden_model.rs` (4 samples).
const FIXTURE_BATCH: usize = 4;

fn golden_plans() -> (InferencePlan, QuantizedPlan) {
    let packed: &[u8] = include_bytes!("fixtures/golden_student.bin");
    let model = InceptionTime::load_bytes(packed).expect("golden fixture must keep loading");
    let f32_plan = model.compile().expect("golden model compiles to an f32 plan");
    let i8_plan = model
        .compile_quantized()
        .expect("golden model is trained at <= 8 bits, so the i8 plan must compile");
    (f32_plan, i8_plan)
}

/// Deterministic parity inputs (pure integer arithmetic mapped to f32) —
/// same generator family as `golden_inputs()` in `tests/golden_model.rs`,
/// extended to [`SAMPLES`] rows. The first [`FIXTURE_BATCH`] rows ARE the
/// golden inputs, so the fixture below doubles as a cross-check against
/// `tests/fixtures/golden_logits.tsv`.
fn parity_inputs() -> Vec<f32> {
    (0..SAMPLES * IN_DIMS * IN_LEN)
        .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 2000) as f32 / 1000.0 - 1.0)
        .collect()
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// The headline gate: i8 argmax agrees with f32 on >= 99% of samples and
/// every logit stays within [`LOGIT_TOL`].
#[test]
fn i8_plan_tracks_f32_plan_within_parity_gate() {
    let (mut f32_plan, mut i8_plan) = golden_plans();
    let inputs = parity_inputs();

    let mut f32_logits = Vec::new();
    let mut i8_logits = Vec::new();
    f32_plan.logits_into(&inputs, SAMPLES, &mut f32_logits).unwrap();
    i8_plan.logits_into(&inputs, SAMPLES, &mut i8_logits).unwrap();
    assert_eq!(f32_logits.len(), SAMPLES * CLASSES);
    assert_eq!(i8_logits.len(), SAMPLES * CLASSES);

    let mut agree = 0usize;
    let mut max_abs_diff = 0.0f32;
    for s in 0..SAMPLES {
        let fr = &f32_logits[s * CLASSES..(s + 1) * CLASSES];
        let qr = &i8_logits[s * CLASSES..(s + 1) * CLASSES];
        if argmax(fr) == argmax(qr) {
            agree += 1;
        }
        for (f, q) in fr.iter().zip(qr) {
            max_abs_diff = max_abs_diff.max((f - q).abs());
        }
    }

    assert!(
        agree >= MIN_ARGMAX_AGREE,
        "i8 plan argmax agreed on only {agree}/{SAMPLES} samples (gate: >= {MIN_ARGMAX_AGREE})"
    );
    assert!(
        max_abs_diff <= LOGIT_TOL,
        "i8 logits drifted {max_abs_diff} from f32 (gate: <= {LOGIT_TOL})"
    );
}

/// The i8 path is integer-exact, so its logits on the golden inputs are
/// pinned to a committed fixture just as tightly as the f32 golden logits
/// — across feature configs and forced SIMD backends.
#[test]
fn i8_golden_fixture_reproduces_recorded_logits() {
    let expected: &str = include_str!("fixtures/golden_logits_i8.tsv");
    let (_, mut i8_plan) = golden_plans();

    let inputs = parity_inputs();
    let mut logits = Vec::new();
    i8_plan
        .logits_into(&inputs[..FIXTURE_BATCH * IN_DIMS * IN_LEN], FIXTURE_BATCH, &mut logits)
        .unwrap();

    let mut n_checked = 0usize;
    for (row, line) in expected.lines().enumerate() {
        for (col, field) in line.split('\t').enumerate() {
            let want: f32 = field.parse().expect("fixture field parses as f32");
            let got = logits[row * CLASSES + col];
            assert!(
                (want - got).abs() <= 1e-6,
                "i8 logit [{row},{col}] drifted: recorded {want}, computed {got}"
            );
            n_checked += 1;
        }
    }
    assert_eq!(n_checked, FIXTURE_BATCH * CLASSES, "fixture shape mismatch");
}

/// Batching is purely a throughput optimization for the i8 plan too: one
/// fused forward over all samples is bitwise identical to running each
/// sample alone (per-sample activation quantizers + exact integer
/// accumulation).
#[test]
fn i8_plan_batching_is_bitwise_invisible() {
    let (_, mut i8_plan) = golden_plans();
    let inputs = parity_inputs();

    let mut batched = Vec::new();
    i8_plan.logits_into(&inputs, SAMPLES, &mut batched).unwrap();

    let mut single = Vec::new();
    for s in 0..SAMPLES {
        let row = &inputs[s * IN_DIMS * IN_LEN..(s + 1) * IN_DIMS * IN_LEN];
        i8_plan.logits_into(row, 1, &mut single).unwrap();
        for c in 0..CLASSES {
            assert_eq!(
                batched[s * CLASSES + c].to_bits(),
                single[c].to_bits(),
                "sample {s} class {c}: batched vs single differ bitwise"
            );
        }
    }
}

/// Regenerates `tests/fixtures/golden_logits_i8.tsv` from the committed
/// golden student. Ignored by default; run explicitly after an intentional
/// change to the quantization scheme (and re-measure [`LOGIT_TOL`]).
#[test]
#[ignore = "writes the committed fixture file"]
fn regenerate_quantized_golden_fixture() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&dir).unwrap();
    let (_, mut i8_plan) = golden_plans();

    let inputs = parity_inputs();
    let mut logits = Vec::new();
    i8_plan
        .logits_into(&inputs[..FIXTURE_BATCH * IN_DIMS * IN_LEN], FIXTURE_BATCH, &mut logits)
        .unwrap();

    let mut tsv = String::new();
    for r in 0..FIXTURE_BATCH {
        let row: Vec<String> =
            (0..CLASSES).map(|c| format!("{}", logits[r * CLASSES + c])).collect();
        tsv.push_str(&row.join("\t"));
        tsv.push('\n');
    }
    std::fs::write(dir.join("golden_logits_i8.tsv"), tsv).unwrap();
}
