//! Golden-model regression test: a packed student export committed to the
//! repo must keep reloading byte-compatibly and reproducing its recorded
//! logits forever. This pins the `LTIM`/`LTTS` wire formats and the whole
//! inference numerical path against drift — in both the parallel and the
//! serial (`--no-default-features`) builds, which are bitwise identical by
//! the determinism contract.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! cargo test --test golden_model -- --ignored regenerate_golden_fixture
//! ```

use lightts::models::inception::{BlockSpec, InceptionConfig, InceptionTime};
use lightts::models::Classifier;
use lightts::tensor::rng::seeded;
use lightts::tensor::Tensor;

const BATCH: usize = 4;
const IN_DIMS: usize = 1;
const IN_LEN: usize = 32;
const CLASSES: usize = 6;

/// The golden student: random init from a fixed seed plus hand-set
/// batch-norm statistics (pure integer-derived — no libm, no training), so
/// regeneration is reproducible on any host.
fn golden_model() -> InceptionTime {
    let cfg = InceptionConfig {
        blocks: vec![
            BlockSpec { layers: 2, filter_len: 8, bits: 8 },
            BlockSpec { layers: 2, filter_len: 4, bits: 4 },
        ],
        filters: 4,
        in_dims: IN_DIMS,
        in_len: IN_LEN,
        num_classes: CLASSES,
    };
    let mut rng = seeded(0xC0FFEE);
    let mut model = InceptionTime::new(cfg, &mut rng).unwrap();
    for (i, c) in model.bn_channel_counts().iter().enumerate() {
        let mean: Vec<f32> = (0..*c).map(|j| 0.03 * j as f32 - 0.06).collect();
        let var: Vec<f32> = (0..*c).map(|j| 0.7 + 0.05 * j as f32).collect();
        model.set_bn_running_stats(i, &mean, &var).unwrap();
    }
    model
}

/// Deterministic input batch (pure integer arithmetic mapped to f32).
fn golden_inputs() -> Tensor {
    let data: Vec<f32> = (0..BATCH * IN_DIMS * IN_LEN)
        .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 2000) as f32 / 1000.0 - 1.0)
        .collect();
    Tensor::from_vec(data, &[BATCH, IN_DIMS, IN_LEN]).unwrap()
}

#[test]
fn golden_fixture_reproduces_recorded_logits() {
    let packed: &[u8] = include_bytes!("fixtures/golden_student.bin");
    let expected: &str = include_str!("fixtures/golden_logits.tsv");

    let model = InceptionTime::load_bytes(packed).expect("golden fixture must keep loading");
    let logits = model.logits(&golden_inputs()).unwrap();
    assert_eq!(logits.dims(), &[BATCH, CLASSES]);

    let mut n_checked = 0usize;
    for (row, line) in expected.lines().enumerate() {
        for (col, field) in line.split('\t').enumerate() {
            let want: f32 = field.parse().expect("fixture field parses as f32");
            let got = logits.get(&[row, col]).unwrap();
            assert!(
                (want - got).abs() <= 1e-6,
                "logit [{row},{col}] drifted: recorded {want}, computed {got}"
            );
            n_checked += 1;
        }
    }
    assert_eq!(n_checked, BATCH * CLASSES, "fixture shape mismatch");

    // The probabilities (the serving output) stay consistent too.
    let probs = model.predict_proba(&golden_inputs()).unwrap();
    for r in 0..BATCH {
        let s: f32 = probs.row(r).unwrap().data().iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }
}

#[test]
fn golden_model_reexports_to_identical_bytes() {
    // save_bytes ∘ load_bytes must be the identity on the committed
    // artifact: guards against silent format-version or quantizer drift.
    let packed: &[u8] = include_bytes!("fixtures/golden_student.bin");
    let model = InceptionTime::load_bytes(packed).unwrap();
    let again = model.save_bytes().unwrap();
    assert_eq!(packed, &again[..], "re-export differs from committed fixture");
}

/// Regenerates `tests/fixtures/` from the deterministic recipe above.
/// Ignored by default; run explicitly after an intentional format change.
#[test]
#[ignore = "writes the committed fixture files"]
fn regenerate_golden_fixture() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&dir).unwrap();
    let model = golden_model();
    let packed = model.save_bytes().unwrap();
    std::fs::write(dir.join("golden_student.bin"), &packed).unwrap();

    let logits = model.logits(&golden_inputs()).unwrap();
    let mut tsv = String::new();
    for r in 0..BATCH {
        let row: Vec<String> =
            (0..CLASSES).map(|c| format!("{}", logits.get(&[r, c]).unwrap())).collect();
        tsv.push_str(&row.join("\t"));
        tsv.push('\n');
    }
    std::fs::write(dir.join("golden_logits.tsv"), tsv).unwrap();

    // sanity: the files round-trip immediately
    let reloaded = InceptionTime::load_bytes(&packed).unwrap();
    let again = reloaded.logits(&golden_inputs()).unwrap();
    for (a, b) in logits.data().iter().zip(again.data().iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
