//! Property-based integration tests over the quantization/size layer: the
//! invariants the Pareto machinery relies on must hold for *every* setting
//! in the search space, not just the ones tests happen to pick.

use lightts::prelude::*;
use proptest::prelude::*;

fn space() -> SearchSpace {
    SearchSpace::paper_default(1, 48, 7, 4)
}

fn arb_setting() -> impl Strategy<Value = StudentSetting> {
    let layer = prop::sample::select(vec![1usize, 2, 3, 4, 5]);
    let filt = prop::sample::select(vec![10usize, 20, 40, 80, 160]);
    let bits = prop::sample::select(vec![4u8, 8, 16, 32]);
    prop::collection::vec((layer, filt, bits), 3).prop_map(StudentSetting)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The analytic size of a setting equals the size of the instantiated
    /// model — the contract that lets MOBO cost settings without building
    /// them.
    #[test]
    fn analytic_size_matches_instantiated_model(setting in arb_setting()) {
        let sp = space();
        let cfg = setting.to_config(&sp);
        let mut rng = lightts::tensor::rng::seeded(1);
        let model = InceptionTime::new(cfg.clone(), &mut rng).unwrap();
        prop_assert_eq!(cfg.size_bits(), model.size_bits());
        prop_assert_eq!(cfg.size_bits(), sp.size_bits(&setting));
    }

    /// Increasing any block's bit-width never shrinks the model.
    #[test]
    fn size_is_monotone_in_bits(setting in arb_setting(), block in 0usize..3) {
        let sp = space();
        let base = sp.size_bits(&setting);
        let mut bigger = setting.clone();
        bigger.0[block].2 = 32;
        prop_assert!(sp.size_bits(&bigger) >= base);
    }

    /// Model outputs are valid class distributions for any setting.
    #[test]
    fn any_setting_produces_distributions(setting in arb_setting()) {
        let sp = space();
        let cfg = setting.to_config(&sp);
        let mut rng = lightts::tensor::rng::seeded(2);
        let model = InceptionTime::new(cfg, &mut rng).unwrap();
        let x = lightts::tensor::Tensor::ones(&[2, 1, 48]);
        let probs = model.predict_proba(&x).unwrap();
        prop_assert_eq!(probs.dims(), &[2usize, 7][..]);
        for r in 0..2 {
            let row = probs.row(r).unwrap();
            let s: f32 = row.data().iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-3, "row sum {}", s);
            prop_assert!(row.data().iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    /// Pareto frontier invariant: no evaluated point dominates a frontier
    /// point, for arbitrary accuracy/size samples.
    #[test]
    fn frontier_is_undominated(
        accs in prop::collection::vec(0.0f64..1.0, 20),
        sizes in prop::collection::vec(1u64..10_000, 20),
    ) {
        use lightts::search::pareto::{dominates, pareto_frontier, Evaluated};
        let pts: Vec<Evaluated> = accs
            .iter()
            .zip(sizes.iter())
            .map(|(&a, &s)| Evaluated {
                setting: StudentSetting(vec![(1, 10, 4)]),
                accuracy: a,
                size_bits: s,
            })
            .collect();
        let frontier = pareto_frontier(&pts);
        for f in &frontier {
            for p in &pts {
                prop_assert!(!dominates(p, f), "frontier point dominated");
            }
        }
        // and the frontier covers the best achievable accuracy
        let best = accs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let fr_best = frontier.iter().map(|p| p.accuracy).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(best, fr_best);
    }
}

// --- True-int8 plan invariants (PR 7) -----------------------------------
//
// The settings above describe *storage* quantization (bit-packed weights);
// the properties below cover the *execution* path: any setting trained at
// <= 8 bits must compile to a `QuantizedPlan` that produces valid
// distributions and is bitwise batch-invariant, and any setting with a
// wider block must be refused with a typed error, never a panic.

fn arb_low_bit_setting() -> impl Strategy<Value = StudentSetting> {
    let layer = prop::sample::select(vec![1usize, 2, 3]);
    let filt = prop::sample::select(vec![10usize, 20, 40]);
    let bits = prop::sample::select(vec![4u8, 8]);
    prop::collection::vec((layer, filt, bits), 3).prop_map(StudentSetting)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every <= 8-bit setting compiles to an i8 plan whose outputs are
    /// valid class distributions, bitwise independent of batch size.
    #[test]
    fn low_bit_settings_serve_valid_i8_distributions(setting in arb_low_bit_setting()) {
        let sp = space();
        let cfg = setting.to_config(&sp);
        let mut rng = lightts::tensor::rng::seeded(3);
        let model = InceptionTime::new(cfg, &mut rng).unwrap();
        let mut plan = model.compile_quantized().unwrap();

        let inputs: Vec<f32> = (0..2 * 48)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 2000) as f32 / 1000.0 - 1.0)
            .collect();
        let mut batched = Vec::new();
        plan.predict_proba_into(&inputs, 2, &mut batched).unwrap();
        prop_assert_eq!(batched.len(), 2 * 7);
        for r in 0..2 {
            let row = &batched[r * 7..(r + 1) * 7];
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-3, "row sum {}", s);
            prop_assert!(row.iter().all(|v| v.is_finite() && *v >= 0.0));

            let mut single = Vec::new();
            plan.predict_proba_into(&inputs[r * 48..(r + 1) * 48], 1, &mut single).unwrap();
            for (b, s) in row.iter().zip(&single) {
                prop_assert!(b.to_bits() == s.to_bits(), "batch-variant i8 output");
            }
        }
    }

    /// A setting with any block trained wider than 8 bits cannot pretend to
    /// be an i8 model: `compile_quantized` refuses with the typed
    /// `UnsupportedPlan` error (the serve layer surfaces this at
    /// registration rather than panicking mid-request).
    #[test]
    fn high_bit_settings_refuse_the_i8_plan(
        setting in arb_low_bit_setting(),
        block in 0usize..3,
        wide in prop::sample::select(vec![16u8, 32]),
    ) {
        let sp = space();
        let mut setting = setting;
        setting.0[block].2 = wide;
        let cfg = setting.to_config(&sp);
        let mut rng = lightts::tensor::rng::seeded(4);
        let model = InceptionTime::new(cfg, &mut rng).unwrap();
        match model.compile_quantized() {
            Err(lightts::models::ModelError::UnsupportedPlan { .. }) => {}
            other => prop_assert!(false, "expected UnsupportedPlan, got {:?}", other.map(|_| ())),
        }
    }
}
