//! Chaos suite: deterministic fault injection across the stack.
//!
//! These tests arm `lightts_obs::failpoint`s — the same hooks
//! `LIGHTTS_FAILPOINTS` drives from the environment — to prove the
//! robustness contracts of this PR end to end:
//!
//! * a panic inside one serve batch fails only that batch, and requests
//!   after it get **bitwise identical** answers to requests before it;
//! * a panic escaping a whole scheduler *shard* (the `serve.shard`
//!   failpoint) kills only that shard: its requests fail with a
//!   shard-tagged `SchedulerDied`, sibling shards keep answering bitwise
//!   identically, and the server still shuts down cleanly;
//! * the supervisor **respawns** a killed shard and the reborn shard
//!   answers bitwise identically to its pre-death self; a shard that
//!   exhausts its restart budget is permanently failed and `/healthz`
//!   degrades;
//! * while a shard is down, keyed requests **reroute** deterministically
//!   to the surviving sibling; per-model **circuit breakers** open after
//!   consecutive batch failures and close on a successful probe; retries
//!   never violate their deadline budget; and a randomized kill soak under
//!   concurrent load heals back to full strength with oracle-exact bits;
//! * a distillation run killed at any epoch resumes from its checkpoint to
//!   the exact (every f32 bit) weights of an uninterrupted run;
//! * a MOBO search killed at any trial resumes to the exact trial sequence
//!   and frontier of an uninterrupted run;
//! * admission control never accepts more than `max_queue` requests, and
//!   everything it does accept is answered (property-based);
//! * a failed checkpoint write surfaces as a typed error, not a corrupt
//!   file.
//!
//! Failpoints are process-global, so every test that arms them (or that
//! must not trip over someone else's arming) takes [`CHAOS_LOCK`].

use lightts_distill::checkpoint::train_student_checkpointed;
use lightts_distill::trainer::{train_student, StudentTrainOpts};
use lightts_distill::DistillError;
use lightts_models::inception::{BlockSpec, InceptionConfig, InceptionTime};
use lightts_models::Classifier;
use lightts_obs::failpoint;
use lightts_search::mobo::{run_mobo, run_mobo_resumable, MoboConfig, MoboOutcome, SpaceRepr};
use lightts_search::space::SearchSpace;
use lightts_search::SearchError;
use lightts_serve::{ModelRegistry, RetryPolicy, ServeConfig, ServeError, Server};
use lightts_tensor::rng::seeded;
use lightts_tensor::Tensor;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes every test in this binary: failpoints are process-global.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lightts-chaos-{}-{name}", std::process::id()))
}

// ---------------------------------------------------------------- serving --

const IN_DIMS: usize = 2;
const IN_LEN: usize = 16;

/// A small quantized student with hand-set BN statistics (no training).
fn build_model(seed: u64, classes: usize) -> InceptionTime {
    let cfg = InceptionConfig {
        blocks: vec![
            BlockSpec { layers: 2, filter_len: 8, bits: 8 },
            BlockSpec { layers: 2, filter_len: 4, bits: 4 },
        ],
        filters: 3,
        in_dims: IN_DIMS,
        in_len: IN_LEN,
        num_classes: classes,
    };
    let mut rng = seeded(seed);
    let mut model = InceptionTime::new(cfg, &mut rng).unwrap();
    for (i, c) in model.bn_channel_counts().iter().enumerate() {
        let mean: Vec<f32> = (0..*c).map(|j| 0.04 * j as f32 - 0.08).collect();
        let var: Vec<f32> = (0..*c).map(|j| 0.6 + 0.02 * j as f32).collect();
        model.set_bn_running_stats(i, &mean, &var).unwrap();
    }
    model
}

/// Deterministic pseudo-random sample `i` (integer arithmetic only).
fn sample(i: usize) -> Vec<f32> {
    (0..IN_DIMS * IN_LEN)
        .map(|j| {
            let h = (i as u64 * 1_000_003 + j as u64).wrapping_mul(2_654_435_761) % 2000;
            h as f32 / 1000.0 - 1.0
        })
        .collect()
}

fn reference_row(model: &InceptionTime, s: &[f32]) -> Vec<f32> {
    let x = Tensor::from_vec(s.to_vec(), &[1, IN_DIMS, IN_LEN]).unwrap();
    model.predict_proba(&x).unwrap().into_vec()
}

/// A panic in one batch's forward pass must fail only that batch: the
/// scheduler survives, and every batch served *after* the panic returns
/// rows bitwise identical to the rows served *before* it.
#[test]
fn batch_panic_fails_one_batch_and_later_answers_stay_bit_identical() {
    let _g = lock();
    let model = build_model(71, 4);
    let mut registry = ModelRegistry::new();
    registry.load_packed("student", &model.save_bytes().unwrap()).unwrap();
    let reference = InceptionTime::load_bytes(&model.save_bytes().unwrap()).unwrap();

    // max_batch = group size and a long max_wait: each group of 4 requests,
    // submitted together, forms exactly one batch — so "the second batch"
    // is a deterministic notion and panic@2 targets group 2 alone.
    let cfg =
        ServeConfig { max_batch: 4, max_wait: Duration::from_secs(5), ..ServeConfig::default() };
    let server = Server::start(registry, cfg);
    let handle = server.handle();

    failpoint::set_failpoints("serve.batch=panic@2").unwrap();
    let run_group = |g: usize| -> Vec<Result<Vec<f32>, ServeError>> {
        let pendings: Vec<_> =
            (0..4).map(|i| handle.submit("student", sample(g * 4 + i)).unwrap()).collect();
        pendings.into_iter().map(|p| p.wait()).collect()
    };

    // Group 0: before the fault — correct, bit-exact rows.
    for (i, r) in run_group(0).into_iter().enumerate() {
        assert_eq!(r.unwrap(), reference_row(&reference, &sample(i)));
    }
    // Group 1: the panicking batch — every request in it fails typed, none
    // hangs.
    for r in run_group(1) {
        match r {
            Err(ServeError::Inference { what }) => {
                assert!(what.contains("panicked"), "unexpected message: {what}")
            }
            other => panic!("expected Inference error, got {other:?}"),
        }
    }
    // Group 2: after the fault — the scheduler is alive and still
    // bit-exact.
    for (i, r) in run_group(2).into_iter().enumerate() {
        assert_eq!(r.unwrap(), reference_row(&reference, &sample(8 + i)));
    }
    failpoint::clear_failpoints();

    server.shutdown(); // joins cleanly: the scheduler thread never died
    let stats = handle.stats(); // read after the join — counters are final
    assert_eq!(stats.batch_panics, 1, "exactly the armed batch panicked");
    assert_eq!(stats.requests, 8, "panicked batch answered errors, not rows");
}

/// A panic escaping a shard's scheduler loop (not just one batch's
/// forward) must be contained to that shard: requests routed to it fail
/// with a *shard-tagged* `SchedulerDied`, the sibling shard keeps serving
/// bitwise-identical answers, liveness accounting reports the partial
/// outage, and shutdown still joins cleanly.
#[test]
fn shard_death_is_isolated_to_its_models_and_siblings_stay_bit_identical() {
    let _g = lock();
    let model_a = build_model(81, 4);
    let model_b = build_model(82, 3);
    let mut registry = ModelRegistry::new();
    registry.load_packed("a", &model_a.save_bytes().unwrap()).unwrap();
    registry.load_packed("b", &model_b.save_bytes().unwrap()).unwrap();
    let reference_b = InceptionTime::load_bytes(&model_b.save_bytes().unwrap()).unwrap();

    // Two shards, one replica per model: each model lives alone on its own
    // shard, so killing "a"'s shard cannot touch "b"'s. Respawn is
    // disabled (budget 0) — this test pins the *isolation* contract with
    // the shard staying down; self-healing has its own tests below.
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        shards: 2,
        replicas: 1,
        restart_budget: Some(0),
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    assert_eq!(server.shards(), 2);
    let handle = server.handle();
    let shard_a = handle.route_of("a", 0).unwrap();
    let shard_b = handle.route_of("b", 0).unwrap();
    assert_ne!(shard_a, shard_b, "one replica each on two shards must not collide");

    // Pre-kill bits from the survivor shard.
    let before: Vec<Vec<u32>> = (0..4)
        .map(|i| handle.predict("b", sample(i)).unwrap().iter().map(|v| v.to_bits()).collect())
        .collect();

    // Kill shard_a: the failpoint fires on the next batch *it* forms, and
    // only "a" gets traffic between arming and the kill.
    failpoint::set_failpoints("serve.shard=panic@1").unwrap();
    match handle.predict("a", sample(0)) {
        Err(ServeError::SchedulerDied { .. }) => {}
        other => panic!("request on the dying shard got {other:?}"),
    }
    failpoint::clear_failpoints();

    // Submissions routed to the dead shard fail fast, naming it. One
    // racing the unwind itself may still be accepted — the dying shard's
    // drain answers it with the same typed error, so nothing hangs and
    // the fast-fail settles in immediately after.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match handle.submit("a", sample(1)) {
            Err(ServeError::SchedulerDied { shard }) => {
                assert_eq!(shard, Some(shard_a));
                break;
            }
            Ok(p) => {
                assert!(matches!(p.wait(), Err(ServeError::SchedulerDied { .. })));
                assert!(std::time::Instant::now() < deadline, "dead shard kept accepting");
            }
            Err(other) => panic!("submit to dead shard got {other:?}"),
        }
    }

    // The sibling keeps answering — and every bit agrees with before the
    // kill and with the per-sample reference.
    for (i, want) in before.iter().enumerate() {
        let got: Vec<u32> =
            handle.predict("b", sample(i)).unwrap().iter().map(|v| v.to_bits()).collect();
        assert_eq!(&got, want, "sample {i}: survivor shard drifted after sibling death");
        let reference: Vec<u32> =
            reference_row(&reference_b, &sample(i)).iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, reference, "sample {i}: survivor shard drifted from reference");
    }

    // Liveness accounting sees the partial outage.
    assert_eq!(server.shards_alive(), 1, "exactly the killed shard is gone");
    assert!(server.scheduler_alive(), "one live shard keeps the server healthy");
    let metrics = server.metrics().snapshot();
    assert_eq!(metrics.gauge(&format!("serve.shard{shard_a}.alive")), Some(0));
    assert_eq!(metrics.gauge(&format!("serve.shard{shard_b}.alive")), Some(1));

    // Over HTTP the same contract: one dead shard is a *degraded 200*
    // whose body carries the counts — 503 is reserved for all-dead.
    let telemetry = server.serve_telemetry("127.0.0.1:0").unwrap();
    let (status, body) = http_get(telemetry.addr(), "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"shards_alive\":1"), "{body}");
    assert!(body.contains("\"shards_total\":2"), "{body}");

    server.shutdown(); // the dead shard's thread is already joined-able
    let (status, body) = http_get(telemetry.addr(), "/healthz");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"shards_alive\":0"), "{body}");
    telemetry.shutdown();
}

// ------------------------------------------------------------ self-healing --

/// Polls until the server reports every shard alive again (the supervisor
/// has finished its respawn), failing the test after a generous bound.
fn wait_all_alive(server: &Server, total: usize) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.shards_alive() != total {
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor did not respawn within 10s: {}/{} shards alive",
            server.shards_alive(),
            total
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The supervisor must respawn a killed shard — and the reborn shard must
/// answer **bitwise identically** to its pre-death self (the respawn is
/// probe-verified against plan masters, so this is the contract it
/// enforces, observed end to end).
#[test]
fn killed_shard_is_respawned_and_answers_bit_identically() {
    let _g = lock();
    let model_a = build_model(91, 4);
    let model_b = build_model(92, 3);
    let mut registry = ModelRegistry::new();
    registry.load_packed("a", &model_a.save_bytes().unwrap()).unwrap();
    registry.load_packed("b", &model_b.save_bytes().unwrap()).unwrap();

    // One replica each on two shards: killing "a"'s shard leaves "b"
    // untouched, and the default restart budget lets the supervisor act.
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        shards: 2,
        replicas: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let handle = server.handle();
    let shard_a = handle.route_of("a", 0).unwrap();

    // Pre-death bits from the shard we are about to kill.
    let before: Vec<Vec<u32>> = (0..4)
        .map(|i| handle.predict("a", sample(i)).unwrap().iter().map(|v| v.to_bits()).collect())
        .collect();

    failpoint::set_failpoints("serve.shard=panic@1").unwrap();
    match handle.predict("a", sample(0)) {
        Err(ServeError::SchedulerDied { shard }) => assert_eq!(shard, Some(shard_a)),
        other => panic!("request on the dying shard got {other:?}"),
    }
    failpoint::clear_failpoints();

    // The supervisor notices, verifies fresh plan clones against the
    // golden probe, and brings the shard back.
    wait_all_alive(&server, 2);

    // The reborn shard answers every pre-death sample with the exact same
    // bits — death and rebirth are invisible in the numbers.
    for (i, want) in before.iter().enumerate() {
        let got: Vec<u32> =
            handle.predict("a", sample(i)).unwrap().iter().map(|v| v.to_bits()).collect();
        assert_eq!(&got, want, "sample {i}: reborn shard drifted from its pre-death self");
    }

    let stats = handle.stats();
    assert_eq!(stats.restarts, 1, "exactly one respawn happened");
    assert_eq!(stats.shards_failed, 0, "the budget was nowhere near exhausted");
    let metrics = server.metrics().snapshot();
    assert_eq!(metrics.counter(&format!("serve.shard{shard_a}.restarts")), Some(1));
    assert_eq!(metrics.gauge(&format!("serve.shard{shard_a}.alive")), Some(1));
    server.shutdown();
}

/// While a replica's shard is down, a keyed request reroutes
/// **deterministically** to the surviving sibling and still answers with
/// reference bits; the pure `route_of` keeps reporting the primary, and
/// the reroute is counted.
#[test]
fn dead_primary_reroutes_keyed_requests_to_the_surviving_sibling() {
    let _g = lock();
    let model = build_model(93, 4);
    let mut registry = ModelRegistry::new();
    registry.load_packed("m", &model.save_bytes().unwrap()).unwrap();
    let reference = InceptionTime::load_bytes(&model.save_bytes().unwrap()).unwrap();

    // The model lives on both shards; respawn is disabled so the primary
    // *stays* dead and the reroute is deterministic, not a race against
    // the supervisor (respawn has its own test above).
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        shards: 2,
        replicas: 2,
        restart_budget: Some(0),
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let handle = server.handle();

    let key = 7u64;
    let primary = handle.route_of("m", key).unwrap();
    let sibling = 1 - primary;

    // Kill exactly the primary: the keyed request is the only traffic
    // while the failpoint is armed, and it routes to `primary`.
    failpoint::set_failpoints("serve.shard=panic@1").unwrap();
    match handle.submit_keyed("m", sample(0), key, None).unwrap().wait() {
        Err(ServeError::SchedulerDied { shard }) => assert_eq!(shard, Some(primary)),
        other => panic!("request on the dying shard got {other:?}"),
    }
    failpoint::clear_failpoints();

    // The same id now lands on the surviving sibling — accepted, answered,
    // and bitwise identical to the single-sample reference. (A submission
    // racing the unwind may land on the not-yet-flagged primary once; it
    // is drained with the typed error and the next one reroutes.)
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let p = loop {
        assert!(std::time::Instant::now() < deadline, "primary never flagged dead");
        let p = match handle.submit_keyed("m", sample(1), key, None) {
            Ok(p) => p,
            Err(other) => panic!("keyed submit got {other:?}"),
        };
        if p.shard() != primary {
            break p;
        }
        assert!(matches!(p.wait(), Err(ServeError::SchedulerDied { .. })));
    };
    assert_eq!(p.shard(), sibling, "reroute must pick the deterministic survivor");
    let got: Vec<u32> = p.wait().unwrap().iter().map(|v| v.to_bits()).collect();
    let want: Vec<u32> =
        reference_row(&reference, &sample(1)).iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want, "rerouted request drifted from the reference");

    // The hash route itself never changed — `route_of` is pure in the id;
    // only the liveness mask moved the request.
    assert_eq!(handle.route_of("m", key), Some(primary));
    assert!(handle.stats().reroutes >= 1, "the reroute must be counted");
    server.shutdown();
}

/// A shard that keeps dying exhausts its restart budget and is marked
/// **permanently failed**: no further respawns, `/healthz` reports
/// `degraded`, and the sibling keeps serving.
#[test]
fn restart_budget_exhaustion_fails_the_shard_permanently_and_degrades_health() {
    let _g = lock();
    let model_a = build_model(94, 4);
    let model_b = build_model(95, 3);
    let mut registry = ModelRegistry::new();
    registry.load_packed("a", &model_a.save_bytes().unwrap()).unwrap();
    registry.load_packed("b", &model_b.save_bytes().unwrap()).unwrap();
    let reference_b = InceptionTime::load_bytes(&model_b.save_bytes().unwrap()).unwrap();

    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        shards: 2,
        replicas: 1,
        restart_budget: Some(1), // one respawn, then permanent failure
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let handle = server.handle();
    let shard_a = handle.route_of("a", 0).unwrap();

    // First death: within budget, the supervisor brings the shard back.
    failpoint::set_failpoints("serve.shard=panic@1").unwrap();
    assert!(matches!(handle.predict("a", sample(0)), Err(ServeError::SchedulerDied { .. })));
    failpoint::clear_failpoints();
    wait_all_alive(&server, 2);
    assert_eq!(handle.stats().restarts, 1);

    // Second death inside the rolling window: budget exhausted — the
    // supervisor gives up and marks the shard failed.
    failpoint::set_failpoints("serve.shard=panic@1").unwrap();
    assert!(matches!(handle.predict("a", sample(0)), Err(ServeError::SchedulerDied { .. })));
    failpoint::clear_failpoints();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.stats().shards_failed != 1 {
        assert!(std::time::Instant::now() < deadline, "shard was never marked failed");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Permanently failed: no respawn, submissions fail fast naming the
    // shard, and the restart counter did not move again.
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(server.shards_alive(), 1, "a failed shard must not be respawned");
    assert_eq!(handle.stats().restarts, 1);
    assert!(matches!(
        handle.submit("a", sample(1)),
        Err(ServeError::SchedulerDied { shard }) if shard == Some(shard_a)
    ));

    // The sibling still answers with reference bits.
    let got: Vec<u32> =
        handle.predict("b", sample(2)).unwrap().iter().map(|v| v.to_bits()).collect();
    let want: Vec<u32> =
        reference_row(&reference_b, &sample(2)).iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want);

    // `/healthz` renders the permanent failure as a degraded 200.
    let telemetry = server.serve_telemetry("127.0.0.1:0").unwrap();
    let (status, body) = http_get(telemetry.addr(), "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("\"shards_failed\":1"), "{body}");
    server.shutdown();
    telemetry.shutdown();
}

/// The per-model circuit breaker: K consecutive failed batches open it
/// (fast `CircuitOpen` sheds, no queue touched), the cooldown admits one
/// probe, and a successful probe closes it — after which answers are
/// bitwise identical to a never-tripped server.
#[test]
fn circuit_opens_after_consecutive_failures_and_a_probe_closes_it() {
    let _g = lock();
    let model = build_model(96, 4);
    let mut registry = ModelRegistry::new();
    registry.load_packed("m", &model.save_bytes().unwrap()).unwrap();
    let reference = InceptionTime::load_bytes(&model.save_bytes().unwrap()).unwrap();

    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        shards: 1,
        circuit_threshold: 2,
        circuit_cooldown: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let handle = server.handle();

    // Every batch panics while armed: two consecutive Inference failures
    // reach the threshold and open the circuit.
    failpoint::set_failpoints("serve.batch=panic").unwrap();
    for i in 0..2 {
        assert!(matches!(handle.predict("m", sample(i)), Err(ServeError::Inference { .. })));
    }
    // Open: submissions shed fast with the typed error, without queueing.
    match handle.predict("m", sample(2)) {
        Err(ServeError::CircuitOpen { model }) => assert_eq!(model, "m"),
        other => panic!("open circuit admitted a request: {other:?}"),
    }
    failpoint::clear_failpoints();

    // Still inside the cooldown: even with the fault gone, the breaker
    // sheds — that is the point (no scheduler time for a poisoned model).
    assert!(matches!(handle.predict("m", sample(3)), Err(ServeError::CircuitOpen { .. })));

    // After the cooldown one probe is admitted; it succeeds and closes the
    // circuit, and the answer carries reference bits.
    std::thread::sleep(Duration::from_millis(250));
    let got: Vec<u32> =
        handle.predict("m", sample(4)).unwrap().iter().map(|v| v.to_bits()).collect();
    let want: Vec<u32> =
        reference_row(&reference, &sample(4)).iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want, "post-recovery answer drifted from the reference");
    // Closed again: requests flow freely.
    handle.predict("m", sample(5)).unwrap();

    let stats = handle.stats();
    assert_eq!(stats.circuit_opens, 1, "the circuit opened exactly once");
    assert!(stats.shed_circuit >= 2, "open-circuit sheds must be counted");
    assert_eq!(server.metrics().snapshot().gauge("serve.circuit0.state"), Some(0));
    server.shutdown();
}

/// Retries must never violate the caller's deadline: against a hopelessly
/// overloaded server, `predict_with_retry` returns a typed error within
/// the deadline budget (plus scheduling slack) — it never sleeps through a
/// backoff that would cross the deadline.
#[test]
fn retries_respect_the_overall_deadline_budget() {
    let _g = lock();
    let model = build_model(97, 3);
    let mut registry = ModelRegistry::new();
    registry.load_packed("m", &model.save_bytes().unwrap()).unwrap();

    // Park the scheduler (unreachable batch, long wait) and make the queue
    // one deep: one parked request keeps every later submission Overloaded.
    let cfg = ServeConfig {
        max_batch: 10_000,
        max_wait: Duration::from_secs(10),
        max_queue: 1,
        shards: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let handle = server.handle();
    let parked = handle.submit("m", sample(0)).unwrap();

    let policy =
        RetryPolicy { max_attempts: 8, base_backoff: Duration::from_millis(40), jitter: 0 };
    let deadline = Duration::from_millis(150);
    let t0 = std::time::Instant::now();
    let err = handle.predict_with_retry("m", &sample(1), policy, Some(deadline)).unwrap_err();
    let elapsed = t0.elapsed();

    // Overloaded is retryable, so some retries happened — but the backoff
    // schedule (40, 80, 160, ... ms) crosses the 150 ms budget long before
    // 8 attempts, and the call must give up with the *last real error*
    // rather than sleep past the deadline.
    assert!(
        matches!(err, ServeError::Overloaded { .. } | ServeError::DeadlineExceeded),
        "unexpected terminal error: {err:?}"
    );
    assert!(
        elapsed < deadline + Duration::from_millis(350),
        "retry loop overshot its deadline budget: {elapsed:?}"
    );

    server.shutdown(); // drains the parked request
    parked.wait().unwrap();
}

/// Randomized chaos soak: with shard-kill failpoints firing
/// *probabilistically* under concurrent retrying load, every request
/// reaches a terminal outcome, every successful answer is **bitwise
/// identical** to a never-killed oracle, no retry overshoots its deadline,
/// and after the storm the supervisor has healed the server back to full
/// strength — still answering with oracle bits.
#[test]
fn randomized_shard_kill_soak_heals_and_stays_bit_identical() {
    let _g = lock();
    let model = build_model(98, 4);
    let mut registry = ModelRegistry::new();
    registry.load_packed("m", &model.save_bytes().unwrap()).unwrap();
    let reference = InceptionTime::load_bytes(&model.save_bytes().unwrap()).unwrap();

    // The oracle: per-sample single-row predictions, computed before any
    // fault is armed. Soak answers must match these bit for bit.
    const SOAK_REQS: usize = 150; // per worker thread
    let oracle: Vec<Vec<u32>> = (0..8)
        .map(|i| reference_row(&reference, &sample(i)).iter().map(|v| v.to_bits()).collect())
        .collect();

    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        shards: 2,
        replicas: 2,
        restart_budget: Some(1_000), // the soak must never exhaust it
        restart_window: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let handle = server.handle();

    // Fixed seed: the kill schedule is reproducible run to run.
    failpoint::set_failpoint_seed(0xC4A05);
    failpoint::set_failpoints("serve.shard=panic%0.02").unwrap();

    let deadline = Duration::from_secs(5);
    let policy =
        RetryPolicy { max_attempts: 6, base_backoff: Duration::from_millis(2), jitter: 1_000 };
    let outcomes: Vec<(usize, Result<Vec<u32>, ServeError>, Duration)> =
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..2)
                .map(|w| {
                    let handle = handle.clone();
                    scope.spawn(move || {
                        (0..SOAK_REQS)
                            .map(|r| {
                                let i = (w * SOAK_REQS + r) % 8;
                                let t0 = std::time::Instant::now();
                                let out = handle
                                    .predict_with_retry("m", &sample(i), policy, Some(deadline))
                                    .map(|row| row.iter().map(|v| v.to_bits()).collect());
                                (i, out, t0.elapsed())
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            workers.into_iter().flat_map(|w| w.join().unwrap()).collect()
        });
    failpoint::clear_failpoints();
    failpoint::set_failpoint_seed(lightts_obs::failpoint::DEFAULT_SEED);

    // Every request terminated — the scope join proves none hung — and
    // every success is oracle-exact; failures are only the honest
    // fault-class errors a kill storm can produce.
    let mut ok = 0usize;
    for (i, out, elapsed) in &outcomes {
        assert!(
            *elapsed <= deadline + Duration::from_secs(2),
            "request overshot its deadline budget: {elapsed:?}"
        );
        match out {
            Ok(bits) => {
                ok += 1;
                assert_eq!(bits, &oracle[*i], "sample {i}: soak answer drifted from oracle");
            }
            Err(
                ServeError::SchedulerDied { .. }
                | ServeError::Overloaded { .. }
                | ServeError::DeadlineExceeded,
            ) => {}
            Err(other) => panic!("soak produced a non-fault error: {other:?}"),
        }
    }
    assert!(ok * 2 >= SOAK_REQS, "retries should carry most requests through: {ok} ok");

    // The storm is over: the supervisor heals the server back to full
    // strength, and fresh answers still carry oracle bits.
    wait_all_alive(&server, 2);
    for i in 0..8 {
        let got: Vec<u32> =
            handle.predict("m", sample(i)).unwrap().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, oracle[i], "sample {i}: post-soak answer drifted from oracle");
    }
    let stats = handle.stats();
    assert!(stats.restarts >= 1, "the fixed seed must kill at least one shard");
    assert_eq!(stats.shards_failed, 0, "the soak must stay within its restart budget");
    server.shutdown();
}

/// Minimal blocking HTTP GET against the telemetry server.
fn http_get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").expect("send");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read");
    let status = buf.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

// ------------------------------------------------------ distill: kill+resume

fn distill_data(seed: u64) -> lightts_data::LabeledDataset {
    use lightts_data::synth::{Generator, SynthConfig};
    let gen = Generator::new(
        SynthConfig { classes: 2, dims: 1, length: 24, difficulty: 0.15, waveforms: 3 },
        seed,
    );
    gen.split("chaos-distill", 24, seed + 1).unwrap()
}

fn oracle_probs(ds: &lightts_data::LabeledDataset, sharp: f32) -> Tensor {
    let k = ds.num_classes();
    let mut t = Tensor::full(&[ds.len(), k], (1.0 - sharp) / (k as f32 - 1.0));
    for (i, &l) in ds.labels().iter().enumerate() {
        t.set(&[i, l], sharp).unwrap();
    }
    t
}

fn weight_bits(m: &InceptionTime) -> Vec<u32> {
    m.store().iter().flat_map(|(_, p)| p.value.data().iter().map(|v| v.to_bits())).collect()
}

/// Kill a checkpointed distillation at several different epochs via the
/// `trainer.epoch` failpoint; the resumed run must produce weights
/// bit-identical to an uninterrupted `train_student` oracle.
#[test]
fn distill_killed_at_any_epoch_resumes_bit_identically() {
    let _g = lock();
    let train = distill_data(301);
    let q = oracle_probs(&train, 0.9);
    let opts = StudentTrainOpts { epochs: 5, batch_size: 12, ..Default::default() };
    let cfg = InceptionConfig {
        blocks: vec![BlockSpec { layers: 2, filter_len: 8, bits: 8 }; 2],
        filters: 4,
        in_dims: 1,
        in_len: 24,
        num_classes: 2,
    };
    let oracle = train_student(&cfg, &train, std::slice::from_ref(&q), &[1.0], &opts).unwrap();
    let oracle_bits = weight_bits(&oracle);

    // Kill at the first epoch (nothing checkpointed yet), mid-run, and at
    // the last epoch (everything but the final snapshot done).
    for kill_at in [1usize, 3, 5] {
        let path = tmp(&format!("distill-kill{kill_at}.ckpt"));
        let _ = std::fs::remove_file(&path);
        failpoint::set_failpoints(&format!("trainer.epoch=err@{kill_at}")).unwrap();
        let err = train_student_checkpointed(
            &cfg,
            &train,
            std::slice::from_ref(&q),
            &[1.0],
            &opts,
            &path,
        )
        .unwrap_err();
        assert!(matches!(err, DistillError::Fault { .. }), "kill@{kill_at}: {err}");
        failpoint::clear_failpoints();

        let resumed = train_student_checkpointed(
            &cfg,
            &train,
            std::slice::from_ref(&q),
            &[1.0],
            &opts,
            &path,
        )
        .unwrap();
        assert_eq!(
            weight_bits(&resumed),
            oracle_bits,
            "kill@{kill_at}: resumed weights drifted from the uninterrupted run"
        );
        std::fs::remove_file(&path).unwrap();
    }

    // The checkpoint counters moved: kills + resumes are visible in the
    // global registry, so long runs expose their crash-safety machinery.
    let snap = lightts_obs::global().snapshot();
    assert!(snap.counter("checkpoint.writes").unwrap_or(0) >= 5);
    assert!(snap.counter("checkpoint.resumes").unwrap_or(0) >= 2);
}

/// A checkpoint write that fails (the `checkpoint.write` failpoint stands
/// in for a full disk) surfaces as a typed error — and never leaves a
/// half-written file where the checkpoint belongs.
#[test]
fn failed_checkpoint_write_is_a_typed_error_and_leaves_no_file() {
    let _g = lock();
    let train = distill_data(302);
    let q = oracle_probs(&train, 0.9);
    let opts = StudentTrainOpts { epochs: 1, batch_size: 12, ..Default::default() };
    let cfg = InceptionConfig {
        blocks: vec![BlockSpec { layers: 2, filter_len: 8, bits: 8 }; 2],
        filters: 4,
        in_dims: 1,
        in_len: 24,
        num_classes: 2,
    };
    let path = tmp("distill-badwrite.ckpt");
    let _ = std::fs::remove_file(&path);
    failpoint::set_failpoints("checkpoint.write=err@1").unwrap();
    let err = train_student_checkpointed(&cfg, &train, &[q], &[1.0], &opts, &path).unwrap_err();
    failpoint::clear_failpoints();
    assert!(matches!(err, DistillError::Checkpoint { .. }), "{err}");
    assert!(!path.exists(), "failed write must not leave a checkpoint behind");
}

// --------------------------------------------------------- MOBO: kill+resume

/// Order- and bit-sensitive digest of a MOBO run: every trial's setting,
/// accuracy (exact bits), and size.
fn mobo_fingerprint(out: &MoboOutcome) -> Vec<(String, u64, u64)> {
    out.evaluated
        .iter()
        .map(|e| (format!("{:?}", e.setting), e.accuracy.to_bits(), e.size_bits))
        .collect()
}

/// Kill a resumable MOBO search at several trials via the `mobo.trial`
/// failpoint; each resumed run must reproduce the uninterrupted run's
/// trial sequence and frontier exactly.
#[test]
fn mobo_killed_at_any_trial_resumes_bit_identically() {
    let _g = lock();
    let space = SearchSpace::paper_default(1, 24, 3, 4);
    let cfg = MoboConfig {
        q: 9,
        p_init: 3,
        candidates: 24,
        repr: SpaceRepr::Normalized,
        seed: 0xC4A05,
        ..MoboConfig::default()
    };
    let oracle =
        |st: &lightts_search::space::StudentSetting| Ok(1.0 / (1.0 + space.size_bits(st) as f64));
    let plain = run_mobo(&space, oracle, &cfg).unwrap();
    let want = mobo_fingerprint(&plain);
    let want_frontier: Vec<_> =
        plain.frontier.iter().map(|e| (e.accuracy.to_bits(), e.size_bits)).collect();

    // Kill inside random init (trial 2), at the init/BO boundary (4), and
    // deep into the BO loop (8).
    for kill_at in [2usize, 4, 8] {
        let path = tmp(&format!("mobo-kill{kill_at}.ckpt"));
        let _ = std::fs::remove_file(&path);
        failpoint::set_failpoints(&format!("mobo.trial=err@{kill_at}")).unwrap();
        let err = run_mobo_resumable(&space, oracle, &cfg, &path).unwrap_err();
        assert!(matches!(err, SearchError::Fault { .. }), "kill@{kill_at}: {err}");
        failpoint::clear_failpoints();

        let resumed = run_mobo_resumable(&space, oracle, &cfg, &path).unwrap();
        assert_eq!(
            mobo_fingerprint(&resumed),
            want,
            "kill@{kill_at}: resumed trial sequence drifted"
        );
        let got_frontier: Vec<_> =
            resumed.frontier.iter().map(|e| (e.accuracy.to_bits(), e.size_bits)).collect();
        assert_eq!(got_frontier, want_frontier, "kill@{kill_at}: frontier drifted");
        std::fs::remove_file(&path).unwrap();
    }
}

// ------------------------------------------------- admission control (prop) --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Admission control invariant: with the scheduler parked (huge batch,
    /// long wait), exactly `min(n, max_queue)` submissions are accepted,
    /// the rest are shed with a typed `Overloaded`, and every accepted
    /// request is eventually answered.
    #[test]
    fn admission_never_exceeds_queue_bound(n in 1usize..12, max_queue in 1usize..6) {
        let _g = lock(); // a stray armed failpoint would poison the batches
        let model = build_model(72, 3);
        let mut registry = ModelRegistry::new();
        registry.load_packed("m", &model.save_bytes().unwrap()).unwrap();
        // The queue only fills if the scheduler is not draining it: an
        // unreachable max_batch and a long max_wait park it until
        // shutdown.
        let cfg = ServeConfig {
            max_batch: 10_000,
            max_wait: Duration::from_secs(10),
            max_queue,
            ..ServeConfig::default()
        };
        let server = Server::start(registry, cfg);
        let handle = server.handle();

        let mut accepted = Vec::new();
        let mut shed = 0usize;
        for i in 0..n {
            match handle.submit("m", sample(i)) {
                Ok(p) => accepted.push(p),
                Err(ServeError::Overloaded { max_queue: mq, .. }) => {
                    prop_assert_eq!(mq, max_queue);
                    shed += 1;
                }
                Err(other) => return Err(TestCaseError::Fail(format!("unexpected: {other:?}"))),
            }
        }
        prop_assert_eq!(accepted.len(), n.min(max_queue));
        prop_assert_eq!(shed, n.saturating_sub(max_queue));
        prop_assert_eq!(handle.stats().shed_overload, shed as u64);

        server.shutdown(); // drain: the parked batch runs now
        let mut answered = 0usize;
        for p in accepted {
            prop_assert_eq!(p.wait().unwrap().len(), 3);
            answered += 1;
        }
        prop_assert_eq!(answered, n.min(max_queue));
    }
}
