#!/bin/bash
# Runs every experiment binary at quick scale, recording TSV outputs.
# (The extra `calibrate` binary is a host-sizing utility, not a paper
# artifact, so it is not part of this sweep.)
set -u
cd "$(dirname "$0")"
mkdir -p results
cargo build --release -p lightts-bench
BINS="table3_removal fig13_ranking table2_inception fig18_training_time table4_nondeep fig19_sensitivity fig20_n_effect fig17_fewclass_ranking fig22_pareto table6_search_time table5_gp_estimation fig21_base_improvement fig23_varying_p ablation_aed"
for b in $BINS; do
  echo "=== $b start $(date +%T) ==="
  ./target/release/$b --scale quick > results/$b.tsv 2> results/$b.log
  echo "=== $b done  $(date +%T) rc=$? ==="
done
echo ALL_DONE
